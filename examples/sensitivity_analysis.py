"""Sensitivity of top-k results to weight uncertainty.

How robust is a top-k recommendation to small errors in the weight vector?
This example widens the preference region step by step around an indicated
weight vector and tracks how the UTK1 answer (the set of options that could
enter the top-k) grows, how many distinct top-k sets appear, and at which
leeway the recommendation first changes at all.  It also demonstrates the
generalized scoring functions of Section 6 of the paper.

Run with:  python examples/sensitivity_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import PowerScoring, hyperrectangle, utk1, utk2
from repro.core.preference import reduce_weights
from repro.datasets.synthetic import synthetic_dataset
from repro.queries.topk import top_k_indices


def widen_region(reduced: np.ndarray, leeway: float) -> "hyperrectangle":
    lower = np.maximum(reduced - leeway, 1e-3)
    upper = reduced + leeway
    # Keep the region inside the simplex.
    if upper.sum() >= 1.0:
        upper = upper * (1.0 - 1e-3) / upper.sum()
        lower = np.minimum(lower, upper - 1e-4)
    return hyperrectangle(lower, upper)


def main() -> None:
    data = synthetic_dataset("ANTI", 1500, 4, seed=3)
    k = 5
    indicated = np.array([0.35, 0.30, 0.20, 0.15])
    reduced = reduce_weights(indicated)
    exact = set(top_k_indices(data.values, reduced, k))
    print(f"Exact top-{k} at the indicated weights: {sorted(exact)}\n")

    print(f"{'leeway':>8}  {'UTK1 size':>9}  {'distinct top-k sets':>19}  " f"{'new options':>11}")
    first_change = None
    for leeway in (0.005, 0.01, 0.02, 0.04, 0.08):
        region = widen_region(reduced, leeway)
        result = utk1(data, region, k)
        partitioning = utk2(data, region, k)
        new_options = sorted(set(result.indices) - exact)
        if new_options and first_change is None:
            first_change = leeway
        print(f"{leeway:>8.3f}  {len(result):>9}  "
              f"{len(partitioning.distinct_top_k_sets):>19}  {len(new_options):>11}")
    if first_change is None:
        print("\nThe recommendation is stable for every tested leeway.")
    else:
        print(f"\nThe top-{k} set first changes at a leeway of {first_change}: "
              "weights this uncertain already lead to different recommendations.")

    # Generalized scoring (Section 6): rank by weighted squared attributes.
    region = widen_region(reduced, 0.02)
    quadratic = utk1(data, region, k, scoring=PowerScoring(2.0))
    linear = utk1(data, region, k)
    print("\nWith a quadratic scoring function the UTK1 answer has "
          f"{len(quadratic)} options (linear: {len(linear)}); overlap: "
          f"{len(set(quadratic.indices) & set(linear.indices))} options.")


if __name__ == "__main__":
    main()
