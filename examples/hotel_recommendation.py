"""Hotel recommendation with uncertain preferences (the paper's motivating example).

A user of a hospitality portal rates the importance of Service, Cleanliness
and Location as 0.3 / 0.5 / 0.2 — but those numbers are a rough indication,
not gospel.  Instead of trusting them exactly, we expand the weight vector
into a region and report every hotel that could be a top-k recommendation for
*some* preference inside the region, as well as the exact top-k set for each
sub-range of preferences.

Run with:  python examples/hotel_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, hyperrectangle, utk1, utk2
from repro.core.preference import reduce_weights
from repro.datasets.real import hotel_dataset
from repro.queries.topk import top_k_indices
from repro.skyline.skyband import k_skyband, onion_candidates


def paper_example() -> None:
    """The 7-hotel example of Figure 1 (k = 2, R = [0.05,0.45] x [0.05,0.25])."""
    hotels = Dataset(
        [
            [8.3, 9.1, 7.2],   # p1
            [2.4, 9.6, 8.6],   # p2
            [5.4, 1.6, 4.1],   # p3
            [2.6, 6.9, 9.4],   # p4
            [7.3, 3.1, 2.4],   # p5
            [7.9, 6.4, 6.6],   # p6
            [8.6, 7.1, 4.3],   # p7
        ],
        labels=[f"p{i}" for i in range(1, 8)],
    )
    region = hyperrectangle([0.05, 0.05], [0.45, 0.25])
    result = utk1(hotels, region, k=2)
    print("Figure 1 example — hotels that may enter the top-2:", result.labels(hotels))
    partitioning = utk2(hotels, region, k=2)
    print("Exact top-2 set per sub-region of R:")
    for partition in partitioning.partitions:
        names = sorted(hotels.label_of(i) for i in partition.top_k)
        centre = np.round(partition.interior_point, 3)
        print(f"  around weights {centre}: {names}")


def portal_scenario() -> None:
    """A larger portal catalogue with an expanded user weight vector."""
    data = hotel_dataset(cardinality=3000, seed=11)
    k = 5

    # The user's indicated weights for (service, cleanliness, value, location).
    indicated = np.array([0.30, 0.40, 0.20, 0.10])
    reduced = reduce_weights(indicated)
    leeway = 0.03  # keeps the expanded region inside the weight simplex
    region = hyperrectangle(np.maximum(reduced - leeway, 1e-3), reduced + leeway)

    exact = top_k_indices(data.values, reduced, k)
    print(f"\nPortal scenario — top-{k} for the indicated weights: {exact}")

    result = utk1(data, region, k)
    extras = [i for i in result.indices if i not in exact]
    print(f"UTK1 with a +-{leeway} leeway reports {len(result)} hotels "
          f"({len(extras)} beyond the exact top-{k}): {result.indices}")

    skyband = k_skyband(data.values, k)
    onion = onion_candidates(data.values, k)
    print(f"For comparison: k-skyband holds {skyband.size} hotels, "
          f"onion layers {onion.size} — both ignore the user's region entirely.")

    partitioning = utk2(data, region, k)
    print("UTK2 partitions the preference region into "
          f"{len(partitioning.distinct_top_k_sets)} distinct top-{k} sets.")


def main() -> None:
    paper_example()
    portal_scenario()


if __name__ == "__main__":
    main()
