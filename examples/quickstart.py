"""Quickstart: run both UTK query versions on a small synthetic dataset.

The scenario mirrors the paper's introduction: a user browses options scored
on several criteria, supplies only an *approximate* preference (a region of
weight vectors instead of an exact vector), and asks which options may rank
among her top-k.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, hyperrectangle, utk1, utk2
from repro.core.preference import top_k_at


def main() -> None:
    rng = np.random.default_rng(42)

    # A catalogue of 500 options with 3 criteria, each rated on a 0-10 scale.
    data = Dataset(rng.random((500, 3)) * 10.0)

    # The user roughly weights criterion 1 around 0.25 and criterion 2 around
    # 0.15 (criterion 3 takes the remainder); we allow a +-0.10 leeway.
    region = hyperrectangle([0.15, 0.05], [0.35, 0.25])
    k = 3

    # UTK1: which options can make it into the top-3 anywhere in the region?
    result = utk1(data, region, k)
    print(f"UTK1: {len(result)} options may enter the top-{k}: {result.indices}")
    for index in result.indices:
        witness = result.witness_of(index)
        print(f"  option {index}: witness weights (reduced) = {np.round(witness, 3)}")

    # UTK2: the exact top-3 set for every possible weight vector in the region.
    partitioning = utk2(data, region, k)
    print(f"\nUTK2: {len(partitioning)} partitions, "
          f"{len(partitioning.distinct_top_k_sets)} distinct top-{k} sets")
    for position, partition in enumerate(partitioning.partitions, start=1):
        point = partition.interior_point
        print(f"  partition {position}: top-{k} = {sorted(partition.top_k)} "
              f"(e.g. at weights {np.round(point, 3)})")

    # Cross-check: at the exact centre of the region the conventional top-k
    # must agree with the partition containing it.
    centre = region.pivot
    conventional = set(top_k_at(data.values, centre, k).tolist())
    from_partitioning = partitioning.top_k_at(centre)
    print(f"\nAt the region's pivot {np.round(centre, 3)}:")
    print(f"  conventional top-{k}: {sorted(conventional)}")
    print(f"  UTK2 partition:      {sorted(from_partitioning)}")
    assert conventional == set(from_partitioning)


if __name__ == "__main__":
    main()
