"""NBA scouting: the paper's Figure 9 case studies on 2016-17 statistics.

A scout ranks players by a weighted mix of Rebounds, Points and Assists but
only knows the weights approximately.  UTK answers: (i) which players could
make the top-3 under any admissible weighting, and (ii) exactly which top-3
applies for each sub-range of weightings — with the traditional k-skyband and
onion operators shown for contrast (they report several times more players
because they ignore the preference region).

Run with:  python examples/nba_scouting.py
"""

from __future__ import annotations

import numpy as np

from repro import hyperrectangle, utk1, utk2
from repro.datasets.nba import nba_star_dataset
from repro.skyline.skyband import k_skyband, onion_candidates


def two_dimensional_study() -> None:
    """Figure 9(a): Rebounds/Points, k = 3, rebounds weight in [0.64, 0.74]."""
    data = nba_star_dataset(("rebounds", "points"))
    region = hyperrectangle([0.64], [0.74])
    k = 3

    result = utk1(data, region, k)
    print("2-D study (Rebounds vs Points, rebounds weight in [0.64, 0.74])")
    print(f"  UTK1 players ({len(result)}): {result.labels(data)}")

    partitioning = utk2(data, region, k)
    for partition in partitioning.partitions:
        names = sorted(data.label_of(i) for i in partition.top_k)
        lo, hi = partition.cell.linear_range(np.array([1.0]))
        print(f"  rebounds weight in [{lo:.3f}, {hi:.3f}] -> top-3 = {names}")

    onion = onion_candidates(data.values, k)
    skyband = k_skyband(data.values, k)
    print(f"  onion layers hold {onion.size} players, k-skyband {skyband.size} "
          f"— versus {len(result)} actually reachable in the region")


def three_dimensional_study() -> None:
    """Figure 9(b): Rebounds/Points/Assists, k = 3, R = [0.2,0.3] x [0.5,0.6]."""
    data = nba_star_dataset(("rebounds", "points", "assists"))
    region = hyperrectangle([0.2, 0.5], [0.3, 0.6])
    k = 3

    result = utk1(data, region, k)
    print("\n3-D study (Rebounds/Points/Assists, wr in [0.2,0.3], wp in [0.5,0.6])")
    print(f"  UTK1 players ({len(result)}): {result.labels(data)}")

    partitioning = utk2(data, region, k)
    print(f"  UTK2 partitions: {len(partitioning)} "
          f"({len(partitioning.distinct_top_k_sets)} distinct top-3 sets)")
    for top_k in sorted(
        partitioning.distinct_top_k_sets, key=lambda s: sorted(data.label_of(i) for i in s)
    ):
        names = sorted(data.label_of(i) for i in top_k)
        print(f"    {names}")

    onion = onion_candidates(data.values, k)
    skyband = k_skyband(data.values, k)
    print(f"  onion layers hold {onion.size} players, k-skyband {skyband.size}")


def main() -> None:
    two_dimensional_study()
    three_dimensional_study()


if __name__ == "__main__":
    main()
