"""Region-partitioned parallel execution: same answer, more cores.

Answers one heavy UTK query serially and through the parallel executor,
verifies the answers match exactly, and prints the timings.  On a multi-core
machine the parallel run finishes several times faster; the result is
guaranteed to be the same either way.

Run with ``PYTHONPATH=src python examples/parallel_scaling.py``.
"""

import os
import time

from repro import hyperrectangle, utk_query
from repro.datasets.synthetic import synthetic_dataset


def main() -> None:
    data = synthetic_dataset("IND", 2000, 4, seed=23)
    region = hyperrectangle([0.15, 0.20, 0.10], [0.29, 0.34, 0.24])
    k = 8

    started = time.perf_counter()
    serial_utk1, serial_utk2 = utk_query(data, region, k)
    serial_seconds = time.perf_counter() - started
    print(f"serial:   {serial_seconds:6.2f}s  "
          f"(UTK1 {len(serial_utk1)} records, UTK2 {len(serial_utk2)} partitions)")

    workers = max(2, os.cpu_count() or 2)
    started = time.perf_counter()
    par_utk1, par_utk2 = utk_query(data, region, k, workers=workers)
    parallel_seconds = time.perf_counter() - started
    print(f"workers={workers}: {parallel_seconds:6.2f}s  "
          f"(UTK1 {len(par_utk1)} records, UTK2 {len(par_utk2)} partitions, "
          f"{par_utk2.stats['shards']} shards)")

    assert par_utk1.indices == serial_utk1.indices
    assert par_utk2.distinct_top_k_sets == serial_utk2.distinct_top_k_sets
    print(f"answers identical; speedup {serial_seconds / parallel_seconds:.2f}x")


if __name__ == "__main__":
    main()
