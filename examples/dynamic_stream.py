"""Dynamic data: serving an interleaved insert/delete/query stream.

A production recommender cannot drop its warm caches every time a record is
added or retired.  :class:`~repro.dynamic.engine.DynamicUTKEngine` maintains
the R-tree incrementally, repairs every cached r-skyband per update
(provable no-ops cost a handful of r-dominance tests) and evicts only the
cached results an update actually invalidated.  This demo serves the same
event stream twice — rebuilding a static engine after every update vs. one
dynamic engine — and cross-checks that both report identical answers.

Run with:  python examples/dynamic_stream.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import DynamicUTKEngine, UTKEngine, hyperrectangle
from repro.datasets import synthetic_dataset, update_stream
from repro.dynamic import serve_events


def rebuild_baseline(values: np.ndarray, events: list[dict]) -> tuple[float, list]:
    """Serve the stream with a full engine rebuild after every update."""
    ids = list(range(values.shape[0]))
    rows = {i: values[i] for i in ids}
    next_id = len(ids)
    engine = None
    answers = []
    started = time.perf_counter()
    for event in events:
        if event["op"] == "insert":
            rows[next_id] = np.asarray(event["values"], dtype=float)
            ids.append(next_id)
            next_id += 1
            engine = None  # the static engine cannot absorb an update
        elif event["op"] == "delete":
            ids.remove(event["id"])
            rows.pop(event["id"])
            engine = None
        else:
            if engine is None:
                engine = UTKEngine(np.vstack([rows[i] for i in ids]))
            region = hyperrectangle(event["lower"], event["upper"])
            result = engine.utk1(region, event["k"])
            answers.append(sorted(ids[position] for position in result.indices))
    return time.perf_counter() - started, answers


def main() -> None:
    data = synthetic_dataset("IND", 1200, 3, seed=11)
    # Low churn, hot-region queries: the serving pattern where cache warmth
    # matters — and where every update used to cost a full rebuild.
    events = update_stream(
        data, 60, insert_prob=0.08, delete_prob=0.08, k_choices=(3,), sigma=0.07,
        hot_prob=0.95, seed=11
    )
    # The baseline compares UTK1 answers, so serve every query as UTK1.
    for event in events:
        if event["op"] == "query":
            event["version"] = "utk1"
    updates = sum(1 for event in events if event["op"] != "query")
    print(f"stream: {len(events)} events ({updates} updates), n={data.size} initial records")

    cold_seconds, cold_answers = rebuild_baseline(data.values, events)
    print(f"rebuild-per-update : {cold_seconds:.2f}s")

    engine = DynamicUTKEngine(data)
    started = time.perf_counter()
    results = serve_events(engine, events)
    warm_seconds = time.perf_counter() - started
    warm_answers = [sorted(r["utk1"]["records"]) for r in results if r["op"] == "query"]
    print(f"DynamicUTKEngine   : {warm_seconds:.2f}s "
          f"— {cold_seconds / warm_seconds:.1f}x faster")
    assert warm_answers == cold_answers, "dynamic and rebuild answers must agree"
    print("answers identical across all queries")

    stats = engine.statistics()
    print(f"maintenance        : {stats['dynamic']}")
    print(f"skyband cache      : {stats['skyband']}")


if __name__ == "__main__":
    main()
