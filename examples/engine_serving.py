"""Engine serving: warm-cache speedup on an interactive query stream.

A sensitivity-analysis session fires many related queries at one dataset:
the same hot regions are revisited, and users drill down into sub-regions of
a broad query while keeping k fixed.  The one-shot API recomputes everything
per call; a persistent :class:`~repro.engine.engine.UTKEngine` binds to the
dataset once and serves repeats from its result cache and drill-downs by
clipping cached partitionings / re-filtering cached r-skybands.

Run with:  python examples/engine_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import Dataset, UTKEngine, utk1, utk2
from repro.bench.workloads import engine_query_stream
from repro.engine.batch import BatchQuery, summarize_batch


def main() -> None:
    rng = np.random.default_rng(42)
    data = Dataset(rng.random((800, 3)) * 10.0)

    # A serving-style stream: 2 hot anchor regions, then repeats and
    # drill-down sub-regions (see repro.bench.workloads.engine_query_stream).
    specs = engine_query_stream(data.dimensionality, 30, k_choices=(1, 2, 3),
                                sigma=0.05, parents=2, repeat_prob=0.45,
                                subregion_prob=0.5, seed=7)
    stream = [BatchQuery(region=spec.region, k=spec.k,
                         version="utk2" if position % 3 == 0 else "utk1")
              for position, spec in enumerate(specs)]

    # Cold: every query pays the full filtering + refinement cost.
    started = time.perf_counter()
    for query in stream:
        if query.version == "utk2":
            utk2(data, query.region, query.k)
        else:
            utk1(data, query.region, query.k)
    cold = time.perf_counter() - started
    print(f"one-shot API : {len(stream)} queries in {cold:.2f}s " f"({len(stream) / cold:.1f} q/s)")

    # Warm: bind an engine once and serve the same stream through its caches.
    engine = UTKEngine(data)
    started = time.perf_counter()
    items = engine.run_batch(stream)
    warm = time.perf_counter() - started
    summary = summarize_batch(items)
    print(f"UTKEngine    : {len(stream)} queries in {warm:.2f}s "
          f"({len(stream) / warm:.1f} q/s) — {cold / warm:.1f}x faster")
    print(f"reuse paths  : {summary['sources']}")

    stats = engine.statistics()
    print(f"engine stats : {stats['engine']}")
    print(f"skyband cache: {stats['skyband']}")

    # Serving the stream again is nearly free: everything is a result hit.
    started = time.perf_counter()
    engine.run_batch(stream)
    rerun = time.perf_counter() - started
    print(f"second pass  : {rerun:.3f}s ({len(stream) / rerun:.0f} q/s, " "all cache hits)")


if __name__ == "__main__":
    main()
