"""Kernel micro-benchmarks: vectorized kernels vs the per-record loop paths.

Each case times a kernel from :mod:`repro.kernels` against the per-record
reference implementation it replaced (kept in the package as ``*_loop``
oracles), checks that both produce identical output, and reports the
speedup.  Two cases additionally compare against the seed's one-shot
``(n, n, d)`` / ``(v, n, n)`` broadcasts, which the per-dimension kernels
also beat.

The run doubles as the CI perf gate: it fails (exit code 1) when any kernel
is slower than its loop reference, or when the dominance-matrix kernel
misses the required 5x at n=2000.  Results are written to
``BENCH_kernels.json`` via :func:`repro.bench.reporting.write_bench_json`.

Usage::

    python benchmarks/bench_kernels.py [--smoke] [--output BENCH_kernels.json]
"""

import argparse
import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np
from conftest import best_time, emit_metrics_artifact, print_rows

from repro import obs
from repro.bench.reporting import write_bench_json
from repro.bench.workloads import query_workload, random_region
from repro.core.rsa import RSA
from repro.datasets.synthetic import synthetic_dataset
from repro.geometry.linear_programming import minimize
from repro.kernels import (
    dominance_counts,
    dominance_counts_loop,
    dominance_matrix,
    dominance_matrix_loop,
    dominators_mask,
    dominators_mask_loop,
    evaluate_halfspaces,
    evaluate_halfspaces_loop,
    halfspace_coefficients,
    r_dominance_matrix,
    r_dominance_matrix_loop,
    vertex_scores,
)

#: Required speedup of the dominance-matrix kernel over the loop path at
#: n=2000 (the PR's acceptance bar); every other case must simply not lose.
REQUIRED_DOMINANCE_SPEEDUP = 5.0

#: Workload sizes.  The dominance-matrix gate runs at n=2000 in both modes;
#: smoke trims repetitions and the informational extras.
SETTINGS = {
    "default": {
        "repeats": 3,
        "dominance_n": 2000,
        "dominance_d": 4,
        "mask_probes": 32,
        "halfspace_m": 3000,
        "halfspace_v": 16,
        "r_loop_n": 400,
        "broadcast_cases": True,
        "rsa_case": True,
        "seed": 11,
    },
    "smoke": {
        "repeats": 2,
        "dominance_n": 2000,
        "dominance_d": 4,
        "mask_probes": 16,
        "halfspace_m": 1500,
        "halfspace_v": 12,
        "r_loop_n": 256,
        "broadcast_cases": False,
        "rsa_case": False,
        "seed": 11,
    },
}


def compare(case, baseline, kernel, repeats, identical, **extra):
    """Time ``baseline`` vs ``kernel`` and build one benchmark row."""
    loop_seconds, loop_result = best_time(baseline, repeats)
    kernel_seconds, kernel_result = best_time(kernel, repeats)
    return {
        "case": case,
        **extra,
        "loop_seconds": round(loop_seconds, 5),
        "kernel_seconds": round(kernel_seconds, 5),
        "speedup": round(loop_seconds / kernel_seconds, 2),
        "identical": bool(identical(loop_result, kernel_result)),
    }


def lp_values_match(first, second, tol=1e-7):
    """Whether two LP result batches agree (status, and value when optimal)."""
    for one, two in zip(first, second):
        if one.is_optimal != two.is_optimal:
            return False
        if one.is_optimal and abs(one.value - two.value) > tol:
            return False
    return True


def dominance_broadcast(values, tol=1e-9):
    """The seed's one-shot ``(n, n, d)`` broadcast (pre-kernel vectorized path)."""
    geq = np.all(values[:, None, :] >= values[None, :, :] - tol, axis=2)
    gt = np.any(values[:, None, :] > values[None, :, :] + tol, axis=2)
    matrix = geq & gt
    np.fill_diagonal(matrix, False)
    return matrix


def r_dominance_broadcast(scores, tol=1e-9):
    """The seed's ``(v, n, n)`` difference-tensor broadcast (pre-kernel path)."""
    diff = scores[:, :, None] - scores[:, None, :]
    matrix = np.all(diff >= -tol, axis=0) & np.any(diff > tol, axis=0)
    np.fill_diagonal(matrix, False)
    return matrix


def run_benchmark(setting):
    """Run every case; returns ``(rows, gates)``."""
    rng = np.random.default_rng(setting["seed"])
    repeats = setting["repeats"]
    n, d = setting["dominance_n"], setting["dominance_d"]
    values = rng.random((n, d))
    rows = []

    rows.append(
        compare(
            "dominance_matrix",
            lambda: dominance_matrix_loop(values),
            lambda: dominance_matrix(values),
            repeats,
            np.array_equal,
            n=n,
            d=d,
        )
    )
    rows.append(
        compare(
            "dominance_counts",
            lambda: dominance_counts_loop(values),
            lambda: dominance_counts(values),
            repeats,
            np.array_equal,
            n=n,
            d=d,
        )
    )

    probes = rng.random((setting["mask_probes"], d))

    def mask_all(function):
        return np.vstack([function(probe, values) for probe in probes])

    rows.append(
        compare(
            "dominators_mask",
            lambda: mask_all(dominators_mask_loop),
            lambda: mask_all(dominators_mask),
            repeats,
            np.array_equal,
            n=n,
            d=setting["mask_probes"],
        )
    )

    m, v = setting["halfspace_m"], setting["halfspace_v"]
    normals, offsets = halfspace_coefficients(rng.random(d), rng.random((m, d)))
    points = rng.random((v, d - 1)) * 0.2
    rows.append(
        compare(
            "halfspace_eval",
            lambda: evaluate_halfspaces_loop(normals, offsets, points),
            lambda: evaluate_halfspaces(normals, offsets, points),
            repeats,
            lambda a, b: np.allclose(a, b, rtol=1e-12, atol=1e-14),
            n=m,
            d=v,
        )
    )

    vertices = rng.random((8, d - 1)) * 0.2
    r_n = setting["r_loop_n"]
    scores = vertex_scores(values[:r_n], vertices)
    rows.append(
        compare(
            "r_dominance_matrix",
            lambda: r_dominance_matrix_loop(scores),
            lambda: r_dominance_matrix(scores),
            repeats,
            np.array_equal,
            n=r_n,
            d=vertices.shape[0],
        )
    )

    # Cell-sized bounded LPs: the scipy round-trip vs the exact
    # vertex-enumeration fast path the arrangement machinery now uses.
    region = random_region(d, 0.1, rng)
    lp_a, lp_b = region.constraints
    extra_a = rng.normal(size=(6, d - 1))
    extra_b = extra_a @ region.pivot + np.abs(rng.normal(size=6)) * 0.05
    lp_a = np.vstack([lp_a, extra_a])
    lp_b = np.concatenate([lp_b, extra_b])
    objectives = rng.normal(size=(24, d - 1))

    def solve_lps(**kwargs):
        return [minimize(objective, lp_a, lp_b, **kwargs) for objective in objectives]

    rows.append(
        compare(
            "bounded_lp_minimize",
            lambda: solve_lps(),
            lambda: solve_lps(assume_bounded=True),
            repeats,
            lp_values_match,
            n=lp_a.shape[0],
            d=objectives.shape[0],
        )
    )

    if setting["broadcast_cases"]:
        rows.append(
            compare(
                "dominance_matrix_vs_broadcast",
                lambda: dominance_broadcast(values),
                lambda: dominance_matrix(values),
                repeats,
                np.array_equal,
                n=n,
                d=d,
            )
        )
        wide_scores = vertex_scores(values[:1500], vertices)
        rows.append(
            compare(
                "r_dominance_vs_broadcast",
                lambda: r_dominance_broadcast(wide_scores),
                lambda: r_dominance_matrix(wide_scores),
                repeats,
                np.array_equal,
                n=1500,
                d=vertices.shape[0],
            )
        )

    if setting["rsa_case"]:
        data = synthetic_dataset("IND", 1500, 3, seed=setting["seed"])
        specs = query_workload(3, 4, 0.06, 3, seed=setting["seed"])

        def run_rsa():
            return [RSA(data.values, spec.region, spec.k).run() for spec in specs]

        elapsed, results = best_time(run_rsa, repeats)
        rows.append(
            {
                "case": "rsa_end_to_end",
                "n": 1500,
                "d": 3,
                "loop_seconds": None,
                "kernel_seconds": round(elapsed / len(specs), 5),
                "speedup": None,
                "identical": all(len(result) > 0 for result in results),
            }
        )

    gated = [row for row in rows if row["loop_seconds"] is not None]
    dominance_row = rows[0]
    gates = {
        "all_outputs_identical": all(row["identical"] for row in rows),
        "no_kernel_slower_than_loop": all(row["speedup"] >= 1.0 for row in gated),
        "dominance_matrix_required_speedup": REQUIRED_DOMINANCE_SPEEDUP,
        "dominance_matrix_speedup": dominance_row["speedup"],
        "dominance_matrix_n": dominance_row["n"],
    }
    gates["passed"] = (
        gates["all_outputs_identical"]
        and gates["no_kernel_slower_than_loop"]
        and dominance_row["speedup"] >= REQUIRED_DOMINANCE_SPEEDUP
    )
    return rows, gates


def test_kernel_perf_gate():
    """Pytest entry point: smoke-sized run asserting the perf gate."""
    rows, gates = run_benchmark(SETTINGS["smoke"])
    print_rows("Kernel micro-benchmarks — loop path vs vectorized kernels", rows)
    assert gates["all_outputs_identical"]
    assert gates["passed"], gates


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument(
        "--output",
        default="BENCH_kernels.json",
        help="path of the BENCH JSON artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--required-speedup",
        type=float,
        default=REQUIRED_DOMINANCE_SPEEDUP,
        help="fail when the dominance-matrix kernel falls below this factor",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "default"
    obs.REGISTRY.reset()
    with obs.activated():
        rows, gates = run_benchmark(SETTINGS[mode])
    gates["dominance_matrix_required_speedup"] = args.required_speedup
    gates["passed"] = (
        gates["all_outputs_identical"]
        and gates["no_kernel_slower_than_loop"]
        and gates["dominance_matrix_speedup"] >= args.required_speedup
    )
    print_rows("Kernel micro-benchmarks — loop path vs vectorized kernels", rows)
    write_bench_json(args.output, "kernels", rows, gates=gates, meta={"mode": mode})
    print(f"\nwrote {args.output}")
    print(f"wrote {emit_metrics_artifact(args.output, 'kernels', mode)}")
    if not gates["passed"]:
        print(f"FAIL: kernel perf gate not met: {gates}", file=sys.stderr)
        return 1
    print(
        f"dominance-matrix kernel speedup {gates['dominance_matrix_speedup']}x "
        f"(required: {args.required_speedup}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
