"""Figure 9: NBA 2016-17 case studies (2-D and 3-D) and qualitative comparison.

Reproduces the UTK1/UTK2 outputs on the curated star table and reports the
players returned by UTK versus the k onion layers and the k-skyband.
"""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_fig9_2d, experiment_fig9_3d


def test_fig9a_two_dimensional(benchmark):
    outcome = benchmark(experiment_fig9_2d)
    rows = [
        {"operator": "UTK", "players": outcome["counts"]["utk"]},
        {"operator": "onion", "players": outcome["counts"]["onion"]},
        {"operator": "k-skyband", "players": outcome["counts"]["skyband"]},
    ]
    print_rows("Figure 9(a) — 2D NBA case study (k=3, R=[0.64,0.74])", rows)
    print("  UTK1 players:", ", ".join(outcome["utk1_players"]))
    for part in outcome["utk2_partitions"]:
        print("  top-3:", part["top_k"])
    assert outcome["counts"]["utk"] <= outcome["counts"]["onion"]


def test_fig9b_three_dimensional(benchmark):
    outcome = benchmark(experiment_fig9_3d)
    rows = [
        {"operator": "UTK", "players": outcome["counts"]["utk"]},
        {"operator": "onion", "players": outcome["counts"]["onion"]},
        {"operator": "k-skyband", "players": outcome["counts"]["skyband"]},
        {"operator": "UTK2 partitions", "players": outcome["counts"]["utk2_partitions"]},
    ]
    print_rows("Figure 9(b) — 3D NBA case study (k=3, R=[0.2,0.3]x[0.5,0.6])", rows)
    print("  UTK1 players:", ", ".join(outcome["utk1_players"]))
    for part in outcome["utk2_partitions"]:
        print("  top-3:", part["top_k"])
    assert "Russell Westbrook" in outcome["utk1_players"]
