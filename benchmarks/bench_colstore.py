"""Colstore at scale: streaming build + paged-R-tree queries under an RSS cap.

The colstore's promise is that dataset size stops being a RAM question: the
records stream into memory-mapped column files chunk by chunk, the R-tree is
STR-bulk-loaded with external chunked sort passes, and queries traverse the
paged index through a bounded buffer pool.  This benchmark builds a synthetic
dataset (10M records in the nightly configuration), answers UTK queries
against it, and gates on three facts:

* **RSS budget** — peak RSS (``ru_maxrss``) stays under the configured cap.
  ``main()`` additionally lowers the ``RLIMIT_DATA`` soft limit (recorded via
  ``resource.getrlimit`` in the artifact) so any code path that tried to
  materialize the dataset on the heap would fail to allocate outright —
  file-backed mappings are exempt from ``RLIMIT_DATA``, which is exactly the
  boundary the colstore is supposed to respect.
* **Bit-identical storage** — sampled chunks re-generated from the
  deterministic per-chunk streams compare equal (``==`` on every byte-width
  float) against the store's mmap views.
* **Identical answers** (smoke) — UTK1/UTK2 answers through the colstore
  backend match an in-memory engine over the same data exactly.

Results land in ``BENCH_colstore.json``; the smoke configuration is a CI
gate (``repro matrix --gates``), the default configuration is the nightly
10M bulk-load + query job.

Usage::

    python benchmarks/bench_colstore.py [--smoke]
        [--output BENCH_colstore.json] [--store-dir DIR]
"""

import argparse
import math
import resource
import shutil
import sys
import tempfile
import time
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import emit_metrics_artifact, print_rows

import numpy as np

from repro import obs
from repro.bench.reporting import write_bench_json
from repro.colstore import INDEX_NAME, ColumnarRecordStore, build_paged_rtree
from repro.core.api import make_engine
from repro.core.region import hyperrectangle
from repro.datasets.synthetic import synthetic_chunks

SETTINGS = {
    # The nightly 10M-record configuration: records and index live on disk,
    # the RSS cap is far below what materializing the dataset (let alone an
    # in-memory R-tree over it) would need.
    "default": {
        "cardinality": 10_000_000,
        "dimensionality": 3,
        "seed": 23,
        "chunk_rows": 1 << 18,
        "max_entries": 64,
        "budget_rows": 1 << 20,
        "rss_budget_mb": 2048,
        "heap_cap_mb": 1536,
        "check_answers": False,
    },
    # CI-sized: small enough to also build the in-memory reference engine
    # and require exactly identical answers.
    "smoke": {
        "cardinality": 24_000,
        "dimensionality": 3,
        "seed": 23,
        "chunk_rows": 4096,
        "max_entries": 32,
        "budget_rows": 4096,
        "rss_budget_mb": 1024,
        "heap_cap_mb": 896,
        "check_answers": True,
    },
}

#: Probe queries (hyper-rectangles inside the d-1 weight simplex).
QUERIES = (
    {"lower": [0.10, 0.10], "upper": [0.22, 0.22], "k": 2},
    {"lower": [0.30, 0.20], "upper": [0.40, 0.30], "k": 3},
)


def _rss_mb() -> float:
    """Peak RSS of this process in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _rlimit_snapshot() -> dict:
    """The address-space/heap limits in effect, for the artifact."""
    snapshot = {}
    for name in ("RLIMIT_DATA", "RLIMIT_AS"):
        soft, hard = resource.getrlimit(getattr(resource, name))
        snapshot[name] = {
            "soft": soft if soft != resource.RLIM_INFINITY else "unlimited",
            "hard": hard if hard != resource.RLIM_INFINITY else "unlimited",
        }
    return snapshot


def _sampled_chunk_check(store, setting) -> int:
    """Regenerate a few chunks from their seeds; count byte-exact matches.

    The chunk streams are deterministic, so ``store.matrix`` must reproduce
    them bit for bit — this verifies the storage path (mmap writes, growth
    copies, transposed views) without materializing the dataset.
    """
    chunk_rows = setting["chunk_rows"]
    n_chunks = math.ceil(setting["cardinality"] / chunk_rows)
    matches = 0
    for index in sorted({0, n_chunks // 2, n_chunks - 1}):
        rng = np.random.default_rng([setting["seed"], index])
        expected = rng.random(
            (min(chunk_rows, setting["cardinality"] - index * chunk_rows),
             setting["dimensionality"])
        )
        start = index * chunk_rows
        actual = store.matrix[start:start + expected.shape[0]]
        if np.array_equal(actual, expected):
            matches += 1
    return matches


def run_benchmark(setting, store_dir=None):
    """Build + query the colstore; returns ``(rows, gates)``."""
    tempdir = None
    if store_dir is None:
        tempdir = tempfile.mkdtemp(prefix="bench-colstore-")
        store_dir = tempdir
    directory = Path(store_dir)
    rows = []
    try:
        started = time.perf_counter()
        store = ColumnarRecordStore.from_chunks(
            synthetic_chunks(
                "IND", setting["cardinality"], setting["dimensionality"],
                setting["seed"], chunk_rows=setting["chunk_rows"],
            ),
            directory,
        )
        build_seconds = time.perf_counter() - started
        rows.append({
            "phase": "build_store",
            "cardinality": setting["cardinality"],
            "seconds": round(build_seconds, 3),
            "rows_per_second": round(setting["cardinality"] / max(build_seconds, 1e-9)),
            "rss_mb": round(_rss_mb(), 1),
        })

        started = time.perf_counter()
        meta = build_paged_rtree(
            store, directory / INDEX_NAME,
            max_entries=setting["max_entries"],
            budget_rows=setting["budget_rows"],
            scratch_dir=directory,
        )
        index_seconds = time.perf_counter() - started
        rows.append({
            "phase": "build_index",
            "cardinality": setting["cardinality"],
            "seconds": round(index_seconds, 3),
            "rows_per_second": round(setting["cardinality"] / max(index_seconds, 1e-9)),
            "rss_mb": round(_rss_mb(), 1),
            "pages": int(meta["n_pages"]),
            "height": int(meta["height"]),
        })

        chunks_checked = _sampled_chunk_check(store, setting)
        store.close()

        engine = make_engine(None, store="colstore", store_dir=directory)
        latencies = []
        mismatches = 0
        reference = None
        if setting["check_answers"]:
            values = np.concatenate(list(synthetic_chunks(
                "IND", setting["cardinality"], setting["dimensionality"],
                setting["seed"], chunk_rows=setting["chunk_rows"],
            )))
            reference = make_engine(values)
        for query in QUERIES:
            region = hyperrectangle(query["lower"], query["upper"])
            started = time.perf_counter()
            result = engine.utk1(region, query["k"])
            latencies.append(time.perf_counter() - started)
            if reference is not None:
                expected = reference.utk1(region, query["k"])
                if sorted(map(int, result.indices)) != sorted(map(int, expected.indices)):
                    mismatches += 1
                got = sorted(sorted(map(int, s))
                             for s in engine.utk2(region, query["k"]).distinct_top_k_sets)
                want = sorted(sorted(map(int, s))
                              for s in reference.utk2(region, query["k"]).distinct_top_k_sets)
                if got != want:
                    mismatches += 1
        rows.append({
            "phase": "query",
            "cardinality": setting["cardinality"],
            "seconds": round(sum(latencies) / len(latencies), 4),
            "rows_per_second": None,
            "rss_mb": round(_rss_mb(), 1),
        })
    finally:
        if tempdir is not None:
            shutil.rmtree(tempdir, ignore_errors=True)

    peak_mb = _rss_mb()
    gates = {
        "rss_budget_mb": setting["rss_budget_mb"],
        "peak_rss_mb": round(peak_mb, 1),
        "rss_within_budget": peak_mb <= setting["rss_budget_mb"],
        "chunks_checked": chunks_checked,
        "storage_bit_identical": chunks_checked == 3,
        "answer_mismatches": mismatches,
        "answers_identical": mismatches == 0,
        "answers_checked": bool(setting["check_answers"]),
        "rlimits": _rlimit_snapshot(),
    }
    gates["passed"] = (
        gates["rss_within_budget"]
        and gates["storage_bit_identical"]
        and gates["answers_identical"]
    )
    return rows, gates


def test_colstore_gate():
    """Pytest entry point: smoke-sized run asserting the smoke gate."""
    rows, gates = run_benchmark(SETTINGS["smoke"])
    print_rows("Colstore — streaming build + paged queries", rows)
    assert gates["storage_bit_identical"], gates
    assert gates["answers_identical"], gates
    assert gates["passed"], gates


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument(
        "--output",
        default="BENCH_colstore.json",
        help="path of the BENCH JSON artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="build into this directory instead of a temp dir (kept afterwards)",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "default"
    setting = SETTINGS[mode]

    # Cap the heap so a regression that materializes the dataset in memory
    # fails to allocate instead of quietly inflating RSS.  File-backed
    # mappings are exempt from RLIMIT_DATA — the exact boundary under test.
    soft, hard = resource.getrlimit(resource.RLIMIT_DATA)
    cap = setting["heap_cap_mb"] * 1024 * 1024
    limited = False
    if soft == resource.RLIM_INFINITY or soft > cap:
        try:
            resource.setrlimit(resource.RLIMIT_DATA, (cap, hard))
            limited = True
        except (ValueError, OSError):
            pass  # sandboxes may forbid it; the ru_maxrss gate still applies

    try:
        obs.REGISTRY.reset()
        with obs.activated():
            rows, gates = run_benchmark(setting, store_dir=args.store_dir)
    finally:
        if limited:
            resource.setrlimit(resource.RLIMIT_DATA, (soft, hard))
    gates["rlimit_data_capped"] = limited

    print_rows("Colstore — streaming build + paged queries", rows)
    write_bench_json(args.output, "colstore_scale", rows, gates=gates, meta={"mode": mode})
    print(f"\nwrote {args.output}")
    print(f"wrote {emit_metrics_artifact(args.output, 'colstore_scale', mode)}")
    if not gates["passed"]:
        print(f"FAIL: colstore gate not met: {gates}", file=sys.stderr)
        return 1
    print(
        f"peak RSS {gates['peak_rss_mb']}MB <= {gates['rss_budget_mb']}MB budget, "
        f"{gates['chunks_checked']}/3 sampled chunks bit-identical, "
        f"{gates['answer_mismatches']} answer mismatches"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
