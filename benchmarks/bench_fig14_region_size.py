"""Figure 14: effect of the query-region side length sigma (IND)."""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_fig14


def test_fig14_region_size(benchmark, bench_scale):
    rows = benchmark.pedantic(experiment_fig14, args=(bench_scale,), iterations=1, rounds=1)
    print_rows("Figure 14 — effect of region size sigma (IND)", rows)
    # Shape: a larger region can only enlarge the UTK result.
    assert rows[0]["utk1_records"] <= rows[-1]["utk1_records"]
    assert rows[0]["utk2_sets"] <= rows[-1]["utk2_sets"]
