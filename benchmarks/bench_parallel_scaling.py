"""Parallel-executor scaling: serial RSA/JAA vs region-partitioned workers.

Runs the same UTK workload serially and through the parallel executor at
1/2/4/8 workers, verifies that every configuration reports the identical
answer (same UTK1 record set, same UTK2 top-k sets), and reports the
speedup per worker count.  Results are written to ``BENCH_parallel.json``
via :func:`repro.bench.reporting.write_bench_json`.

The run doubles as the CI parallel smoke gate: it fails (exit code 1) when
any configuration's answer differs from serial, or when the 4-worker
speedup falls below the required factor (default 1.5x).  The speedup gate
needs real cores — on machines with fewer than 4 CPUs it is recorded as
skipped, while the identity checks always apply.

Usage::

    python benchmarks/bench_parallel_scaling.py [--smoke]
        [--output BENCH_parallel.json] [--required-speedup 1.5]
"""

import argparse
import os
import sys
import time
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import emit_metrics_artifact, print_rows

from repro import obs
from repro.bench.reporting import write_bench_json
from repro.bench.workloads import query_workload
from repro.core.rskyband import compute_r_skyband
from repro.datasets.synthetic import synthetic_dataset
from repro.parallel import parallel_utk_query

#: Required 4-worker speedup over the serial path (the PR's acceptance bar).
REQUIRED_SPEEDUP = 1.5

#: Worker counts measured (serial baseline is workers=1 with one shard).
WORKER_COUNTS = (1, 2, 4, 8)

#: Workload sizes.  Smoke keeps CI fast while leaving enough refinement work
#: per query for the fan-out to amortize pool startup and shard transfer.
SETTINGS = {
    "default": {
        "cardinality": 3000,
        "dimensionality": 4,
        "k": 8,
        "sigma": 0.16,
        "queries": 1,
        "repeats": 2,
        "seed": 23,
    },
    "smoke": {
        "cardinality": 2000,
        "dimensionality": 4,
        "k": 8,
        "sigma": 0.14,
        "queries": 1,
        "repeats": 1,
        "seed": 23,
    },
}


def fingerprint(first, second):
    """Comparable summary of a query answer: record set + distinct top-k sets."""
    return (
        tuple(first.indices),
        tuple(sorted(tuple(sorted(s)) for s in second.distinct_top_k_sets)),
    )


def run_workload(values, specs, skybands, workers):
    """Answer every query at the given worker count; returns (seconds, fingerprints)."""
    started = time.perf_counter()
    answers = []
    for spec, skyband in zip(specs, skybands):
        first, second = parallel_utk_query(
            values, spec.region, spec.k, workers=workers, skyband=skyband
        )
        answers.append(fingerprint(first, second))
    return time.perf_counter() - started, answers


def run_benchmark(setting):
    """Measure every worker count; returns ``(rows, gates)``."""
    data = synthetic_dataset(
        "IND", setting["cardinality"], setting["dimensionality"], seed=setting["seed"]
    )
    specs = query_workload(
        setting["dimensionality"],
        setting["k"],
        setting["sigma"],
        setting["queries"],
        seed=setting["seed"],
    )
    # The filtering step is shared by every configuration (as in the serial
    # utk_query path), so the measurement isolates the refinement fan-out.
    skybands = [
        compute_r_skyband(data.values, spec.region, spec.k) for spec in specs
    ]

    baseline_seconds = None
    baseline_answers = None
    rows = []
    for workers in WORKER_COUNTS:
        best = float("inf")
        answers = None
        for _ in range(setting["repeats"]):
            seconds, answers = run_workload(data.values, specs, skybands, workers)
            best = min(best, seconds)
        if workers == 1:
            baseline_seconds = best
            baseline_answers = answers
        rows.append(
            {
                "workers": workers,
                "queries": len(specs),
                "skyband_sizes": [s.size for s in skybands],
                "seconds": round(best, 4),
                "speedup": round(baseline_seconds / best, 2),
                "identical": answers == baseline_answers,
            }
        )

    cores = os.cpu_count() or 1
    four = next(row for row in rows if row["workers"] == 4)
    gates = {
        "all_answers_identical": all(row["identical"] for row in rows),
        "cores": cores,
        "speedup_gate_applicable": cores >= 4,
        "required_speedup_at_4": REQUIRED_SPEEDUP,
        "speedup_at_4": four["speedup"],
    }
    gates["passed"] = gates["all_answers_identical"] and (
        not gates["speedup_gate_applicable"] or four["speedup"] >= REQUIRED_SPEEDUP
    )
    return rows, gates


def test_parallel_scaling_gate():
    """Pytest entry point: smoke-sized run asserting the smoke gate."""
    rows, gates = run_benchmark(SETTINGS["smoke"])
    print_rows("Parallel scaling — serial vs region-partitioned workers", rows)
    assert gates["all_answers_identical"]
    assert gates["passed"], gates


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument(
        "--output",
        default="BENCH_parallel.json",
        help="path of the BENCH JSON artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--required-speedup",
        type=float,
        default=REQUIRED_SPEEDUP,
        help="fail when the 4-worker speedup falls below this factor",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "default"
    obs.REGISTRY.reset()
    with obs.activated():
        rows, gates = run_benchmark(SETTINGS[mode])
    gates["required_speedup_at_4"] = args.required_speedup
    gates["passed"] = gates["all_answers_identical"] and (
        not gates["speedup_gate_applicable"] or gates["speedup_at_4"] >= args.required_speedup
    )
    print_rows("Parallel scaling — serial vs region-partitioned workers", rows)
    write_bench_json(args.output, "parallel_scaling", rows, gates=gates, meta={"mode": mode})
    print(f"wrote {emit_metrics_artifact(args.output, 'parallel_scaling', mode)}")
    print(f"\nwrote {args.output}")
    if not gates["passed"]:
        print(f"FAIL: parallel smoke gate not met: {gates}", file=sys.stderr)
        return 1
    if gates["speedup_gate_applicable"]:
        print(
            f"4-worker speedup {gates['speedup_at_4']}x "
            f"(required: {args.required_speedup}x on {gates['cores']} cores)"
        )
    else:
        print(
            f"speedup gate skipped ({gates['cores']} core(s) available); "
            f"answers identical across all worker counts"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
