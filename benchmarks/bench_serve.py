"""Serving-tier cold start: shared-memory attach vs per-worker rebuild.

The parallel executor's historical cost model ships the record matrix to
every worker and rebuilds an R-tree per spawn.  The serving tier instead
packs the owner's store and tree into ``multiprocessing.shared_memory``
segments once and workers attach zero-copy
(:func:`repro.serve.workers.worker_query`).  This benchmark measures both
cold-start paths in *fresh spawn processes* (median over several rounds,
one single-worker pool per round so every probe pays the true per-spawn
cost) and cross-checks answers three ways: owner engine, attached worker,
rebuilt worker.

Gate: identical answers everywhere and attach setup at least
``--required-speedup`` times faster than ship-and-rebuild.  Results land in
``BENCH_serve.json`` via :func:`repro.bench.reporting.write_bench_json`.

Usage::

    python benchmarks/bench_serve.py [--smoke]
        [--output BENCH_serve.json] [--required-speedup 3.0]
"""

import argparse
import multiprocessing as mp
import statistics
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import emit_metrics_artifact, print_rows

from repro import obs
from repro.bench.reporting import write_bench_json
from repro.core.region import hyperrectangle
from repro.datasets.synthetic import synthetic_dataset
from repro.serve import ServeEngine
from repro.serve.workers import (
    worker_attach_probe,
    worker_query,
    worker_query_rebuild,
    worker_rebuild_probe,
)

#: Required attach-vs-rebuild setup speedup (the PR's acceptance bar).
#: Attach is O(1) in dataset size; rebuild pays pickling plus an STR bulk
#: load, so the measured factor is normally far above this floor.
REQUIRED_SPEEDUP = 3.0

SETTINGS = {
    "default": {"cardinality": 6000, "dimensionality": 3, "seed": 17, "rounds": 5},
    "smoke": {"cardinality": 3000, "dimensionality": 3, "seed": 17, "rounds": 3},
}

#: Probe queries (hot hyper-rectangles inside the weight simplex).
QUERIES = (
    {"lower": [0.10, 0.10], "upper": [0.25, 0.25], "k": 3},
    {"lower": [0.30, 0.20], "upper": [0.42, 0.32], "k": 2},
    {"lower": [0.05, 0.40], "upper": [0.17, 0.52], "k": 3},
)


def _fresh_pool() -> ProcessPoolExecutor:
    return ProcessPoolExecutor(1, mp_context=mp.get_context("spawn"))


def measure_setups(descriptor, values, rounds):
    """Median per-spawn setup seconds for both cold-start paths."""
    attach, rebuild = [], []
    for round_index in range(rounds):
        with _fresh_pool() as pool:
            probe = pool.submit(worker_attach_probe, descriptor).result()
            assert not probe.get("stale"), "descriptor went stale mid-benchmark"
            attach.append(probe["setup_seconds"])
        with _fresh_pool() as pool:
            probe = pool.submit(worker_rebuild_probe, round_index, values).result()
            rebuild.append(probe["setup_seconds"])
    return statistics.median(attach), statistics.median(rebuild)


def compare_answers(engine, descriptor, values):
    """Answers from owner, attached worker and rebuilt worker must agree."""
    mismatches = 0
    with _fresh_pool() as attach_pool, _fresh_pool() as rebuild_pool:
        for query in QUERIES:
            region = hyperrectangle(query["lower"], query["upper"])
            expected = sorted(int(i) for i in engine.utk1(region, query["k"]).indices)
            attached = attach_pool.submit(
                worker_query, descriptor, query["lower"], query["upper"],
                query["k"], "utk1",
            ).result()
            rebuilt = rebuild_pool.submit(
                worker_query_rebuild, 0, values, query["lower"], query["upper"],
                query["k"], "utk1",
            ).result()
            if attached.get("stale") or attached["utk1"] != expected:
                mismatches += 1
            if rebuilt["utk1"] != expected:
                mismatches += 1
    return mismatches


def run_benchmark(setting, required_speedup=REQUIRED_SPEEDUP):
    """Measure both cold-start paths; returns ``(rows, gates)``."""
    data = synthetic_dataset(
        "IND", setting["cardinality"], setting["dimensionality"], seed=setting["seed"]
    )
    engine = ServeEngine(data)
    try:
        share_started = time.perf_counter()
        descriptor = engine.shared_descriptor()
        pack_seconds = time.perf_counter() - share_started
        values = engine.store.matrix.copy()

        attach_seconds, rebuild_seconds = measure_setups(
            descriptor, values, setting["rounds"]
        )
        mismatches = compare_answers(engine, descriptor, values)
    finally:
        engine.close()

    speedup = rebuild_seconds / attach_seconds if attach_seconds > 0 else float("inf")
    rows = [
        {
            "path": "rebuild",
            "cardinality": setting["cardinality"],
            "rounds": setting["rounds"],
            "setup_seconds": round(rebuild_seconds, 5),
            "speedup": 1.0,
        },
        {
            "path": "attach",
            "cardinality": setting["cardinality"],
            "rounds": setting["rounds"],
            "setup_seconds": round(attach_seconds, 5),
            "speedup": round(speedup, 2),
        },
    ]
    gates = {
        "answer_mismatches": mismatches,
        "all_answers_identical": mismatches == 0,
        "owner_pack_seconds": round(pack_seconds, 5),
        "required_speedup": required_speedup,
        "speedup": round(speedup, 2),
    }
    gates["passed"] = gates["all_answers_identical"] and speedup >= required_speedup
    return rows, gates


def test_serve_gate():
    """Pytest entry point: smoke-sized run asserting the smoke gate."""
    rows, gates = run_benchmark(SETTINGS["smoke"])
    print_rows("Serving tier — per-spawn rebuild vs shared-memory attach", rows)
    assert gates["all_answers_identical"], gates
    assert gates["passed"], gates


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="path of the BENCH JSON artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--required-speedup",
        type=float,
        default=REQUIRED_SPEEDUP,
        help="fail when attach setup is not this much faster than rebuild",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "default"
    obs.REGISTRY.reset()
    with obs.activated():
        rows, gates = run_benchmark(SETTINGS[mode], required_speedup=args.required_speedup)
    print_rows("Serving tier — per-spawn rebuild vs shared-memory attach", rows)
    write_bench_json(args.output, "serve_cold_start", rows, gates=gates, meta={"mode": mode})
    print(f"\nwrote {args.output}")
    print(f"wrote {emit_metrics_artifact(args.output, 'serve_cold_start', mode)}")
    if not gates["passed"]:
        print(f"FAIL: serve smoke gate not met: {gates}", file=sys.stderr)
        return 1
    print(
        f"attach setup {gates['speedup']}x faster than ship-and-rebuild "
        f"(required: {gates['required_speedup']}x), "
        f"{gates['answer_mismatches']} answer mismatches"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
