"""Figure 11: effect of k on IND — RSA/JAA versus the SK/ON baselines.

The paper's headline comparison: the proposed algorithms outperform the
baselines by one to two orders of magnitude, and the gap grows with k.
"""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_fig11


def test_fig11_rsa_jaa_vs_baselines(benchmark, bench_scale):
    rows = benchmark.pedantic(experiment_fig11, args=(bench_scale,), iterations=1, rounds=1)
    print_rows("Figure 11 — response time vs k (IND): RSA/JAA vs SK/ON", rows)
    for row in rows:
        # Shape check: our algorithms beat both baselines for every k.
        assert row["RSA"] < row["SK1"]
        assert row["RSA"] < row["ON1"]
        assert row["JAA"] < row["SK2"]
        assert row["JAA"] < row["ON2"]
