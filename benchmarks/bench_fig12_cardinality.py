"""Figure 12: effect of dataset cardinality and data distribution.

Reports RSA response time and UTK1 output size, and JAA response time and the
number of distinct top-k sets, for COR / IND / ANTI as n grows.
"""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_fig12


def test_fig12_cardinality_and_distribution(benchmark, bench_scale):
    rows = benchmark.pedantic(experiment_fig12, args=(bench_scale,), iterations=1, rounds=1)
    print_rows("Figure 12 — effect of n and data distribution", rows)

    by_distribution = {}
    for row in rows:
        by_distribution.setdefault(row["distribution"], []).append(row)
    # Shape of the paper's result: anticorrelated data produces more possible
    # top-k sets and more work than correlated data.  Aggregate over every
    # tested cardinality — per-point comparisons are too noisy at the small
    # quick-scale query counts.
    totals = {name: {"sets": sum(r["utk2_sets"] for r in entries),
                     "time": sum(r["jaa_seconds"] for r in entries)}
              for name, entries in by_distribution.items()}
    assert totals["COR"]["sets"] <= totals["ANTI"]["sets"]
    assert totals["COR"]["time"] <= totals["ANTI"]["time"]
