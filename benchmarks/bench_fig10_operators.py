"""Figure 10: UTK versus traditional operators (NBA workload).

(a) number of records reported by the k-skyband, the k onion layers and UTK1
    as k varies;
(b) the k a plain top-k query needs (and the records it outputs) to cover the
    UTK1 result.
"""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_fig10


def test_fig10_operator_comparison(benchmark, bench_scale):
    rows = benchmark.pedantic(experiment_fig10, args=(bench_scale,), iterations=1, rounds=1)
    print_rows("Figure 10 — UTK vs k-skyband / onion / enlarged top-k (NBA)", rows)
    for row in rows:
        # Shape of the paper's result: UTK is the smallest set, the k-skyband
        # the largest, and covering UTK1 with a plain top-k needs k' >= k.
        assert row["utk"] <= row["onion"] <= row["k_skyband"]
        assert row["required_k_for_topk"] >= row["k"]
