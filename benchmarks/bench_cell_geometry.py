"""Cell-geometry micro-benchmarks: incremental vertex clips vs the LP path.

Two measurements:

1. **Cell chains** — build a restriction chain of growing constraint count
   (the path a cell walks down the arrangement tree) and run the hot
   geometric primitives (``classify`` probes, ``interior_point``,
   drill-style ``linear_range``) at each depth, once on the cached-vertex
   path and once with the cache disabled (the LP path re-enumerates
   ``C(m, d)`` constraint subsets per question).  The per-depth speedup is
   the figure the arrangement machinery feels as cells accumulate
   half-spaces.
2. **End-to-end** — RSA + JAA refinement on a refinement-heavy workload with
   the vertex cache on and off, asserting *identical* UTK1/UTK2 answers.

The run doubles as a CI gate: it fails (exit code 1) when the vertex path is
below ``3x`` aggregated over the chain depths >= 8 (total LP time over total
vertex time — single depths are reported per row but jitter too much at
tens-of-milliseconds scale to gate individually), when the end-to-end
answers differ, when the end-to-end speedup misses 3x, or when the
vertex-path run needed any scipy ``linprog`` fallback.  Results go to ``BENCH_cell_geometry.json``
via :func:`repro.bench.reporting.write_bench_json`.

Usage::

    python benchmarks/bench_cell_geometry.py [--smoke] [--output BENCH_cell_geometry.json]
"""

import argparse
import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np
from conftest import best_time, emit_metrics_artifact, print_rows

from repro import obs
from repro.bench.reporting import write_bench_json
from repro.bench.workloads import query_workload, random_region
from repro.core.cell import Cell, vertex_cache_disabled
from repro.core.halfspace import HalfSpace
from repro.core.jaa import JAA
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband
from repro.datasets.synthetic import synthetic_dataset

#: Required speedup of the vertex path over the LP path at chain depths >= 8
#: (the PR's acceptance bar), and of the end-to-end refinement.
REQUIRED_CHAIN_SPEEDUP = 3.0
REQUIRED_END_TO_END_SPEEDUP = 3.0

#: Chain depths >= this are gated (shallow cells are cheap either way).
GATED_DEPTH = 8

#: Workload sizes.  The end-to-end case uses a refinement-heavy setting
#: (sigma/k above the defaults): at the default sigma=0.01 the r-skyband
#: barely exceeds k and the refinement — the part this PR accelerates — is a
#: no-op, so there is nothing to measure.
SETTINGS = {
    "default": {
        "repeats": 3,
        "chain_dim": 4,
        "chain_depths": [2, 4, 6, 8, 10, 12],
        "chain_probes": 12,
        "e2e_n": 4000,
        "e2e_d": 4,
        "e2e_k": 10,
        "e2e_sigma": 0.05,
        "e2e_queries": 3,
        "seed": 11,
    },
    "smoke": {
        "repeats": 3,
        "chain_dim": 4,
        "chain_depths": [4, 8, 10, 12],
        "chain_probes": 16,
        "e2e_n": 2000,
        "e2e_d": 4,
        "e2e_k": 10,
        "e2e_sigma": 0.05,
        "e2e_queries": 1,
        "seed": 11,
    },
}


def chain_halfspaces(region, depth, probes, rng):
    """A splitting chain plus probe half-spaces, all crossing their cell.

    The returned plan is replayed identically on both paths: ``(chain,
    probe-sets)`` where ``chain[i]`` splits the depth-``i`` cell and
    ``probe_sets[i]`` are classification probes for the depth-``i + 1`` cell.
    """
    cell = Cell(region)
    chain = []
    probe_sets = []
    dim = region.dimension
    for _ in range(depth):
        normal = rng.normal(size=dim)
        low, high = cell.linear_range(normal)
        offset = rng.uniform(low + 0.35 * (high - low), high - 0.35 * (high - low))
        halfspace = HalfSpace(normal=normal, offset=float(offset))
        cell = cell.restricted(halfspace, True)
        chain.append(halfspace)
        cell_probes = []
        for _ in range(probes):
            probe_normal = rng.normal(size=dim)
            p_low, p_high = cell.linear_range(probe_normal)
            span = p_high - p_low
            cell_probes.append(HalfSpace(
                normal=probe_normal,
                offset=float(rng.uniform(p_low - 0.2 * span, p_high + 0.2 * span)),
            ))
        probe_sets.append(cell_probes)
    return chain, probe_sets


def run_chain(region, chain, probe_sets, record):
    """Replay the chain and run every primitive; returns the classify tally.

    Fresh cells per call, so each path pays its own geometry: clips on the
    vertex path, Chebyshev/enumeration LPs on the LP path.  Only the
    (discrete) classification outcomes feed the agreement check — interior
    points and drill vectors legitimately differ between the paths (vertex
    centroid vs Chebyshev centre, tie-broken argmax vertices) and are run
    for timing alone.
    """
    from repro.core.drill import drill_vector

    cell = Cell(region)
    tally = []
    for halfspace, cell_probes in zip(chain, probe_sets):
        cell = cell.restricted(halfspace, True)
        tally.extend(cell.classify(probe) for probe in cell_probes)
        cell.interior_point  # noqa: B018 - timed for its geometry work
        drill_vector(cell, record)
    return tally


def chain_rows(setting, rng):
    """Per-depth timing of the chain replay on both paths."""
    dim = setting["chain_dim"]
    region = random_region(dim, 0.08, rng)
    record = rng.random(dim)
    rows = []
    for depth in setting["chain_depths"]:
        chain, probe_sets = chain_halfspaces(region, depth, setting["chain_probes"], rng)
        vertex_seconds, vertex_tally = best_time(
            lambda: run_chain(region, chain, probe_sets, record), setting["repeats"]
        )
        with vertex_cache_disabled():
            lp_seconds, lp_tally = best_time(
                lambda: run_chain(region, chain, probe_sets, record), setting["repeats"]
            )
        rows.append({
            "case": "cell_chain",
            "depth": depth,
            "constraints": 2 * (dim - 1) + depth,
            "lp_seconds": round(lp_seconds, 5),
            "vertex_seconds": round(vertex_seconds, 5),
            "speedup": round(lp_seconds / vertex_seconds, 2),
            "identical": vertex_tally == lp_tally,
        })
    return rows


def utk2_agree(first, second):
    """Pointwise partitioning agreement, not just equal set inventories.

    Each partition's interior point must be assigned the *same* top-k set by
    the other partitioning — catching any bug that keeps the inventory of
    distinct top-k sets intact while assigning them to the wrong cells.
    """
    if first.distinct_top_k_sets != second.distinct_top_k_sets:
        return False
    for own, other in ((first, second), (second, first)):
        for partition in own.partitions:
            point = partition.interior_point
            if point is None or other.top_k_at(point) != partition.top_k:
                return False
    return True


def end_to_end_rows(setting, rng):
    """RSA + JAA refinement with the cache on/off; answers must be identical."""
    data = synthetic_dataset("IND", setting["e2e_n"], setting["e2e_d"], seed=setting["seed"])
    specs = query_workload(setting["e2e_d"], setting["e2e_k"], setting["e2e_sigma"],
                           setting["e2e_queries"], seed=setting["seed"])
    skybands = [compute_r_skyband(data.values, spec.region, spec.k) for spec in specs]

    def refine():
        results = []
        for spec, skyband in zip(specs, skybands):
            results.append(RSA(data.values, spec.region, spec.k, skyband=skyband).run())
            results.append(JAA(data.values, spec.region, spec.k, skyband=skyband).run())
        return results

    vertex_seconds, vertex_results = best_time(refine, setting["repeats"])
    with vertex_cache_disabled():
        lp_seconds, lp_results = best_time(refine, setting["repeats"])
    identical = all(
        (first.indices == second.indices) if hasattr(first, "indices")
        else utk2_agree(first, second)
        for first, second in zip(vertex_results, lp_results)
    )
    fallbacks = sum(result.stats["fallback_calls"] for result in vertex_results)
    lp_calls = sum(result.stats["lp_calls"] for result in vertex_results)
    enumerations = sum(result.stats["enumeration_calls"] for result in vertex_results)
    return [{
        "case": "rsa_jaa_end_to_end",
        "depth": None,
        "constraints": None,
        "lp_seconds": round(lp_seconds, 5),
        "vertex_seconds": round(vertex_seconds, 5),
        "speedup": round(lp_seconds / vertex_seconds, 2),
        "identical": identical,
    }], fallbacks, lp_calls, enumerations


def run_benchmark(setting):
    """Run every case; returns ``(rows, gates)``."""
    rng = np.random.default_rng(setting["seed"])
    rows = chain_rows(setting, rng)
    e2e, fallbacks, lp_calls, enumerations = end_to_end_rows(setting, rng)
    rows.extend(e2e)

    gated_chain = [row for row in rows
                   if row["case"] == "cell_chain" and row["depth"] >= GATED_DEPTH]
    e2e_row = rows[-1]
    gated_speedup = (sum(row["lp_seconds"] for row in gated_chain)
                     / sum(row["vertex_seconds"] for row in gated_chain))
    gates = {
        "all_outputs_identical": all(row["identical"] for row in rows),
        "chain_required_speedup": REQUIRED_CHAIN_SPEEDUP,
        "chain_gated_depth": GATED_DEPTH,
        "chain_gated_speedup": round(gated_speedup, 2),
        "end_to_end_required_speedup": REQUIRED_END_TO_END_SPEEDUP,
        "end_to_end_speedup": e2e_row["speedup"],
        "vertex_path_fallback_calls": fallbacks,
        "vertex_path_lp_calls": lp_calls,
        "vertex_path_enumeration_calls": enumerations,
        "zero_scipy_fallbacks": fallbacks == 0,
    }
    gates["passed"] = (
        gates["all_outputs_identical"]
        and gates["chain_gated_speedup"] >= REQUIRED_CHAIN_SPEEDUP
        and gates["end_to_end_speedup"] >= REQUIRED_END_TO_END_SPEEDUP
        and gates["zero_scipy_fallbacks"]
    )
    return rows, gates


def test_cell_geometry_perf_gate():
    """Pytest entry point: smoke-sized run asserting the perf gate."""
    rows, gates = run_benchmark(SETTINGS["smoke"])
    print_rows("Cell geometry — LP path vs incremental vertex clips", rows)
    assert gates["all_outputs_identical"]
    assert gates["passed"], gates


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument(
        "--output",
        default="BENCH_cell_geometry.json",
        help="path of the BENCH JSON artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--required-speedup",
        type=float,
        default=REQUIRED_CHAIN_SPEEDUP,
        help="fail when the vertex path falls below this factor at gated depths",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "default"
    obs.REGISTRY.reset()
    with obs.activated():
        rows, gates = run_benchmark(SETTINGS[mode])
    gates["chain_required_speedup"] = args.required_speedup
    gates["passed"] = (
        gates["all_outputs_identical"]
        and gates["chain_gated_speedup"] >= args.required_speedup
        and gates["end_to_end_speedup"] >= REQUIRED_END_TO_END_SPEEDUP
        and gates["zero_scipy_fallbacks"]
    )
    print_rows("Cell geometry — LP path vs incremental vertex clips", rows)
    write_bench_json(args.output, "cell_geometry", rows, gates=gates, meta={"mode": mode})
    print(f"\nwrote {args.output}")
    print(f"wrote {emit_metrics_artifact(args.output, 'cell_geometry', mode)}")
    if not gates["passed"]:
        print(f"FAIL: cell-geometry perf gate not met: {gates}", file=sys.stderr)
        return 1
    print(
        f"chain speedup {gates['chain_gated_speedup']}x at depth >= {GATED_DEPTH} "
        f"(required: {args.required_speedup}x), end-to-end "
        f"{gates['end_to_end_speedup']}x (required: {REQUIRED_END_TO_END_SPEEDUP}x), "
        f"scipy fallbacks: {gates['vertex_path_fallback_calls']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
