"""Shared configuration for the benchmark suite.

Every benchmark module reproduces one table or figure of the paper's
evaluation (Section 7).  The ``BENCH_SCALE`` dictionary keeps the runs small
enough for a quick pass (`pytest benchmarks/ --benchmark-only`); raise the
values (or set the environment variable ``REPRO_BENCH_SCALE=full``) for a
longer, closer-to-the-paper run.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# Allow running the benchmarks without installing the package.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest  # noqa: E402

#: Quick scale: a couple of seconds to a couple of minutes per benchmark case.
QUICK_SCALE = {
    "cardinality": 1_500,
    "cardinalities": [500, 1_000, 2_000],
    "baseline_cardinality": 250,
    "dimensionality": 4,
    "dimensionalities": [2, 3, 4],
    "k": 4,
    "k_values": [1, 2, 5],
    "baseline_k_values": [1, 2],
    "sigma": 0.05,
    "sigma_values": [0.01, 0.05, 0.10],
    # Real-data substitutes include 6-D and 8-D datasets; keep their quick
    # workload small (the preference domain is 5- and 7-dimensional there).
    "real_cardinality": 600,
    "real_k_values": [1, 2, 3],
    "real_sigma": 0.005,
    "real_sigma_values": [0.002, 0.005, 0.01],
    "queries": 1,
    "seed": 7,
}

#: Larger scale, closer to the paper's grid (hours in pure Python).
FULL_SCALE = {
    "cardinality": 50_000,
    "cardinalities": [10_000, 20_000, 40_000, 80_000, 160_000],
    "baseline_cardinality": 2_000,
    "dimensionality": 4,
    "dimensionalities": [2, 3, 4, 5, 6, 7],
    "k": 10,
    "k_values": [1, 5, 10, 20, 50],
    "baseline_k_values": [1, 5, 10],
    "sigma": 0.01,
    "sigma_values": [0.001, 0.005, 0.01, 0.05, 0.10],
    "real_cardinality": 20_000,
    "real_k_values": [1, 5, 10, 20],
    "real_sigma": 0.01,
    "real_sigma_values": [0.001, 0.005, 0.01, 0.05],
    "queries": 5,
    "seed": 7,
}


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """The active benchmark scale (quick by default)."""
    if os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "full":
        return dict(FULL_SCALE)
    return dict(QUICK_SCALE)


# Re-exported so every benchmark keeps its `from conftest import print_rows`
# (the sys.path bootstrap each benchmark performs makes this module — and
# through it the src tree — importable from any working directory).
from repro.bench.reporting import print_rows  # noqa: E402,F401

import time  # noqa: E402


def best_time(function, repeats):
    """Best-of-``repeats`` wall time and the (last) return value.

    Shared by the gated micro-benchmarks so their timing discipline cannot
    silently diverge.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def emit_metrics_artifact(bench_output, benchmark: str, mode: str) -> str:
    """Write the ``METRICS_*.jsonl`` sibling of a ``BENCH_*.json`` artifact.

    The path is derived from the BENCH artifact: ``BENCH_x.json`` →
    ``METRICS_x.jsonl`` in the same directory.  Snapshot content is whatever
    the observability registry accumulated during the run (callers enable the
    registry around their measured section via ``repro.obs``).
    """
    from repro.bench.reporting import write_bench_metrics

    bench_path = Path(bench_output)
    name = bench_path.name
    if name.startswith("BENCH_"):
        name = name[len("BENCH_"):]
    metrics_path = bench_path.with_name("METRICS_" + Path(name).stem + ".jsonl")
    return write_bench_metrics(metrics_path, benchmark, meta={"mode": mode})
