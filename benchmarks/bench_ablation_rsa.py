"""Ablation: RSA design choices (drill, Lemma-1 pruning, candidate ordering).

The paper motivates the drill optimization (Section 4.3), the Lemma-1 based
confirmation (Section 4.2) and the descending-count candidate order.  This
benchmark quantifies each choice's contribution on an IND workload; every
configuration must return the identical UTK1 answer.
"""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_ablation_rsa


def test_rsa_ablation(benchmark, bench_scale):
    rows = benchmark.pedantic(experiment_ablation_rsa, args=(bench_scale,), iterations=1, rounds=1)
    print_rows("Ablation — RSA design choices", rows)
    sizes = {row["utk1_records"] for row in rows}
    assert len(sizes) == 1, "every configuration must report the same answer"
