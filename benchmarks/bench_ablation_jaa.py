"""Ablation: JAA with and without Lemma-1 pruning.

Lemma 1 is what lets JAA confirm the rank of an anchor in a partition without
inserting every competitor's half-space; disabling it forces deeper recursion.
Both configurations must produce the same set of distinct top-k sets.
"""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_ablation_jaa


def test_jaa_ablation(benchmark, bench_scale):
    rows = benchmark.pedantic(experiment_ablation_jaa, args=(bench_scale,), iterations=1, rounds=1)
    print_rows("Ablation — JAA Lemma-1 pruning", rows)
    assert {row["configuration"] for row in rows} == {"full", "no_lemma1"}
    sizes = {row["utk2_sets"] for row in rows}
    assert len(sizes) == 1, "both configurations must report the same partitioning"
