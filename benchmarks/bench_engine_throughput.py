"""Engine serving throughput: warm-cache engine vs the cold per-query path.

A serving-style stream (hot anchor regions, exact repeats, contained
drill-down sub-regions, Zipfian k — see
:func:`repro.bench.workloads.engine_query_stream`) is answered twice on the
same dataset:

* **cold** — every query goes through the one-shot API
  (:func:`repro.core.api.utk1` / ``utk2``), re-transforming the data and
  recomputing filtering + refinement each time;
* **warm** — a persistent :class:`~repro.engine.engine.UTKEngine` is primed
  with the stream's anchor queries (the bind/warm-up cost is reported
  separately, as in any steady-state serving measurement) and then serves the
  whole stream: repeats hit the result cache, drill-downs clip cached
  partitionings, and the rest reuses cached r-skybands.

The run fails (exit code 1) when the warm speedup drops below the required
factor (5x by default), which is what the CI smoke step checks.

Usage::

    python benchmarks/bench_engine_throughput.py [--smoke] [--workers N]
"""

import argparse
import sys
import time
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import emit_metrics_artifact, print_rows

from repro import obs
from repro.bench.reporting import write_bench_json
from repro.bench.workloads import engine_query_stream
from repro.core.api import make_engine, utk1, utk2, utk_query
from repro.datasets.synthetic import synthetic_dataset
from repro.engine.batch import BatchQuery, summarize_batch
from repro.engine.cache import region_signature

#: Default and smoke-sized workload settings.
SETTINGS = {
    "default": {"cardinality": 1_500, "dimensionality": 3, "queries": 48,
                "parents": 3, "sigma": 0.06, "seed": 11},
    "smoke": {"cardinality": 800, "dimensionality": 3, "queries": 36,
              "parents": 2, "sigma": 0.05, "seed": 11},
}

#: Required warm/cold throughput ratio (the PR's acceptance bar).
REQUIRED_SPEEDUP = 5.0


def build_stream(setting: dict) -> list[BatchQuery]:
    """The benchmark stream, with a deterministic problem version per query.

    Anchor (parent) queries ask for both problem versions — they are the hot
    dashboards the drill-down traffic narrows.  Every other query's version
    is derived from its region fingerprint and ``k`` so that exact repeats in
    the stream repeat the *same* question.
    """
    specs = engine_query_stream(setting["dimensionality"], setting["queries"],
                                k_choices=(1, 2, 3),
                                sigma=setting["sigma"],
                                parents=setting["parents"],
                                # The acceptance metric is repeat + contained-
                                # region throughput, so the stream is entirely
                                # repeats and drill-downs of the hot anchors.
                                repeat_prob=0.5,
                                subregion_prob=0.5,
                                drill_k_prob=0.75,
                                seed=setting["seed"])
    queries = []
    for position, spec in enumerate(specs):
        if position < setting["parents"]:
            version = "both"
        else:
            fingerprint = int(region_signature(spec.region)[:8], 16) + spec.k
            version = "utk2" if fingerprint % 3 == 0 else "utk1"
        queries.append(BatchQuery(region=spec.region, k=spec.k, version=version))
    return queries


def run_cold(data, stream: list[BatchQuery]) -> float:
    """Answer every query through the one-shot API; returns elapsed seconds."""
    started = time.perf_counter()
    for query in stream:
        if query.version == "both":
            utk_query(data, query.region, query.k)
        elif query.version == "utk2":
            utk2(data, query.region, query.k)
        else:
            utk1(data, query.region, query.k)
    return time.perf_counter() - started


def run_warm(data, stream: list[BatchQuery], parents: int, workers: int) -> tuple[
    float, float, dict
]:
    """Bind an engine, prime it with the anchors, then serve the full stream.

    Returns ``(prime_seconds, serve_seconds, summary)``; only the serve phase
    counts toward warm throughput, mirroring a steady-state serving
    measurement where start-up warm-up is amortized away.
    """
    engine = make_engine(data)
    started = time.perf_counter()
    engine.run_batch(stream[:parents], workers=workers)
    prime_seconds = time.perf_counter() - started
    started = time.perf_counter()
    items = engine.run_batch(stream, workers=workers)
    serve_seconds = time.perf_counter() - started
    summary = summarize_batch(items)
    summary["cache"] = engine.statistics()
    return prime_seconds, serve_seconds, summary


def run_benchmark(setting: dict, workers: int) -> list[dict]:
    data = synthetic_dataset(
        "IND", setting["cardinality"], setting["dimensionality"], seed=setting["seed"]
    )
    stream = build_stream(setting)
    cold_seconds = run_cold(data, stream)
    prime_seconds, warm_seconds, summary = run_warm(data, stream, setting["parents"], workers)
    count = len(stream)
    return [{
        "queries": count,
        "workers": workers,
        "cold_seconds": round(cold_seconds, 3),
        "prime_seconds": round(prime_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "cold_qps": round(count / cold_seconds, 2),
        "warm_qps": round(count / warm_seconds, 2),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "sources": "; ".join(f"{name}={value}"
                             for name, value in summary["sources"].items()),
    }]


def test_engine_throughput(bench_scale):
    """Pytest entry point: smoke-sized run, asserting the 5x speedup bar."""
    rows = run_benchmark(SETTINGS["smoke"], workers=1)
    print_rows("Engine serving — warm cache vs cold per-query path", rows)
    assert rows[0]["speedup"] >= REQUIRED_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument(
        "--workers", type=int, default=1, help="engine thread-pool size (default 1)"
    )
    parser.add_argument(
        "--required-speedup",
        type=float,
        default=REQUIRED_SPEEDUP,
        help="fail when warm/cold falls below this factor",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the rows as a BENCH JSON artifact",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "default"
    setting = SETTINGS[mode]
    obs.REGISTRY.reset()
    with obs.activated():
        rows = run_benchmark(setting, args.workers)
    print_rows("Engine serving — warm cache vs cold per-query path", rows)
    speedup = rows[0]["speedup"]
    if args.output:
        gates = {
            "required_speedup": args.required_speedup,
            "speedup": speedup,
            "passed": speedup >= args.required_speedup,
        }
        write_bench_json(
            args.output, "engine_throughput", rows, gates=gates, meta={"mode": mode, **setting}
        )
        print(f"wrote {args.output}")
        print(f"wrote {emit_metrics_artifact(args.output, 'engine_throughput', mode)}")
    if speedup < args.required_speedup:
        print(f"FAIL: warm-cache speedup {speedup}x is below the required "
              f"{args.required_speedup}x", file=sys.stderr)
        return 1
    print(f"warm-cache speedup {speedup}x (required: {args.required_speedup}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
