"""Dynamic-data maintenance: DynamicUTKEngine vs rebuild-from-scratch.

Serves the same low-churn interleaved insert/delete/query stream twice:

* **rebuild** — the status quo for a static engine: every update discards
  the engine (R-tree bulk load, caches cold) and queries pay the full
  filtering + refinement cost again;
* **dynamic** — one :class:`~repro.dynamic.engine.DynamicUTKEngine` absorbs
  the updates, repairing its R-tree and cached r-skybands incrementally and
  evicting only the results an update actually invalidated.

Every query answer (UTK1 record set, UTK2 distinct top-k sets, both mapped
into the stable id space) is compared between the two paths; any mismatch is
a stale-cache answer and fails the gate.  Results are written to
``BENCH_dynamic.json`` via :func:`repro.bench.reporting.write_bench_json`.

The run doubles as the CI dynamic smoke gate: it fails (exit code 1) when
any answer differs, or when the dynamic path's speedup over the rebuild
path falls below the required factor (default 5x).

Usage::

    python benchmarks/bench_dynamic.py [--smoke]
        [--output BENCH_dynamic.json] [--required-speedup 5.0]
"""

import argparse
import sys
import time
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import emit_metrics_artifact, print_rows

import numpy as np

from repro import obs
from repro.bench.reporting import write_bench_json
from repro.core.region import hyperrectangle
from repro.datasets.synthetic import synthetic_dataset, update_stream
from repro.dynamic import DynamicUTKEngine, serve_events
from repro.engine import UTKEngine

#: Required dynamic-vs-rebuild speedup (the PR's acceptance bar).
REQUIRED_SPEEDUP = 5.0

#: Workload sizes.  Low churn (~15% updates), hot-region queries: the
#: serving pattern where cache warmth matters and every update used to cost
#: a full rebuild.
SETTINGS = {
    "default": {
        "cardinality": 4000,
        "dimensionality": 3,
        "events": 100,
        "insert_prob": 0.06,
        "delete_prob": 0.06,
        "k_choices": (3,),
        "sigma": 0.08,
        "hot_regions": 3,
        "seed": 11,
    },
    "smoke": {
        "cardinality": 2500,
        "dimensionality": 3,
        "events": 80,
        "insert_prob": 0.07,
        "delete_prob": 0.07,
        "k_choices": (3,),
        "sigma": 0.08,
        "hot_regions": 3,
        "seed": 11,
    },
}


def build_stream(setting):
    """The event stream plus interned regions for the rebuild path."""
    data = synthetic_dataset(
        "IND", setting["cardinality"], setting["dimensionality"], seed=setting["seed"]
    )
    events = update_stream(
        data,
        setting["events"],
        insert_prob=setting["insert_prob"],
        delete_prob=setting["delete_prob"],
        k_choices=setting["k_choices"],
        sigma=setting["sigma"],
        hot_regions=setting["hot_regions"],
        hot_prob=1.0,
        seed=setting["seed"],
    )
    regions = {}
    memo = {}
    for position, event in enumerate(events):
        if event["op"] != "query":
            continue
        key = (tuple(event["lower"]), tuple(event["upper"]))
        if key not in memo:
            memo[key] = hyperrectangle(event["lower"], event["upper"])
        regions[position] = memo[key]
    return data, events, regions


def query_fingerprint(version, utk1_records, utk2_top_k_sets):
    """Comparable answer summary in the stable id space."""
    parts = []
    if version in ("utk2", "both"):
        parts.append(tuple(sorted(tuple(s) for s in utk2_top_k_sets)))
    if version in ("utk1", "both"):
        parts.append(tuple(sorted(utk1_records)))
    return tuple(parts)


def run_rebuild(data, events, regions):
    """Serve the stream rebuilding a static engine after every update."""
    ids = list(range(data.size))
    rows = {i: data.values[i] for i in ids}
    next_id = len(ids)
    engine = None
    rebuilds = 0
    answers = []
    started = time.perf_counter()
    for position, event in enumerate(events):
        if event["op"] == "insert":
            rows[next_id] = np.asarray(event["values"], dtype=float)
            ids.append(next_id)
            next_id += 1
            engine = None
        elif event["op"] == "delete":
            ids.remove(event["id"])
            rows.pop(event["id"])
            engine = None
        else:
            if engine is None:
                engine = UTKEngine(np.vstack([rows[i] for i in ids]))
                rebuilds += 1
            version = event["version"]
            utk1_records = []
            utk2_sets = []
            if version in ("utk2", "both"):
                result = engine.utk2(regions[position], event["k"])
                utk2_sets = [
                    sorted(ids[p] for p in s) for s in result.distinct_top_k_sets
                ]
            if version in ("utk1", "both"):
                result = engine.utk1(regions[position], event["k"])
                utk1_records = [ids[p] for p in result.indices]
            answers.append(query_fingerprint(version, utk1_records, utk2_sets))
    return time.perf_counter() - started, answers, rebuilds


def run_dynamic(data, events):
    """Serve the stream through one DynamicUTKEngine.

    Engine construction is inside the timer: the rebuild path pays for its
    first (equivalent) engine build inside its own timed loop, so excluding
    this one would bias the speedup gate.
    """
    started = time.perf_counter()
    engine = DynamicUTKEngine(data)
    reports = serve_events(engine, events)
    seconds = time.perf_counter() - started
    answers = []
    for report in reports:
        if report["op"] != "query":
            continue
        utk1_records = report.get("utk1", {}).get("records", [])
        utk2_sets = report.get("utk2", {}).get("distinct_top_k_sets", [])
        answers.append(query_fingerprint(report["version"], utk1_records, utk2_sets))
    return seconds, answers, engine


def run_benchmark(setting, required_speedup=REQUIRED_SPEEDUP):
    """Measure both paths; returns ``(rows, gates)``."""
    data, events, regions = build_stream(setting)
    updates = sum(1 for event in events if event["op"] != "query")
    queries = len(events) - updates

    rebuild_seconds, rebuild_answers, rebuilds = run_rebuild(data, events, regions)
    dynamic_seconds, dynamic_answers, engine = run_dynamic(data, events)
    stale = sum(1 for a, b in zip(dynamic_answers, rebuild_answers) if a != b)
    maintenance = engine.statistics()["dynamic"]

    speedup = rebuild_seconds / dynamic_seconds if dynamic_seconds > 0 else float("inf")
    rows = [
        {
            "path": "rebuild",
            "events": len(events),
            "updates": updates,
            "queries": queries,
            "rebuilds": rebuilds,
            "seconds": round(rebuild_seconds, 4),
            "speedup": 1.0,
        },
        {
            "path": "dynamic",
            "events": len(events),
            "updates": updates,
            "queries": queries,
            "rebuilds": 0,
            "seconds": round(dynamic_seconds, 4),
            "speedup": round(speedup, 2),
        },
    ]
    gates = {
        "stale_answers": stale,
        "all_answers_identical": stale == 0,
        "required_speedup": required_speedup,
        "speedup": round(speedup, 2),
        "entries_repaired": maintenance["entries_repaired"],
        "entries_noop": maintenance["entries_noop"],
        "entries_evicted": maintenance["entries_evicted"],
        "results_retained": maintenance["results_retained"],
    }
    gates["passed"] = gates["all_answers_identical"] and speedup >= required_speedup
    return rows, gates


def test_dynamic_gate():
    """Pytest entry point: smoke-sized run asserting the smoke gate."""
    rows, gates = run_benchmark(SETTINGS["smoke"])
    print_rows("Dynamic maintenance — rebuild-per-update vs DynamicUTKEngine", rows)
    assert gates["all_answers_identical"], gates
    assert gates["passed"], gates


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument(
        "--output",
        default="BENCH_dynamic.json",
        help="path of the BENCH JSON artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--required-speedup",
        type=float,
        default=REQUIRED_SPEEDUP,
        help="fail when the dynamic path's speedup falls below this factor",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "default"
    obs.REGISTRY.reset()
    with obs.activated():
        rows, gates = run_benchmark(SETTINGS[mode], required_speedup=args.required_speedup)
    print_rows("Dynamic maintenance — rebuild-per-update vs DynamicUTKEngine", rows)
    write_bench_json(args.output, "dynamic_maintenance", rows, gates=gates, meta={"mode": mode})
    print(f"\nwrote {args.output}")
    print(f"wrote {emit_metrics_artifact(args.output, 'dynamic_maintenance', mode)}")
    if not gates["passed"]:
        print(f"FAIL: dynamic smoke gate not met: {gates}", file=sys.stderr)
        return 1
    print(
        f"dynamic speedup {gates['speedup']}x over rebuild-per-update "
        f"(required: {gates['required_speedup']}x), {gates['stale_answers']} stale answers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
