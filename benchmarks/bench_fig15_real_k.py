"""Figure 15: JAA on the real-data substitutes as k varies (HOTEL/HOUSE/NBA)."""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_fig15


def test_fig15_real_datasets_vs_k(benchmark, bench_scale):
    rows = benchmark.pedantic(experiment_fig15, args=(bench_scale,), iterations=1, rounds=1)
    print_rows("Figure 15 — JAA vs k on HOTEL/HOUSE/NBA substitutes", rows)
    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for entries in by_dataset.values():
        entries.sort(key=lambda r: r["k"])
        # Shape: larger k never shrinks the number of top-k sets.
        assert entries[0]["utk2_sets"] <= entries[-1]["utk2_sets"]
