"""Figure 13: effect of data dimensionality on response time and memory (IND)."""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_fig13


def test_fig13_dimensionality(benchmark, bench_scale):
    rows = benchmark.pedantic(experiment_fig13, args=(bench_scale,), iterations=1, rounds=1)
    print_rows("Figure 13 — effect of dimensionality d (IND)", rows)
    # Shape: the problem gets harder with d (compare the 2-D and the largest-d
    # settings; middle points may fluctuate at small scale).
    assert rows[-1]["rsa_seconds"] >= rows[0]["rsa_seconds"]
    assert all(row["rsa_peak_mb"] > 0 for row in rows)
