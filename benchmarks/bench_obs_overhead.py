"""Observability overhead gate: dormant instrumentation must stay free.

The whole query/update pipeline is instrumented with spans and registry
metrics (:mod:`repro.obs`), gated by one module-level flag.  This benchmark
verifies the zero-overhead-when-off contract: with observability *disabled*,
every instrumented call site reduces to a single flag check, so the total
dormant cost of a run is (number of instrumentation calls) x (per-call no-op
cost).  The gate bounds that product at <= 3% of the run's wall time.

Methodology — direct A/B timing of enabled-vs-disabled is too noisy at smoke
scale (the instrumentation costs far less than the run-to-run jitter of the
LP/geometry work it wraps), so the gate is computed from three stable
measurements instead:

1. ``disabled_seconds`` — wall time of a representative query workload with
   observability off (the shipping configuration);
2. ``span_count`` / ``metric_count`` — how many instrumentation calls that
   same workload performs, counted from one *enabled* run's span tree and
   registry snapshot;
3. ``noop_span_ns`` / ``noop_inc_ns`` — the per-call cost of a disabled
   ``span()`` and a disabled ``Counter.inc()``, micro-benchmarked over many
   iterations.

``overhead_fraction = (span_count * noop_span + metric_count * noop_inc)
/ disabled_seconds`` then over-counts the true dormant cost (the workload
timed in step 1 already *includes* the no-op checks) and must still stay
under :data:`REQUIRED_MAX_OVERHEAD`.  Results are written to
``BENCH_obs_overhead.json`` via :func:`repro.bench.reporting.write_bench_json`.

Usage::

    python benchmarks/bench_obs_overhead.py [--smoke] [--output BENCH_obs_overhead.json]
"""

import argparse
import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import best_time, print_rows

from repro import obs
from repro.bench.reporting import write_bench_json
from repro.bench.workloads import query_workload
from repro.core.api import utk_query
from repro.datasets.synthetic import synthetic_dataset
from repro.obs.metrics import MetricsRegistry

#: Maximum tolerated dormant-instrumentation overhead (fraction of run time).
REQUIRED_MAX_OVERHEAD = 0.03

#: Workload sizes: a handful of one-shot UTK queries covering the api ->
#: RSA/JAA phase -> cell/LP instrumentation levels.  Smoke trims everything.
SETTINGS = {
    "default": {
        "cardinality": 1_200,
        "dimensionality": 3,
        "k": 3,
        "sigma": 0.06,
        "queries": 4,
        "repeats": 3,
        "noop_calls": 200_000,
        "seed": 13,
    },
    "smoke": {
        "cardinality": 600,
        "dimensionality": 3,
        "k": 3,
        "sigma": 0.06,
        "queries": 2,
        "repeats": 2,
        "noop_calls": 100_000,
        "seed": 13,
    },
}


def _noop_span_cost(calls: int, repeats: int) -> float:
    """Best-of per-call seconds of a disabled ``span()`` enter/exit."""
    assert not obs.enabled()
    span = obs.span

    def loop():
        for _ in range(calls):
            with span("noop"):
                pass

    seconds, _ = best_time(loop, repeats)
    return seconds / calls


def _noop_inc_cost(calls: int, repeats: int) -> float:
    """Best-of per-call seconds of a disabled ``Counter.inc()``."""
    assert not obs.enabled()
    # A private registry keeps the micro-bench instrument out of the global
    # schema; the flag check being measured is identical either way.
    counter = MetricsRegistry().counter(
        "bench_noop_total", "overhead micro-bench counter", ("kind",)
    )

    def loop():
        for _ in range(calls):
            counter.inc(kind="noop")

    seconds, _ = best_time(loop, repeats)
    return seconds / calls


def _count_metric_calls(registry_snapshot: list[dict]) -> int:
    """Total recorded events across the registry (counter sums + histogram counts)."""
    total = 0
    for record in registry_snapshot:
        for sample in record["samples"]:
            if record["kind"] == "histogram":
                total += int(sample["count"])
            else:
                total += int(sample["value"])
    return total


def run_benchmark(setting):
    """Run the gate measurements; returns ``(rows, gates)``."""
    data = synthetic_dataset(
        "IND", setting["cardinality"], setting["dimensionality"], setting["seed"]
    )
    specs = query_workload(
        setting["dimensionality"], setting["k"], setting["sigma"],
        setting["queries"], seed=setting["seed"],
    )

    def serve():
        return [utk_query(data, spec.region, spec.k) for spec in specs]

    obs.disable()
    disabled_seconds, _ = best_time(serve, setting["repeats"])

    obs.REGISTRY.reset()
    with obs.activated():
        with obs.capture() as spans:
            serve()
        snapshot = obs.REGISTRY.snapshot()
    span_count = sum(root.span_count() for root in spans)
    metric_count = _count_metric_calls(snapshot)

    noop_span = _noop_span_cost(setting["noop_calls"], setting["repeats"])
    noop_inc = _noop_inc_cost(setting["noop_calls"], setting["repeats"])

    dormant_seconds = span_count * noop_span + metric_count * noop_inc
    overhead = dormant_seconds / disabled_seconds if disabled_seconds > 0 else 0.0

    rows = [
        {
            "case": "dormant_overhead",
            "queries": setting["queries"],
            "n": setting["cardinality"],
            "disabled_seconds": round(disabled_seconds, 5),
            "span_count": span_count,
            "metric_count": metric_count,
            "noop_span_ns": round(noop_span * 1e9, 1),
            "noop_inc_ns": round(noop_inc * 1e9, 1),
            "dormant_seconds": round(dormant_seconds, 7),
            "overhead_fraction": round(overhead, 5),
        },
    ]
    gates = {
        "required_max_overhead": REQUIRED_MAX_OVERHEAD,
        "overhead_fraction": round(overhead, 5),
        "span_count": span_count,
        "metric_count": metric_count,
        "instrumentation_reached": span_count > 0 and metric_count > 0,
        "passed": overhead <= REQUIRED_MAX_OVERHEAD and span_count > 0 and metric_count > 0,
    }
    return rows, gates


def test_obs_overhead_gate():
    """Pytest entry point: smoke-sized run asserting the dormant-cost gate."""
    rows, gates = run_benchmark(SETTINGS["smoke"])
    print_rows("Observability overhead — dormant instrumentation cost", rows)
    assert gates["instrumentation_reached"], gates
    assert gates["passed"], gates


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument(
        "--output",
        default="BENCH_obs_overhead.json",
        help="path of the BENCH JSON artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--required-max-overhead",
        type=float,
        default=REQUIRED_MAX_OVERHEAD,
        help="fail when the estimated dormant overhead exceeds this fraction",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "default"
    rows, gates = run_benchmark(SETTINGS[mode])
    gates["required_max_overhead"] = args.required_max_overhead
    gates["passed"] = (
        gates["instrumentation_reached"]
        and gates["overhead_fraction"] <= args.required_max_overhead
    )
    print_rows("Observability overhead — dormant instrumentation cost", rows)
    write_bench_json(args.output, "obs_overhead", rows, gates=gates, meta={"mode": mode})
    print(f"\nwrote {args.output}")
    if not gates["passed"]:
        print(f"FAIL: observability overhead gate not met: {gates}", file=sys.stderr)
        return 1
    print(
        f"dormant instrumentation overhead {gates['overhead_fraction'] * 100:.2f}% "
        f"(limit: {args.required_max_overhead * 100:.0f}%) over "
        f"{gates['span_count']} spans and {gates['metric_count']} metric events"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
