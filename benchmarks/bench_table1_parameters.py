"""Table 1: experiment parameters (paper grid versus harness grid).

This benchmark also measures the cost of generating one full query workload,
which is the fixed overhead shared by every other experiment.
"""

import sys
from pathlib import Path

# Make the shared benchmark helpers importable no matter where the
# benchmark is launched from (pytest, CI smoke step, or repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import print_rows

from repro.bench.experiments import experiment_table1
from repro.bench.workloads import query_workload


def test_table1_parameters(benchmark, bench_scale):
    rows = benchmark(experiment_table1, bench_scale)
    print_rows("Table 1 — experiment parameters", rows)
    assert len(rows) == 5


def test_workload_generation(benchmark, bench_scale):
    workload = benchmark(
        query_workload,
        bench_scale["dimensionality"],
        bench_scale["k"],
        bench_scale["sigma"],
        50,
        bench_scale["seed"],
    )
    assert len(workload) == 50
