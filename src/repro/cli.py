"""Command-line interface.

``python -m repro`` (or the installed ``repro`` script) exposes the two UTK
query versions, batch serving, and the benchmark experiments without writing
any code:

* ``query`` — run UTK1/UTK2 on a synthetic or simulated-real dataset for a
  hyper-rectangular preference region;
* ``batch`` — serve a JSON-lines file of queries through a persistent
  :class:`~repro.engine.engine.UTKEngine` and report results plus cache
  statistics;
* ``stream`` — serve a JSON-lines stream of interleaved
  ``insert``/``delete``/``query`` events through a
  :class:`~repro.dynamic.engine.DynamicUTKEngine`, whose caches are repaired
  per update instead of cleared;
* ``experiment`` — run one of the per-figure experiment generators and print
  the rows the paper's figure plots;
* ``metrics`` — print the observability metric schema, or summarize a
  metrics JSONL snapshot written by ``--metrics``;
* ``matrix`` — run the scenario × backend matrix (the CI/nightly entry
  point): every cell oracle-checked against the SQL pushdown, artifacts
  schema-versioned, ``--gates`` additionally runs the benchmark smoke gates;
* ``serve`` — run the serving tier: a shared-memory-backed
  :class:`~repro.serve.engine.ServeEngine` behind an asyncio JSONL socket
  protocol, draining gracefully on ``SIGTERM``;
* ``soak`` — fire concurrent query and update clients at a running
  ``serve`` instance and verify every answer against a serial replay
  (zero stale answers allowed);
* ``trend`` — compare a ``BENCH_matrix.json`` against a baseline snapshot
  and fail on >20% gated-cell regressions.

Observability flags: ``query --trace out.json`` records a span tree of the
whole run and writes it as Chrome ``trace_event`` JSON (load it in
``chrome://tracing`` or https://ui.perfetto.dev); ``--metrics out.prom`` (or
``out.jsonl``) on ``query``/``batch``/``stream`` enables the metrics registry
for the run and writes a snapshot in Prometheus text or JSONL form.  Both
exports carry a provenance header (tool version + git describe).
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import time

import numpy as np

from repro.bench import experiments as _experiments
from repro.bench.reporting import format_table
from repro.core.api import make_engine, utk1, utk2, utk_query
from repro.core.region import hyperrectangle
from repro.datasets.real import real_dataset
from repro.datasets.synthetic import DISTRIBUTIONS, synthetic_dataset
from repro.engine.batch import BatchQuery, summarize_batch
from repro.exceptions import InvalidQueryError
import repro.obs.provenance as _provenance
from repro.obs import runtime as _obs_runtime
from repro.obs import trace as _obs_trace
from repro.obs.metrics import REGISTRY
from repro.obs.names import schema as _metrics_schema

#: Experiment names accepted by ``python -m repro experiment``.
EXPERIMENTS = {
    "table1": _experiments.experiment_table1,
    "fig10": _experiments.experiment_fig10,
    "fig11": _experiments.experiment_fig11,
    "fig12": _experiments.experiment_fig12,
    "fig13": _experiments.experiment_fig13,
    "fig14": _experiments.experiment_fig14,
    "fig15": _experiments.experiment_fig15,
    "fig16": _experiments.experiment_fig16,
    "ablation-rsa": _experiments.experiment_ablation_rsa,
    "ablation-jaa": _experiments.experiment_ablation_jaa,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Uncertain top-k (UTK) queries — reproduction of Mouratidis & Tang, PVLDB 2018",
    )
    parser.add_argument(
        "--version", action="version", version=_provenance.version_string(),
        help="print the tool version (with git describe when available) and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run a UTK query on a generated dataset")
    query.add_argument(
        "--dataset", default="IND", help="IND, COR, ANTI, HOTEL, HOUSE or NBA (default IND)"
    )
    query.add_argument(
        "--cardinality", type=int, default=2000, help="number of records to generate (default 2000)"
    )
    query.add_argument(
        "--dimensionality",
        type=int,
        default=3,
        help="attributes for synthetic datasets (default 3)",
    )
    query.add_argument("--k", type=int, default=3, help="top-k parameter (default 3)")
    query.add_argument(
        "--lower",
        type=float,
        nargs="+",
        required=True,
        help="lower corner of the preference region (d-1 values)",
    )
    query.add_argument(
        "--upper",
        type=float,
        nargs="+",
        required=True,
        help="upper corner of the preference region (d-1 values)",
    )
    query.add_argument(
        "--version",
        choices=["utk1", "utk2", "both"],
        default="both",
        help="which UTK problem version to answer",
    )
    query.add_argument("--seed", type=int, default=0, help="dataset seed")
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the region-partitioned parallel executor "
             "(default 1 = serial; the answer is identical either way)",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="include per-run algorithm statistics (arrangement counters plus "
             "the lp_calls/vertex_clip_calls/enumeration_calls/fallback_calls "
             "geometry telemetry)",
    )
    query.add_argument("--json", action="store_true", help="emit JSON instead of text")
    query.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the run and write it as Chrome "
             "trace_event JSON to PATH (open in chrome://tracing or Perfetto)",
    )
    query.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="enable the metrics registry for the run and write a snapshot "
             "to PATH (.prom = Prometheus text, anything else = JSONL)",
    )
    query.add_argument(
        "--store",
        choices=["memory", "colstore"],
        default="memory",
        help="storage backend: memory (default) or colstore (memory-mapped "
             "columnar files + paged R-tree; see `repro build`)",
    )
    query.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="colstore directory; attaches an existing store there (dataset "
             "flags are then ignored) or materializes the generated dataset "
             "first",
    )

    build = subparsers.add_parser(
        "build",
        help="materialize a dataset into a colstore directory (records + paged R-tree)",
    )
    build.add_argument("--dataset", default="IND",
                       help="IND, COR, ANTI, CLUS, HOTEL, HOUSE or NBA (default IND)")
    build.add_argument("--cardinality", type=int, default=100_000,
                       help="records to generate (default 100000)")
    build.add_argument("--dimensionality", type=int, default=3,
                       help="attributes for synthetic datasets (default 3)")
    build.add_argument("--seed", type=int, default=0, help="dataset seed")
    build.add_argument("--store-dir", metavar="DIR", required=True,
                       help="target colstore directory")
    build.add_argument("--chunk-rows", type=int, default=1 << 18,
                       help="rows generated and ingested per chunk (default 262144)")
    build.add_argument("--max-entries", type=int, default=None,
                       help="R-tree page fanout (default 64)")
    build.add_argument("--budget-rows", type=int, default=None,
                       help="rows the streaming STR sort may touch per pass "
                            "(default 1048576)")
    build.add_argument("--json", action="store_true", help="emit JSON instead of text")

    inspect = subparsers.add_parser(
        "inspect",
        help="print store/index layout statistics for a colstore directory",
    )
    inspect.add_argument("--store-dir", metavar="DIR", required=True,
                         help="colstore directory to inspect")
    inspect.add_argument("--json", action="store_true", help="emit JSON instead of text")

    batch = subparsers.add_parser(
        "batch", help="serve a JSON-lines query file through a persistent engine"
    )
    batch.add_argument("--input", required=True,
                       help="JSON-lines query file, or '-' for stdin; each line "
                            "is {\"lower\": [...], \"upper\": [...], \"k\": int, "
                            "\"version\": \"utk1\"|\"utk2\"|\"both\"}")
    batch.add_argument(
        "--dataset", default="IND", help="IND, COR, ANTI, HOTEL, HOUSE or NBA (default IND)"
    )
    batch.add_argument(
        "--cardinality", type=int, default=2000, help="number of records to generate (default 2000)"
    )
    batch.add_argument(
        "--dimensionality",
        type=int,
        default=3,
        help="attributes for synthetic datasets (default 3)",
    )
    batch.add_argument("--seed", type=int, default=0, help="dataset seed")
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="thread-pool size for independent queries (default 1)",
    )
    batch.add_argument(
        "--cache-size", type=int, default=128, help="capacity of each engine cache (default 128)"
    )
    batch.add_argument(
        "--parallel-workers",
        type=int,
        default=0,
        help="worker-process pool for heavy cache-miss queries "
             "(default 0; values below 2 keep every query serial)",
    )
    batch.add_argument(
        "--parallel-min-candidates",
        type=int,
        default=48,
        help="r-skyband size from which a query is routed to the parallel path (default 48)",
    )
    batch.add_argument(
        "--output", default="-", help="file to write the JSON report to (default stdout)"
    )
    batch.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="enable the metrics registry for the run and write a snapshot "
             "to PATH (.prom = Prometheus text, anything else = JSONL)",
    )

    stream = subparsers.add_parser(
        "stream", help="serve an interleaved insert/delete/query event stream"
    )
    stream.add_argument(
        "--input", required=True,
        help="JSON-lines event file, or '-' for stdin; each line is "
             "{\"op\": \"insert\", \"values\": [...]}, "
             "{\"op\": \"delete\", \"id\": int} or "
             "{\"op\": \"query\", \"lower\": [...], \"upper\": [...], "
             "\"k\": int, \"version\": \"utk1\"|\"utk2\"|\"both\"}"
    )
    stream.add_argument(
        "--dataset", default="IND", help="IND, COR, ANTI, HOTEL, HOUSE or NBA (default IND)"
    )
    stream.add_argument(
        "--cardinality", type=int, default=2000,
        help="initial number of records (default 2000; ids 0..n-1)",
    )
    stream.add_argument(
        "--dimensionality",
        type=int,
        default=3,
        help="attributes for synthetic datasets (default 3)",
    )
    stream.add_argument("--seed", type=int, default=0, help="dataset seed")
    stream.add_argument(
        "--cache-size", type=int, default=128, help="capacity of each engine cache (default 128)"
    )
    stream.add_argument(
        "--output", default="-", help="file to write the JSON report to (default stdout)"
    )
    stream.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="enable the metrics registry for the run and write a snapshot "
             "to PATH (.prom = Prometheus text, anything else = JSONL)",
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's experiments"
    )
    experiment.add_argument(
        "name", choices=sorted(EXPERIMENTS), help="experiment identifier (e.g. fig12)"
    )
    experiment.add_argument(
        "--scale",
        type=json.loads,
        default=None,
        help="JSON dict overriding the quick-scale parameters",
    )

    metrics = subparsers.add_parser(
        "metrics", help="print the metric schema or summarize a metrics snapshot"
    )
    metrics.add_argument(
        "--input", default=None,
        help="metrics JSONL snapshot (written by --metrics) to summarize; "
             "omitted: print the registry's metric schema",
    )

    matrix = subparsers.add_parser(
        "matrix", help="run the scenario x backend matrix (CI/nightly entry point)"
    )
    matrix.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario cell selection (repeatable; default: all registered)",
    )
    matrix.add_argument(
        "--backend", action="append", default=None, metavar="NAME",
        help="backend cell selection (repeatable; default: all registered)",
    )
    matrix.add_argument(
        "--smoke", action="store_true",
        help="use each scenario's reduced smoke sizing (the CI configuration)",
    )
    matrix.add_argument(
        "--no-oracle", action="store_true",
        help="skip the SQL pushdown cross-check of every cell",
    )
    matrix.add_argument(
        "--sql-backend", choices=["auto", "duckdb", "sqlite"], default="auto",
        help="embedded SQL engine for the oracle and the sql backend (default auto)",
    )
    matrix.add_argument(
        "--output-dir", default=".",
        help="directory for BENCH_matrix.json and per-cell METRICS_*.jsonl (default .)",
    )
    matrix.add_argument(
        "--report", choices=["text", "md", "json"], default="text",
        help="report format printed to stdout (default text)",
    )
    matrix.add_argument(
        "--gates", action="store_true",
        help="also run the consolidated benchmark smoke gates "
             "(the six bench_*.py gates CI used to list by hand)",
    )

    serve = subparsers.add_parser(
        "serve", help="serve UTK queries and updates over a JSONL socket protocol"
    )
    serve.add_argument(
        "--dataset", default="IND", help="IND, COR, ANTI, HOTEL, HOUSE or NBA (default IND)"
    )
    serve.add_argument(
        "--cardinality", type=int, default=2000,
        help="initial number of records (default 2000; ids 0..n-1)",
    )
    serve.add_argument(
        "--dimensionality", type=int, default=3,
        help="attributes for synthetic datasets (default 3)",
    )
    serve.add_argument("--seed", type=int, default=0, help="dataset seed")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = pick a free port; see --ready-file)",
    )
    serve.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write {\"host\", \"port\", \"pid\"} JSON to PATH once listening",
    )
    serve.add_argument(
        "--cache-size", type=int, default=128,
        help="capacity of each engine cache (default 128)",
    )
    serve.add_argument(
        "--stripes", type=int, default=8,
        help="lock stripes per engine cache (default 8)",
    )
    serve.add_argument(
        "--query-threads", type=int, default=4,
        help="concurrent query evaluations (default 4)",
    )
    serve.add_argument(
        "--shared-workers", type=int, default=0,
        help="query worker processes attaching the dataset via shared memory "
             "(default 0 = evaluate queries in-process)",
    )
    serve.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="write-ahead log directory: every update is appended (and fsynced) "
             "before it is acked, and an existing log is replayed at startup so "
             "a killed server restarts to its exact acked prefix",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="query admission bound; beyond it requests get a retriable "
             "\"overloaded\" error with a retry_after hint (default 64)",
    )
    serve.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="JSON fault plan (repro.resilience.faults) whose slow_update "
             "entries stall the update executor — chaos-lane use only",
    )
    serve.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="enable the metrics registry and write a snapshot to PATH on shutdown",
    )
    serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace and write Chrome trace_event JSON on shutdown",
    )

    soak = subparsers.add_parser(
        "soak", help="concurrent query+update load against a running serve instance, "
                     "every answer verified against a serial replay"
    )
    soak.add_argument("--host", default="127.0.0.1", help="server address (default 127.0.0.1)")
    soak.add_argument("--port", type=int, default=None, help="server port")
    soak.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="read host/port from a serve --ready-file instead of --port",
    )
    soak.add_argument(
        "--dataset", default="IND",
        help="initial dataset — must match the server's --dataset (default IND)",
    )
    soak.add_argument(
        "--cardinality", type=int, default=2000,
        help="must match the server's --cardinality (default 2000)",
    )
    soak.add_argument(
        "--dimensionality", type=int, default=3,
        help="must match the server's --dimensionality (default 3)",
    )
    soak.add_argument("--seed", type=int, default=0, help="must match the server's --seed")
    soak.add_argument(
        "--events", type=int, default=120,
        help="length of the generated zipf-churn event stream (default 120)",
    )
    soak.add_argument(
        "--stream-seed", type=int, default=1,
        help="seed of the generated event stream (default 1)",
    )
    soak.add_argument(
        "--clients", type=int, default=4,
        help="concurrent query connections (default 4; one extra applies updates)",
    )
    soak.add_argument(
        "--timeout", type=float, default=300.0,
        help="per-thread load timeout in seconds (default 300)",
    )
    soak.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the full soak report (stale details included) as JSON to PATH",
    )
    soak.add_argument(
        "--chaos", action="store_true",
        help="chaos mode: spawn the server as a subprocess and inject a "
             "deterministic seeded fault schedule (worker kills, server "
             "crash+restart, connection drops/delays, slow updates) while "
             "the serial-replay oracle still requires zero stale answers "
             "and zero lost acked updates; --host/--port are ignored",
    )
    soak.add_argument(
        "--schedule", default="mixed",
        help="chaos fault schedule: worker-kill, conn-drop, server-crash, "
             "slow-update or mixed (default mixed)",
    )
    soak.add_argument(
        "--chaos-seed", type=int, default=None,
        help="fault-plan seed (default: --seed); same schedule + seed + "
             "workload shape → identical fault plan",
    )
    soak.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="chaos artifact directory — WAL, fault plan, per-start server "
             "logs (default chaos-<schedule>-<seed>)",
    )
    soak.add_argument(
        "--shared-workers", type=int, default=None,
        help="shared query workers for the chaos server (default: 2 when "
             "the schedule kills workers, else 0)",
    )

    trend = subparsers.add_parser(
        "trend", help="compare a BENCH_matrix.json against a baseline snapshot"
    )
    trend.add_argument(
        "--current", default="BENCH_matrix.json",
        help="current BENCH_matrix.json (default ./BENCH_matrix.json)",
    )
    trend.add_argument(
        "--baseline", default="benchmarks/baselines/BENCH_matrix.json",
        help="baseline snapshot (default benchmarks/baselines/BENCH_matrix.json)",
    )
    trend.add_argument(
        "--threshold", type=float, default=None,
        help="relative throughput loss that fails a gated cell (default 0.2)",
    )
    trend.add_argument(
        "--report", choices=["text", "md"], default="text",
        help="report format printed to stdout (default text)",
    )
    trend.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the markdown report to PATH "
             "(e.g. $GITHUB_STEP_SUMMARY in CI)",
    )
    return parser


def _obs_start() -> None:
    """Enable observability for this process with clean trace/metric state."""
    REGISTRY.reset()
    _obs_trace.reset()
    _obs_runtime.enable()


def _write_metrics(path: str) -> None:
    """Export the registry snapshot: ``.prom`` → Prometheus text, else JSONL."""
    header = _provenance.provenance()
    if path.endswith(".prom"):
        REGISTRY.write_prometheus(path, header=header)
    else:
        REGISTRY.write_jsonl(path, header=header)
    print(f"metrics written to {path}", file=sys.stderr)


def _load_dataset(name: str, cardinality: int, dimensionality: int, seed: int):
    key = name.upper()
    if key in DISTRIBUTIONS:
        return synthetic_dataset(key, cardinality, dimensionality, seed)
    return real_dataset(key, cardinality, seed)


def _run_query(args: argparse.Namespace) -> int:
    engine = None
    if args.store == "colstore":
        if args.store_dir is None:
            print("error: --store colstore needs --store-dir", file=sys.stderr)
            return 2
        from pathlib import Path

        attached = (Path(args.store_dir) / "manifest.json").exists()
        data = None
        if not attached:
            data = _load_dataset(
                args.dataset, args.cardinality, args.dimensionality, args.seed
            ).values
        engine = make_engine(data, store="colstore", store_dir=args.store_dir)
        n, d = engine.values.shape
        payload: dict = {
            "dataset": "colstore" if attached else args.dataset.upper(),
            "n": int(n), "d": int(d), "k": args.k,
            "store": "colstore", "store_dir": args.store_dir,
        }
    else:
        data = _load_dataset(args.dataset, args.cardinality, args.dimensionality, args.seed)
        payload = {
            "dataset": args.dataset.upper(), "n": data.size, "d": data.dimensionality,
            "k": args.k,
        }
    region = hyperrectangle(args.lower, args.upper)
    if args.workers > 1:
        payload["workers"] = args.workers
    result = partitioning = None
    observing = args.trace is not None or args.metrics is not None
    if observing:
        _obs_start()
    try:
        with _obs_trace.capture() as captured:
            if engine is not None:
                # Colstore path: the engine traverses the paged R-tree over
                # the store's mmap views (workers stay serial here).
                if args.version in ("utk1", "both"):
                    result = engine.utk1(region, args.k)
                if args.version in ("utk2", "both"):
                    partitioning = engine.utk2(region, args.k)
            elif args.version == "both":
                # One utk_query call shares the r-skyband filtering (and, with
                # workers > 1, a single pool pass) across both problem versions.
                result, partitioning = utk_query(data, region, args.k, workers=args.workers)
            elif args.version == "utk1":
                result = utk1(data, region, args.k, workers=args.workers)
            else:
                partitioning = utk2(data, region, args.k, workers=args.workers)
    finally:
        if observing:
            _obs_runtime.disable()
    if args.trace is not None:
        _obs_trace.write_chrome_trace(args.trace, captured, metadata=_provenance.provenance())
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.metrics is not None:
        _write_metrics(args.metrics)
    if result is not None:
        payload["utk1"] = {
            "records": result.indices,
            "witnesses": {str(i): np.round(result.witness_of(i), 6).tolist()
                          for i in result.indices},
        }
        if args.stats:
            payload["utk1"]["stats"] = result.stats
    if partitioning is not None:
        payload["utk2"] = {
            "partitions": len(partitioning),
            "distinct_top_k_sets": [sorted(s) for s in partitioning.distinct_top_k_sets],
        }
        if args.stats:
            payload["utk2"]["stats"] = partitioning.stats
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{payload['dataset']}: n={payload['n']}, d={payload['d']}, k={payload['k']}")
    if "utk1" in payload:
        print(f"UTK1 ({len(payload['utk1']['records'])} records): " f"{payload['utk1']['records']}")
    if "utk2" in payload:
        print(f"UTK2: {payload['utk2']['partitions']} partitions, "
              f"{len(payload['utk2']['distinct_top_k_sets'])} distinct top-k sets")
        for top in payload["utk2"]["distinct_top_k_sets"]:
            print(f"  {top}")
    for version in ("utk1", "utk2"):
        stats = payload.get(version, {}).get("stats")
        if stats:
            print(f"{version.upper()} stats: "
                  + " ".join(f"{key}={value}" for key, value in stats.items()))
    return 0


def _run_build(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.colstore import INDEX_NAME, ColumnarRecordStore, build_paged_rtree
    from repro.datasets.synthetic import synthetic_chunks

    started = time.perf_counter()
    key = args.dataset.upper()
    if key in DISTRIBUTIONS:
        chunks = synthetic_chunks(
            key, args.cardinality, args.dimensionality, args.seed,
            chunk_rows=args.chunk_rows,
        )
        store = ColumnarRecordStore.from_chunks(chunks, args.store_dir)
    else:
        store = ColumnarRecordStore(
            real_dataset(key, args.cardinality, args.seed).values,
            directory=args.store_dir,
        )
    options: dict = {}
    if args.max_entries is not None:
        options["max_entries"] = args.max_entries
    if args.budget_rows is not None:
        options["budget_rows"] = args.budget_rows
    meta = build_paged_rtree(store, Path(args.store_dir) / INDEX_NAME, **options)
    store.close()
    payload = {
        "store_dir": args.store_dir,
        "dataset": key,
        "records": int(meta["size"]),
        "dimensionality": args.dimensionality,
        "index": meta,
        "seconds": round(time.perf_counter() - started, 3),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"built colstore at {args.store_dir}: {payload['records']} records "
          f"({key}), {meta['n_pages']} index pages (height {meta['height']}, "
          f"fanout {meta['fanout']}) in {payload['seconds']}s")
    return 0


def _run_inspect(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.colstore import INDEX_NAME, ColumnarRecordStore, PagedRTree
    from repro.exceptions import StorageError

    try:
        store = ColumnarRecordStore.open(args.store_dir, mode="r")
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = {
        "store_dir": args.store_dir,
        "records": int(store.high_water),
        "active": len(store),
        "tombstones": int(store.high_water) - len(store),
        "capacity": store.manifest()["capacity"],
        "generation": store.generation,
        "column_dtypes": store.column_dtypes(),
    }
    index_path = Path(args.store_dir) / INDEX_NAME
    if index_path.exists():
        tree = PagedRTree(index_path, store.matrix)
        _ = tree.root.is_leaf  # touch the root so the pool is warm
        payload["index"] = {
            "pages": int(tree.meta["n_pages"]),
            "leaves": int(tree.meta["n_leaves"]),
            "height": tree.height(),
            "fanout": tree.fanout,
            "fill_factor": round(tree.fill_factor(), 4),
            "page_size": int(tree.meta["page_size"]),
            "resident_pages": tree.pool.resident(),
            "pool_capacity": tree.pool.capacity,
        }
    else:
        payload["index"] = None
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"colstore {args.store_dir} (generation {payload['generation']})")
    print(f"  records: {payload['records']} ({payload['active']} active, "
          f"{payload['tombstones']} tombstones, capacity {payload['capacity']})")
    print(f"  columns: {len(payload['column_dtypes'])} × "
          f"{payload['column_dtypes'][0] if payload['column_dtypes'] else '-'}")
    index = payload["index"]
    if index is None:
        print("  index: none (run `repro build` or attach once to create it)")
    else:
        print(f"  index: {index['pages']} pages ({index['leaves']} leaves), "
              f"height {index['height']}, fanout {index['fanout']}, "
              f"fill {index['fill_factor']}, page size {index['page_size']}B")
        print(f"  buffer pool: {index['resident_pages']}/{index['pool_capacity']} "
              f"pages resident")
    return 0


def _parse_batch_line(payload: dict, number: int) -> BatchQuery:
    """One JSON-lines query: corners + k (+ optional problem version)."""
    missing = {"lower", "upper", "k"} - set(payload)
    if missing:
        raise InvalidQueryError(f"line {number}: missing field(s) {sorted(missing)}")
    region = hyperrectangle(payload["lower"], payload["upper"])
    return BatchQuery(region=region, k=int(payload["k"]), version=payload.get("version", "utk1"))


def _read_jsonl(source: str) -> list[tuple[int, dict]]:
    """Parse a JSON-lines file (or stdin for ``-``) into numbered objects."""
    if source == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(source, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    objects = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise InvalidQueryError(f"line {number}: invalid JSON ({exc})") from exc
        objects.append((number, payload))
    return objects


def _read_batch_queries(source: str) -> list[BatchQuery]:
    return [_parse_batch_line(payload, number) for number, payload in _read_jsonl(source)]


def _write_report(report: dict, output: str) -> None:
    """Serialize a JSON report to stdout (``-``) or a file."""
    text = json.dumps(report, indent=2)
    if output == "-":
        print(text)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _batch_item_payload(item) -> dict:
    payload: dict = {
        "k": item.query.k,
        "version": item.query.version,
        "sources": item.sources,
        "seconds": round(item.seconds, 6),
    }
    if item.utk1 is not None:
        payload["utk1"] = {"records": item.utk1.indices}
    if item.utk2 is not None:
        payload["utk2"] = {
            "partitions": len(item.utk2),
            "distinct_top_k_sets": sorted(sorted(s) for s in
                                          item.utk2.distinct_top_k_sets),
        }
    return payload


def _run_batch(args: argparse.Namespace) -> int:
    queries = _read_batch_queries(args.input)
    if not queries:
        print("no queries supplied", file=sys.stderr)
        return 1
    data = _load_dataset(args.dataset, args.cardinality, args.dimensionality, args.seed)
    engine = make_engine(
        data,
        cache_size=args.cache_size,
        parallel_workers=args.parallel_workers,
        parallel_min_candidates=args.parallel_min_candidates,
    )
    if args.metrics is not None:
        _obs_start()
    started = time.perf_counter()
    try:
        items = engine.run_batch(queries, workers=args.workers)
    finally:
        engine.close()
        if args.metrics is not None:
            _obs_runtime.disable()
    elapsed = time.perf_counter() - started
    if args.metrics is not None:
        _write_metrics(args.metrics)
    summary = summarize_batch(items)
    report = {
        "dataset": args.dataset.upper(),
        "n": data.size,
        "d": data.dimensionality,
        "workers": args.workers,
        "parallel_workers": args.parallel_workers,
        "queries": summary["queries"],
        "wall_seconds": round(elapsed, 6),
        "queries_per_second": round(summary["queries"] / elapsed, 3)
                              if elapsed > 0 else float("inf"),
        "sources": summary["sources"],
        "geometry": summary["geometry"],
        "cache": engine.statistics(),
        "results": [_batch_item_payload(item) for item in items],
    }
    _write_report(report, args.output)
    return 0


def _read_stream_events(source: str) -> list[dict]:
    """Parse a JSON-lines event file into the ``serve_events`` shape."""
    events = []
    for number, event in _read_jsonl(source):
        if not isinstance(event, dict) or "op" not in event:
            raise InvalidQueryError(f"line {number}: events must be objects with an \"op\" field")
        events.append(event)
    return events


def _run_stream(args: argparse.Namespace) -> int:
    from repro.dynamic import DynamicUTKEngine, serve_events

    events = _read_stream_events(args.input)
    if not events:
        print("no events supplied", file=sys.stderr)
        return 1
    data = _load_dataset(args.dataset, args.cardinality, args.dimensionality, args.seed)
    engine = DynamicUTKEngine(data, cache_size=args.cache_size)
    if args.metrics is not None:
        _obs_start()
    started = time.perf_counter()
    try:
        results = serve_events(engine, events)
    finally:
        engine.close()
        if args.metrics is not None:
            _obs_runtime.disable()
    elapsed = time.perf_counter() - started
    if args.metrics is not None:
        _write_metrics(args.metrics)
    statistics = engine.statistics()
    # The maintenance counters get their own top-level key; keep the cache
    # block free of a second copy.
    dynamic = statistics.pop("dynamic")
    queries = sum(1 for event in events if event.get("op") == "query")
    sources: dict[str, int] = {}
    for record in results:
        for source in record.get("sources", {}).values():
            sources[source] = sources.get(source, 0) + 1
    report = {
        "dataset": args.dataset.upper(),
        "n_initial": data.size,
        "n_final": len(engine.store),
        "events": len(events),
        "queries": queries,
        "updates": len(events) - queries,
        "wall_seconds": round(elapsed, 6),
        "events_per_second": round(len(events) / elapsed, 3) if elapsed > 0 else float("inf"),
        "sources": dict(sorted(sources.items())),
        "dynamic": dynamic,
        "cache": statistics,
        "results": results,
    }
    _write_report(report, args.output)
    return 0


def _summarize_metric_record(record: dict) -> list[list]:
    """Table rows (labels / value) for one JSONL metric record."""
    rows = []
    for sample in record.get("samples", []):
        labels = ",".join(f"{key}={value}" for key, value in sorted(sample["labels"].items()))
        if record.get("kind") == "histogram":
            count = sample.get("count", 0)
            total = sample.get("sum", 0.0)
            mean = (total / count) if count else 0.0
            value = f"count={count} sum={round(total, 6)} mean={round(mean, 6)}"
        else:
            value = sample.get("value", 0)
        rows.append([record["name"], record.get("kind", "?"), labels or "-", value])
    return rows


def _run_metrics(args: argparse.Namespace) -> int:
    if args.input is None:
        rows = [[entry["name"], entry["kind"], entry["labels"], entry["help"]]
                for entry in _metrics_schema()]
        print(format_table(["name", "kind", "labels", "help"], rows,
                           title="observability metric schema"))
        return 0
    header: dict = {}
    rows = []
    for number, record in _read_jsonl(args.input):
        if not isinstance(record, dict) or "record" not in record:
            raise InvalidQueryError(
                f"line {number}: not a metrics snapshot record (missing \"record\")"
            )
        if record["record"] == "header":
            header = {key: value for key, value in record.items() if key != "record"}
        elif record["record"] == "metric":
            rows.extend(_summarize_metric_record(record))
    for key, value in header.items():
        print(f"# {key}: {value}")
    if rows:
        print(format_table(["name", "kind", "labels", "value"], rows,
                           title=f"metrics snapshot {args.input}"))
    else:
        print("no metric records in snapshot")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    rows = EXPERIMENTS[args.name](args.scale)
    if not rows:
        print("no rows produced")
        return 1
    headers = list(rows[0].keys())
    print(format_table(headers, [[row[h] for h in headers] for row in rows],
                       title=f"experiment {args.name}"))
    return 0


def _run_matrix(args: argparse.Namespace) -> int:
    from repro.scenarios import markdown_report, run_gates, run_matrix, text_report

    result = run_matrix(
        args.scenario,
        args.backend,
        smoke=args.smoke,
        oracle=not args.no_oracle,
        sql_backend=args.sql_backend,
        output_dir=args.output_dir,
        progress=lambda line: print(line, file=sys.stderr),
    )
    gate_results: dict = {}
    if args.gates:
        gate_results = run_gates(smoke=args.smoke,
                                 progress=lambda line: print(line, file=sys.stderr))
    if args.report == "json":
        print(json.dumps(result.payload, indent=2))
    elif args.report == "md":
        print(markdown_report(result.payload))
    else:
        print(text_report(result.payload))
    failed_gates = sorted(name for name, outcome in gate_results.items()
                          if not outcome["passed"])
    if failed_gates:
        print(f"benchmark gate(s) failed: {', '.join(failed_gates)}", file=sys.stderr)
    if not result.ok:
        failed_cells = sorted(name for name, passed in result.gates.items()
                              if name.startswith("oracle:") and not passed)
        print(f"oracle mismatch in: {', '.join(failed_cells)}", file=sys.stderr)
    return 0 if result.ok and not failed_gates else 1


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve import ServeEngine
    from repro.serve.server import UTKServer

    data = _load_dataset(args.dataset, args.cardinality, args.dimensionality, args.seed)
    observing = args.metrics is not None or args.trace is not None
    if observing:
        _obs_start()
    engine_kwargs = {"cache_size": args.cache_size, "stripes": args.stripes}
    wal = None
    recovered = 0
    recovered_txids: dict = {}
    if args.wal_dir is not None:
        from repro.resilience.recovery import recover

        recovery = recover(data, args.wal_dir, engine_kwargs=engine_kwargs)
        engine = recovery.engine
        wal = recovery.wal
        recovered = recovery.replayed
        recovered_txids = recovery.txids
        if recovered or recovery.orphans_removed or recovery.truncated_reason:
            print(
                f"recovered {recovered} update(s) from {args.wal_dir}"
                + (f", removed {len(recovery.orphans_removed)} orphan shm segment(s)"
                   if recovery.orphans_removed else "")
                + (f", WAL tail truncated: {recovery.truncated_reason}"
                   if recovery.truncated_reason else ""),
                file=sys.stderr,
            )
    else:
        engine = ServeEngine(data, **engine_kwargs)
    fault_plan = None
    if args.fault_plan is not None:
        from repro.resilience.faults import FaultPlan

        fault_plan = FaultPlan.from_file(args.fault_plan)
    server = UTKServer(
        engine,
        host=args.host,
        port=args.port,
        query_threads=args.query_threads,
        shared_workers=args.shared_workers,
        wal=wal,
        recovered=recovered,
        recovered_txids=recovered_txids,
        max_inflight=args.max_inflight,
        fault_plan=fault_plan,
    )

    async def run() -> None:
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.request_stop)
        print(f"serving {args.dataset.upper()} n={data.size} on {host}:{port}",
              file=sys.stderr)
        if args.ready_file is not None:
            import os

            with open(args.ready_file, "w", encoding="utf-8") as handle:
                json.dump({"host": host, "port": port, "pid": os.getpid(),
                           "recovered": recovered}, handle)
        await server.serve_until_stopped()

    try:
        with _obs_trace.capture() as captured:
            asyncio.run(run())
    finally:
        engine.close()
        if wal is not None:
            wal.close()
        if observing:
            _obs_runtime.disable()
    if args.trace is not None:
        _obs_trace.write_chrome_trace(args.trace, captured,
                                      metadata=_provenance.provenance())
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.metrics is not None:
        _write_metrics(args.metrics)
    print(
        f"drained: {server.requests_served} requests, "
        f"{server.updates_finished} updates, "
        f"{server.update_failures} update failures",
        file=sys.stderr,
    )
    return 0


def _run_soak(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeError, ServeTimeout
    from repro.serve.soak import run_soak

    from repro.datasets.synthetic import update_stream

    data = _load_dataset(args.dataset, args.cardinality, args.dimensionality, args.seed)
    events = update_stream(
        data, args.events,
        insert_prob=0.18, delete_prob=0.12, k_choices=(2, 3),
        sigma=0.08, hot_regions=3, hot_prob=0.7, seed=args.stream_seed,
    )

    if args.chaos:
        from repro.resilience.chaos import run_chaos
        from repro.resilience.faults import SCHEDULES

        if args.schedule not in SCHEDULES:
            print(f"unknown --schedule {args.schedule!r}; "
                  f"choose one of {', '.join(SCHEDULES)}", file=sys.stderr)
            return 2
        chaos_seed = args.seed if args.chaos_seed is None else args.chaos_seed
        workdir = args.workdir or f"chaos-{args.schedule}-{chaos_seed}"
        runner = functools.partial(
            run_chaos, data, events,
            schedule=args.schedule, seed=chaos_seed, workdir=workdir,
            server_args={
                "dataset": args.dataset,
                "cardinality": args.cardinality,
                "dimensionality": args.dimensionality,
                "seed": args.seed,
            },
            clients=args.clients, timeout=args.timeout,
            shared_workers=args.shared_workers,
        )
    else:
        host, port = args.host, args.port
        if args.ready_file is not None:
            with open(args.ready_file, encoding="utf-8") as handle:
                ready = json.load(handle)
            host, port = ready["host"], int(ready["port"])
        if port is None:
            print("either --port or --ready-file is required", file=sys.stderr)
            return 2
        runner = functools.partial(run_soak, host, port, data, events,
                                   clients=args.clients, timeout=args.timeout)

    try:
        report = runner()
    except (ServeTimeout, ServeError, ConnectionError, OSError, TimeoutError) as error:
        # The server died (or never answered) in a way the load threads
        # could not absorb: emit what we know and fail loudly instead of
        # tracebacking — the partial report is still useful for triage.
        report = {
            "ok": False,
            "aborted": f"{type(error).__name__}: {error}",
            "events": len(events),
            "errors": [f"soak aborted: {type(error).__name__}: {error}"],
            "stale": None,
            "stale_details": [],
        }
        if args.report is not None:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
        print(json.dumps({k: v for k, v in report.items()
                          if k != "stale_details"}, indent=2))
        print(
            f"soak aborted: lost the server ({type(error).__name__}: {error}); "
            "check that `repro serve` is still running and reachable",
            file=sys.stderr,
        )
        return 1
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    summary = {key: value for key, value in report.items() if key != "stale_details"}
    print(json.dumps(summary, indent=2))
    if not report["ok"]:
        for detail in report["stale_details"]:
            print(f"stale: {json.dumps(detail)}", file=sys.stderr)
        for error in report["errors"]:
            print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _run_trend(args: argparse.Namespace) -> int:
    from repro.bench.trend import DEFAULT_THRESHOLD, compare_files

    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    report = compare_files(args.current, args.baseline, threshold=threshold)
    print(report.markdown() if args.report == "md" else report.text())
    if args.output:
        with open(args.output, "a", encoding="utf-8") as handle:
            handle.write(report.markdown())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro`` (returns a process exit code)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "query":
        return _run_query(args)
    if args.command == "build":
        return _run_build(args)
    if args.command == "inspect":
        return _run_inspect(args)
    if args.command == "batch":
        return _run_batch(args)
    if args.command == "stream":
        return _run_stream(args)
    if args.command == "metrics":
        return _run_metrics(args)
    if args.command == "matrix":
        return _run_matrix(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "soak":
        return _run_soak(args)
    if args.command == "trend":
        return _run_trend(args)
    return _run_experiment(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
