"""Segmented reductions over stacked cell-vertex arrays.

The arrangement classifies every leaf against each inserted half-space.  With
V-represented cells that is a min/max of ``normal @ vertex`` per leaf —
instead of looping, the arrangement concatenates all leaf vertex arrays and
asks this kernel for every leaf's bounds in one stacked matmul plus two
``reduceat`` passes.  The results match classifying each leaf on its own up
to the last floating-point ulp (BLAS may block/FMA the stacked product
differently than a per-cell one), far inside every classification tolerance.

Like the rest of :mod:`repro.kernels`, this is a leaf layer (NumPy only) and
the ``*_loop`` reference serves as the property-test oracle and the
benchmark baseline.
"""

from __future__ import annotations

import numpy as np


def halfspace_side_bounds(vertices, starts, normal) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment minima and maxima of ``vertices @ normal``.

    Parameters
    ----------
    vertices:
        ``(V, dim)`` row-wise concatenation of per-cell vertex arrays.
    starts:
        First row of each segment: ``starts[0] == 0``, strictly increasing,
        every segment non-empty.
    normal:
        The half-space normal (``dim`` coefficients).

    Returns
    -------
    ``(mins, maxs)`` arrays with one entry per segment.
    """
    vertices = np.asarray(vertices, dtype=float)
    starts = np.asarray(starts, dtype=np.intp)
    if vertices.shape[0] == 0 or starts.shape[0] == 0:
        return np.empty(0, dtype=float), np.empty(0, dtype=float)
    values = vertices @ np.asarray(normal, dtype=float).reshape(-1)
    return np.minimum.reduceat(values, starts), np.maximum.reduceat(values, starts)


def halfspace_side_bounds_loop(vertices, starts, normal) -> tuple[np.ndarray, np.ndarray]:
    """Reference implementation: one pass per segment (property-test oracle)."""
    vertices = np.asarray(vertices, dtype=float)
    normal = np.asarray(normal, dtype=float).reshape(-1)
    edges = list(np.asarray(starts, dtype=int)) + [vertices.shape[0]]
    mins: list[float] = []
    maxs: list[float] = []
    for low, high in zip(edges[:-1], edges[1:]):
        values = vertices[low:high] @ normal
        mins.append(values.min())
        maxs.append(values.max())
    return np.asarray(mins, dtype=float), np.asarray(maxs, dtype=float)
