"""Vectorized compute kernels — the batch hot-path layer of the library.

The RSA and JAA algorithms spend nearly all their time in three families of
primitives: traditional dominance tests, half-space (score-difference)
evaluations, and r-dominance tests against a preference region.  This package
provides those primitives as batch kernels over contiguous NumPy arrays:

* :mod:`repro.kernels.dominance` — pairwise dominance matrices, dominance
  counts, and the incremental "who dominates this new point" mask used by the
  BBS traversal, computed with per-dimension accumulation over ``(n, n)``
  boolean slabs (faster and far leaner than an ``(n, n, d)`` broadcast).
* :mod:`repro.kernels.halfspace` — the affine score decomposition, batched
  half-space coefficient construction, one-matmul evaluation of ``m``
  half-spaces at ``v`` points, and r-dominance matrices/masks derived from
  region-vertex scores.
* :mod:`repro.kernels.vertexops` — segmented min/max reductions over stacked
  cell-vertex arrays, the one-matmul batch classification of every
  arrangement leaf against an inserted half-space.

Every kernel ships with a ``*_loop`` reference implementation — the
per-record code path the kernel replaced.  The references serve as
correctness oracles for the property tests (``tests/test_kernels.py``) and as
the baseline the CI perf gate measures against
(``benchmarks/bench_kernels.py``).  Kernels and references are bit-identical:
they perform the same elementwise float operations in the same order, so
outputs match exactly, including ties at exactly ``±tol``.

The package is a leaf layer: it imports nothing but NumPy, so every other
module (core, skyline, index, engine, bench) can build on it freely.
"""

from repro.kernels.dominance import (
    DOMINANCE_TOL,
    dominance_counts,
    dominance_counts_loop,
    dominance_matrix,
    dominance_matrix_loop,
    dominators_mask,
    dominators_mask_loop,
)
from repro.kernels.halfspace import (
    evaluate_halfspaces,
    evaluate_halfspaces_loop,
    halfspace_coefficients,
    halfspace_coefficients_loop,
    r_dominance_matrix,
    r_dominance_matrix_loop,
    r_dominators_mask,
    r_dominators_mask_loop,
    score_decomposition,
    vertex_scores,
)
from repro.kernels.vertexops import (
    halfspace_side_bounds,
    halfspace_side_bounds_loop,
)

__all__ = [
    "DOMINANCE_TOL",
    "dominance_counts",
    "dominance_counts_loop",
    "dominance_matrix",
    "dominance_matrix_loop",
    "dominators_mask",
    "dominators_mask_loop",
    "evaluate_halfspaces",
    "evaluate_halfspaces_loop",
    "halfspace_coefficients",
    "halfspace_coefficients_loop",
    "halfspace_side_bounds",
    "halfspace_side_bounds_loop",
    "r_dominance_matrix",
    "r_dominance_matrix_loop",
    "r_dominators_mask",
    "r_dominators_mask_loop",
    "score_decomposition",
    "vertex_scores",
]
