"""Batched half-space / score-difference kernels.

For records scored with a linear function over reduced weights, every
pairwise comparison ``S(q) >= S(p)`` is a half-space of the preference
domain, and r-dominance over a region reduces to sign tests of score
differences at the region's vertices.  The kernels here batch all of that:

* :func:`score_decomposition` — the affine form ``S(x; u) = offset +
  gradient @ u`` of every record (single source of the arithmetic behind
  :func:`repro.core.preference.score_gradients`);
* :func:`halfspace_coefficients` — the ``m`` half-spaces a candidate induces
  against ``m`` competitors, in one broadcast instead of ``m`` constructions;
* :func:`evaluate_halfspaces` — signed slack of ``m`` half-spaces at ``v``
  points in one matmul;
* :func:`vertex_scores` — scores of ``n`` records at ``v`` region vertices in
  one matmul;
* :func:`r_dominance_matrix` / :func:`r_dominators_mask` — vectorized
  r-dominance over candidate pools, from vertex scores.

As in :mod:`repro.kernels.dominance`, each kernel has a ``*_loop`` reference
performing the same elementwise float operations one record at a time; the
boolean kernels are bit-identical to their references.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.dominance import DOMINANCE_TOL, _row_block


def score_decomposition(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Affine representation of every record's score over reduced weights.

    Returns ``(gradients, offsets)`` with shapes ``(n, d-1)`` and ``(n,)``
    such that ``S(values[i]; u) = offsets[i] + gradients[i] @ u``.  Input
    validation lives in :func:`repro.core.preference.score_gradients`, which
    delegates the arithmetic here.
    """
    values = np.asarray(values, dtype=float)
    last = values[:, -1]
    gradients = values[:, :-1] - last[:, None]
    return gradients, last.copy()


def vertex_scores(values: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Scores of ``n`` records at ``v`` vertices in one matmul, shape ``(v, n)``."""
    gradients, offsets = score_decomposition(values)
    vertices = np.asarray(vertices, dtype=float)
    return offsets[None, :] + vertices @ gradients.T


def halfspace_coefficients(base, others: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Coefficients of the half-spaces ``S(other) >= S(base)``, batched.

    Returns ``(normals, offsets)`` with shapes ``(m, d-1)`` and ``(m,)``:
    row ``i`` describes ``{u : normals[i] @ u >= offsets[i]}``, the part of
    the preference domain where ``others[i]`` scores at least ``base``.
    """
    others = np.asarray(others, dtype=float)
    base = np.asarray(base, dtype=float).reshape(1, -1)
    gradients, offsets = score_decomposition(np.vstack([base, others]))
    normals = gradients[1:] - gradients[0]
    rhs = offsets[0] - offsets[1:]
    return normals, rhs


def halfspace_coefficients_loop(base, others: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reference one-pair-at-a-time implementation of :func:`halfspace_coefficients`."""
    others = np.asarray(others, dtype=float)
    base = np.asarray(base, dtype=float).reshape(1, -1)
    count = others.shape[0]
    normals = np.zeros((count, base.shape[1] - 1), dtype=float)
    rhs = np.zeros(count, dtype=float)
    for row in range(count):
        gradients, offsets = score_decomposition(np.vstack([base, others[row : row + 1]]))
        normals[row] = gradients[1] - gradients[0]
        rhs[row] = offsets[0] - offsets[1]
    return normals, rhs


def evaluate_halfspaces(normals: np.ndarray, offsets: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Signed slack of ``m`` half-spaces at ``p`` points, shape ``(m, p)``.

    Entry ``[i, j]`` is ``normals[i] @ points[j] - offsets[i]``, non-negative
    when point ``j`` lies inside half-space ``i`` — ``m * p`` individual
    ``HalfSpace.value`` calls collapsed into one matmul.
    """
    normals = np.asarray(normals, dtype=float)
    offsets = np.asarray(offsets, dtype=float)
    points = np.asarray(points, dtype=float)
    return normals @ points.T - offsets[:, None]


def evaluate_halfspaces_loop(
    normals: np.ndarray, offsets: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Reference one-at-a-time evaluation (``HalfSpace.value`` in a loop)."""
    normals = np.asarray(normals, dtype=float)
    offsets = np.asarray(offsets, dtype=float)
    points = np.asarray(points, dtype=float)
    out = np.zeros((normals.shape[0], points.shape[0]), dtype=float)
    for i in range(normals.shape[0]):
        for j in range(points.shape[0]):
            out[i, j] = float(normals[i] @ points[j]) - offsets[i]
    return out


def r_dominance_matrix(
    scores: np.ndarray,
    tol: float = DOMINANCE_TOL,
    *,
    block: int | None = None,
) -> np.ndarray:
    """Pairwise r-dominance matrix from vertex scores.

    ``scores`` has shape ``(v, n)``: the score of each of ``n`` records at
    each of the ``v`` region vertices.  ``M[i, j] = True`` iff record ``i``
    r-dominates record ``j`` — its score difference is ``>= -tol`` at every
    vertex and ``> tol`` at some vertex.  Accumulates per vertex over
    ``(block, n)`` slabs instead of materializing the ``(v, n, n)``
    difference tensor.
    """
    scores = np.asarray(scores, dtype=float)
    vertex_count, n = scores.shape
    if n == 0 or vertex_count == 0:
        return np.zeros((n, n), dtype=bool)
    out = np.empty((n, n), dtype=bool)
    step = _row_block(n, block)
    for start in range(0, n, step):
        rows = slice(start, min(start + step, n))
        diff = np.subtract.outer(scores[0, rows], scores[0])
        geq = diff >= -tol
        gt = diff > tol
        for vertex in range(1, vertex_count):
            diff = np.subtract.outer(scores[vertex, rows], scores[vertex])
            geq &= diff >= -tol
            gt |= diff > tol
        geq &= gt
        out[rows] = geq
    np.fill_diagonal(out, False)
    return out


def r_dominance_matrix_loop(scores: np.ndarray, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """Reference per-pair implementation of :func:`r_dominance_matrix`."""
    scores = np.asarray(scores, dtype=float)
    n = scores.shape[1]
    out = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            diff = scores[:, i] - scores[:, j]
            out[i, j] = bool(np.all(diff >= -tol) and np.any(diff > tol))
    return out


def r_dominators_mask(
    point_scores: np.ndarray, pool_scores: np.ndarray, tol: float = DOMINANCE_TOL
) -> np.ndarray:
    """Mask over a pool marking records that r-dominate a probe point.

    ``point_scores`` has shape ``(v,)`` (the probe's score at every region
    vertex), ``pool_scores`` shape ``(v, n)``.  For bit-identical results the
    two score blocks should come from a single :func:`vertex_scores` call on
    the stacked records, as :class:`repro.core.dominance.RDominance` does.
    """
    point_scores = np.asarray(point_scores, dtype=float)
    pool_scores = np.asarray(pool_scores, dtype=float)
    diff = pool_scores - point_scores[:, None]
    return np.all(diff >= -tol, axis=0) & np.any(diff > tol, axis=0)


def r_dominators_mask_loop(
    point_scores: np.ndarray, pool_scores: np.ndarray, tol: float = DOMINANCE_TOL
) -> np.ndarray:
    """Reference per-member implementation of :func:`r_dominators_mask`."""
    point_scores = np.asarray(point_scores, dtype=float)
    pool_scores = np.asarray(pool_scores, dtype=float)
    out = np.zeros(pool_scores.shape[1], dtype=bool)
    for j in range(pool_scores.shape[1]):
        diff = pool_scores[:, j] - point_scores
        out[j] = bool(np.all(diff >= -tol) and np.any(diff > tol))
    return out
