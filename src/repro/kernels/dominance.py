"""Batched traditional-dominance kernels.

Traditional dominance (record ``p`` dominates ``q`` when it is at least as
good everywhere and strictly better somewhere, with a ``tol`` tie slack) is
the primitive behind skylines, k-skybands and the BBS traversal.  The kernels
here compute it over whole pools at once.

Layout: instead of one ``(n, n, d)`` broadcast (the seed implementation) or a
per-record Python loop (the pre-kernel hot path, kept below as the ``*_loop``
references), the pairwise kernels accumulate per dimension over ``(n, n)``
boolean slabs::

    geq &= values[:, k][:, None] >= (values[:, k] - tol)[None, :]
    gt |= values[:, k][:, None] > (values[:, k] + tol)[None, :]

``d`` passes over an ``n x n`` slab touch ``d`` times less memory than one
pass over an ``n x n x d`` block, which makes this ~7x faster than both
alternatives at benchmark sizes (n=2000, d=4).  Large pools are processed in
row blocks so peak memory stays below a fixed budget.

Bit-exactness: the kernels perform exactly the same elementwise float
operations as the references (subtract ``tol``, then compare), so outputs are
identical — including ties at exactly ``±tol``.  ``tol`` must be
non-negative; all callers use :data:`DOMINANCE_TOL` or larger.
"""

from __future__ import annotations

import numpy as np

#: Tie tolerance used by dominance tests on floating-point data.  This is the
#: canonical definition; :mod:`repro.core.dominance` re-exports it.
DOMINANCE_TOL = 1e-9

#: Upper bound on the number of pairwise cells materialized at once; row
#: blocks are sized so one boolean ``(block, n)`` slab stays below this.
_BLOCK_CELLS = 1 << 24


def _row_block(n: int, block: int | None) -> int:
    """Rows per block: the override, or as many as the cell budget allows."""
    if block is not None:
        return max(1, int(block))
    if n <= 0:
        return 1
    return max(1, min(n, _BLOCK_CELLS // n))


def dominance_matrix(
    values: np.ndarray,
    tol: float = DOMINANCE_TOL,
    *,
    block: int | None = None,
) -> np.ndarray:
    """Pairwise matrix ``M[i, j] = True`` iff record ``i`` dominates ``j``.

    Per-dimension accumulation over ``(block, n)`` boolean slabs; ``block``
    overrides the automatic row-block size (used by tests to exercise the
    blocked path on small inputs).
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    if n == 0:
        return np.zeros((0, 0), dtype=bool)
    lo = values - tol
    hi = values + tol
    out = np.empty((n, n), dtype=bool)
    step = _row_block(n, block)
    for start in range(0, n, step):
        rows = slice(start, min(start + step, n))
        geq = np.greater_equal.outer(values[rows, 0], lo[:, 0])
        gt = np.greater.outer(values[rows, 0], hi[:, 0])
        for axis in range(1, values.shape[1]):
            geq &= np.greater_equal.outer(values[rows, axis], lo[:, axis])
            gt |= np.greater.outer(values[rows, axis], hi[:, axis])
        geq &= gt
        out[rows] = geq
    np.fill_diagonal(out, False)
    return out


def dominance_matrix_loop(values: np.ndarray, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """Reference per-record implementation (the pre-kernel hot path).

    Kept as the correctness oracle for the property tests and the baseline
    the CI perf gate measures against.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    out = np.zeros((n, n), dtype=bool)
    for j in range(n):
        geq = np.all(values >= values[j] - tol, axis=1)
        gt = np.any(values > values[j] + tol, axis=1)
        column = geq & gt
        column[j] = False
        out[:, j] = column
    return out


def dominance_counts(
    values: np.ndarray,
    tol: float = DOMINANCE_TOL,
    *,
    block: int | None = None,
) -> np.ndarray:
    """For every record, the number of records that traditionally dominate it.

    Accumulates column sums block by block, so the full pairwise matrix is
    never materialized for large pools.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    counts = np.zeros(n, dtype=int)
    if n == 0:
        return counts
    lo = values - tol
    hi = values + tol
    step = _row_block(n, block)
    for start in range(0, n, step):
        rows = slice(start, min(start + step, n))
        geq = np.greater_equal.outer(values[rows, 0], lo[:, 0])
        gt = np.greater.outer(values[rows, 0], hi[:, 0])
        for axis in range(1, values.shape[1]):
            geq &= np.greater_equal.outer(values[rows, axis], lo[:, axis])
            gt |= np.greater.outer(values[rows, axis], hi[:, axis])
        geq &= gt
        # The diagonal is False by construction: no record strictly beats
        # itself on any attribute for tol >= 0.
        counts += geq.sum(axis=0)
    return counts


def dominance_counts_loop(values: np.ndarray, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """Reference per-record implementation (the seed's ``dominance_counts``)."""
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    counts = np.zeros(n, dtype=int)
    for i in range(n):
        geq = np.all(values >= values[i] - tol, axis=1)
        gt = np.any(values > values[i] + tol, axis=1)
        dominators = geq & gt
        dominators[i] = False
        counts[i] = int(dominators.sum())
    return counts


def dominators_mask(point, pool: np.ndarray, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """Boolean mask over ``pool`` marking records that dominate ``point``.

    The incremental BBS primitive: ``point`` may be a data record or the top
    corner of an index node's MBB, ``pool`` the current skyband members.  One
    broadcast, no per-member loop.
    """
    pool = np.asarray(pool, dtype=float)
    if pool.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    point = np.asarray(point, dtype=float).reshape(-1)
    geq = np.all(pool >= point - tol, axis=1)
    gt = np.any(pool > point + tol, axis=1)
    return geq & gt


def dominators_mask_loop(point, pool: np.ndarray, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """Reference per-member implementation of :func:`dominators_mask`."""
    pool = np.asarray(pool, dtype=float)
    point = np.asarray(point, dtype=float).reshape(-1)
    out = np.zeros(pool.shape[0], dtype=bool)
    for position in range(pool.shape[0]):
        row = pool[position]
        out[position] = bool(np.all(row >= point - tol) and np.any(row > point + tol))
    return out
