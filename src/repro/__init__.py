"""repro — exact processing of uncertain top-k (UTK) queries.

A faithful, from-scratch Python reproduction of *Mouratidis & Tang, "Exact
Processing of Uncertain Top-k Queries in Multi-criteria Settings", PVLDB
11(8), 2018*.  The library implements the UTK problem model, the RSA and JAA
algorithms, the k-skyband / onion / kSPR baselines the paper compares
against, and every substrate they depend on (R-tree, BBS, half-space
arrangements, LP toolkit, workload generators, benchmark harness).

Quickstart
----------
>>> import numpy as np
>>> from repro import Dataset, hyperrectangle, utk1, utk2
>>> data = Dataset(np.random.default_rng(7).random((200, 3)) * 10.0)
>>> region = hyperrectangle([0.05, 0.05], [0.45, 0.25])
>>> result = utk1(data, region, k=2)
>>> partitioning = utk2(data, region, k=2)
"""

from repro.core.api import k_skyband, make_engine, utk1, utk2, utk_query
from repro.core.records import Dataset
from repro.core.region import Region, hyperrectangle, region_from_vertices, simplex_region
from repro.core.result import UTK1Result, UTK2Result, UTKPartition
from repro.core.rsa import RSA
from repro.core.jaa import JAA
from repro.core.scoring import LinearScoring, MonotoneScoring, PowerScoring
from repro.dynamic import DynamicUTKEngine, RecordStore
from repro.engine import BatchQuery, UTKEngine
from repro.parallel import parallel_utk1, parallel_utk2, parallel_utk_query, subdivide_region
from repro.exceptions import (
    GeometryError,
    InvalidDatasetError,
    InvalidQueryError,
    InvalidRegionError,
    LinearProgramError,
    ReproError,
)

__version__ = "1.9.0"

__all__ = [
    "utk1",
    "utk2",
    "utk_query",
    "parallel_utk1",
    "parallel_utk2",
    "parallel_utk_query",
    "subdivide_region",
    "k_skyband",
    "make_engine",
    "UTKEngine",
    "DynamicUTKEngine",
    "RecordStore",
    "BatchQuery",
    "Dataset",
    "Region",
    "hyperrectangle",
    "region_from_vertices",
    "simplex_region",
    "UTK1Result",
    "UTK2Result",
    "UTKPartition",
    "RSA",
    "JAA",
    "LinearScoring",
    "MonotoneScoring",
    "PowerScoring",
    "ReproError",
    "InvalidDatasetError",
    "InvalidQueryError",
    "InvalidRegionError",
    "LinearProgramError",
    "GeometryError",
    "__version__",
]
