"""Worker-pool supervision: respawn crashed shared-query workers.

``concurrent.futures.ProcessPoolExecutor`` is fail-stop: one worker dying
(OOM kill, segfault, ``SIGKILL`` from the chaos harness) marks the whole
pool broken and every subsequent submit raises ``BrokenProcessPool``.
:class:`SupervisedPool` wraps the executor so a crash becomes a contained,
observable event instead of permanent serving loss: the broken pool is torn
down, a fresh one spawned, and the in-flight call retried — query workers
re-attach the shared-memory descriptor from scratch (their per-process
memos died with them), so no state transfer is needed.

Crashes that persist through ``max_crash_retries`` respawns surface as
:class:`WorkerCrashError`, which the server maps to a structured
``worker_crash`` error response the client may retry — never a torn
connection.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.exceptions import ReproError
from repro.obs import names as _metric_names


class WorkerCrashError(ReproError):
    """A shared-worker call kept crashing through pool respawns."""


class SupervisedPool:
    """A spawn process pool that survives worker crashes by respawning.

    :meth:`run` is the supervised entry point: it blocks on one call and
    transparently respawns the pool (at most ``max_crash_retries`` times
    per call) when the pool breaks under it.  Thread-safe: concurrent
    callers racing one crash trigger a single respawn.
    """

    def __init__(self, workers: int, *, max_crash_retries: int = 2):
        self._workers = max(1, int(workers))
        self._max_crash_retries = max(0, int(max_crash_retries))
        self._lock = threading.Lock()
        self.restarts = 0
        self._pool = self._spawn()

    def _spawn(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            self._workers, mp_context=multiprocessing.get_context("spawn")
        )

    def run(self, fn, *args):
        """Call ``fn(*args)`` in a worker, respawning the pool on a crash."""
        for _attempt in range(self._max_crash_retries + 1):
            with self._lock:
                pool = self._pool
            try:
                return pool.submit(fn, *args).result()
            except BrokenProcessPool:
                self._respawn(pool)
        raise WorkerCrashError(
            f"worker call kept crashing through {self._max_crash_retries} pool respawns"
        )

    def _respawn(self, broken: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._pool is broken:
                broken.shutdown(wait=False)
                self._pool = self._spawn()
                self.restarts += 1
                _metric_names.WORKER_RESTARTS.inc()

    def worker_pids(self) -> list[int]:
        """PIDs of currently spawned workers (may lag behind ``workers``).

        The executor spawns processes lazily; a pid appears here only after
        the worker handled at least one submit.  The chaos harness issues a
        warm-up query before reading this.
        """
        with self._lock:
            processes = getattr(self._pool, "_processes", None) or {}
            return sorted(processes.keys())

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._pool.shutdown(wait=wait)
