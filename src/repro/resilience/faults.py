"""Deterministic seeded fault plans for the chaos lane.

A :class:`FaultPlan` is a fixed, serializable schedule of
:class:`FaultEvent` entries — *where* in the workload each fault fires, not
when in wall-clock time — so a chaos run is reproducible from
``(schedule, seed, workload shape)`` alone:

* ``kill_worker`` / ``crash_server`` / ``slow_update`` anchor to the
  position of the next update the soak's (single) updater will send;
* ``drop_connection`` / ``delay_connection`` anchor to the global query
  ordinal — the Nth query admitted across all querier threads.

Server-side faults (``slow_update``) are shipped to the ``repro serve``
process as a JSON file (``--fault-plan``); process-level faults (worker or
server ``SIGKILL``) are executed by the chaos harness, which owns the
server subprocess.  Every injection increments
``repro_faults_injected_total{kind}``.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass

#: Fault kinds anchored to the updater's position in the update stream.
UPDATE_KINDS = ("kill_worker", "crash_server", "slow_update")

#: Fault kinds anchored to the global query ordinal (client-side).
QUERY_KINDS = ("drop_connection", "delay_connection")

#: Named schedules accepted by ``repro soak --chaos --schedule``.
SCHEDULES = ("worker-kill", "conn-drop", "server-crash", "slow-update", "mixed")


@dataclass(frozen=True)
class FaultEvent:
    """One fault: what to inject, where in the workload, and how hard."""

    kind: str
    at: int
    seconds: float = 0.0

    def to_payload(self) -> dict:
        return {"kind": self.kind, "at": int(self.at), "seconds": float(self.seconds)}

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultEvent":
        return cls(
            kind=str(payload["kind"]),
            at=int(payload["at"]),
            seconds=float(payload.get("seconds", 0.0)),
        )


class FaultPlan:
    """An immutable schedule of faults, queryable by workload position."""

    def __init__(self, events: list[FaultEvent], *, schedule: str = "custom",
                 seed: int | None = None):
        self.events = sorted(events, key=lambda e: (e.at, e.kind))
        self.schedule = schedule
        self.seed = seed

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def updates_due(self, position: int) -> list[FaultEvent]:
        """Faults to inject just before the updater sends update ``position``."""
        return [e for e in self.events if e.kind in UPDATE_KINDS and e.at == position]

    def queries_due(self, ordinal: int) -> list[FaultEvent]:
        """Faults to inject on the query with global ordinal ``ordinal``."""
        return [e for e in self.events if e.kind in QUERY_KINDS and e.at == ordinal]

    def stall_for_update(self, position: int) -> float:
        """Server-side stall (seconds) before applying update ``position``."""
        return sum(
            e.seconds for e in self.events
            if e.kind == "slow_update" and e.at == position
        )

    def needs_shared_workers(self) -> bool:
        return any(e.kind == "kill_worker" for e in self.events)

    def server_side_events(self) -> list[FaultEvent]:
        """The subset the server process itself must execute."""
        return [e for e in self.events if e.kind == "slow_update"]

    # ---------------------------------------------------------- serialization
    def to_payload(self) -> dict:
        return {
            "schedule": self.schedule,
            "seed": self.seed,
            "events": [event.to_payload() for event in self.events],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        return cls(
            [FaultEvent.from_payload(entry) for entry in payload.get("events", [])],
            schedule=payload.get("schedule", "custom"),
            seed=payload.get("seed"),
        )

    def to_file(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2)

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        with open(path, encoding="utf-8") as handle:
            return cls.from_payload(json.load(handle))


def _positions(rng: random.Random, count: int, total: int) -> list[int]:
    """``count`` distinct positions in the middle 20–80% of ``total`` slots."""
    if total <= 0:
        return []
    lo = max(1, total // 5)
    hi = max(lo + 1, (4 * total) // 5)
    universe = list(range(lo, hi))
    if not universe:
        universe = list(range(total))
    count = min(count, len(universe))
    return sorted(rng.sample(universe, count))


def build_plan(schedule: str, seed: int, n_updates: int, n_queries: int) -> FaultPlan:
    """A deterministic plan for a named schedule and workload shape.

    The RNG is seeded from ``(schedule, seed)`` via CRC32 (not ``hash()``,
    which is per-process randomized for strings), so identical arguments
    build identical plans in any process.
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown fault schedule {schedule!r} (have {SCHEDULES})")
    rng = random.Random(zlib.crc32(schedule.encode()) ^ (int(seed) & 0xFFFFFFFF))
    events: list[FaultEvent] = []
    if schedule in ("worker-kill", "mixed"):
        for at in _positions(rng, 2 if schedule == "worker-kill" else 1, n_updates):
            events.append(FaultEvent("kill_worker", at))
    if schedule in ("server-crash", "mixed"):
        for at in _positions(rng, 1, n_updates):
            events.append(FaultEvent("crash_server", at))
    if schedule in ("conn-drop", "mixed"):
        for at in _positions(rng, 3 if schedule == "conn-drop" else 2, n_queries):
            events.append(FaultEvent("drop_connection", at))
        for at in _positions(rng, 2 if schedule == "conn-drop" else 1, n_queries):
            events.append(FaultEvent("delay_connection", at,
                                     seconds=round(0.05 + 0.15 * rng.random(), 3)))
    if schedule in ("slow-update", "mixed"):
        for at in _positions(rng, 2 if schedule == "slow-update" else 1, n_updates):
            events.append(FaultEvent("slow_update", at,
                                     seconds=round(0.2 + 0.4 * rng.random(), 3)))
    return FaultPlan(events, schedule=schedule, seed=int(seed))
