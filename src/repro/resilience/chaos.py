"""Deterministic chaos harness: faults injected into a live serve process.

The harness owns a real ``python -m repro serve`` subprocess (so it can
``SIGKILL`` it) and threads a :class:`~repro.resilience.faults.FaultPlan`
through the soak's workload positions:

* ``kill_worker`` — ``SIGKILL`` a shared query worker (pid from server
  stats) right before the updater sends update *N*; the supervised pool
  must respawn and queries must keep answering;
* ``crash_server`` — ``SIGKILL`` the whole server before update *N*, then
  restart it on the **same port** with the **same WAL directory**; recovery
  must replay the acked prefix exactly, clients reconnect and retry;
* ``drop_connection`` / ``delay_connection`` — sabotage the querying
  client's connection at global query ordinal *N* (see
  :meth:`~repro.serve.client.ServeClient.inject_fault`);
* ``slow_update`` — executed inside the server itself (shipped via
  ``--fault-plan``), stretching the window concurrent queries see.

:func:`run_chaos` runs the standard soak oracle under the plan — zero stale
answers and zero lost acked updates are still required — then drains the
server gracefully and asserts it exits 0 with nothing left in ``/dev/shm``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.obs import names as _metric_names
from repro.resilience.faults import FaultPlan, build_plan
from repro.resilience.retry import CHAOS_RETRY
from repro.serve.client import ServeClient


def _free_port(host: str) -> int:
    """Ask the OS for a currently free port (reused across server restarts)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


class ServerProcess:
    """A ``repro serve`` subprocess the harness may kill and restart.

    The port is chosen once and reused by every :meth:`start`, and the WAL
    directory persists across restarts — a restart after ``SIGKILL`` is
    therefore a genuine crash recovery, not a fresh server.  Each start's
    stdout/stderr goes to ``server-<n>.log`` inside ``workdir`` (the CI
    lane uploads these on failure).
    """

    def __init__(
        self,
        *,
        workdir: str | os.PathLike,
        dataset: str = "IND",
        cardinality: int = 400,
        dimensionality: int = 3,
        seed: int = 0,
        host: str = "127.0.0.1",
        shared_workers: int = 0,
        fault_plan: str | os.PathLike | None = None,
        max_inflight: int = 64,
        cache_size: int = 128,
    ):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.wal_dir = self.workdir / "wal"
        self.host = host
        self.port = _free_port(host)
        self.dataset = dataset
        self.cardinality = int(cardinality)
        self.dimensionality = int(dimensionality)
        self.seed = int(seed)
        self.shared_workers = int(shared_workers)
        self.fault_plan = None if fault_plan is None else Path(fault_plan)
        self.max_inflight = int(max_inflight)
        self.cache_size = int(cache_size)
        self.starts = 0
        self.process: subprocess.Popen | None = None
        self._log_handle = None

    def command(self, ready_file: Path) -> list[str]:
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--dataset", self.dataset,
            "--cardinality", str(self.cardinality),
            "--dimensionality", str(self.dimensionality),
            "--seed", str(self.seed),
            "--host", self.host,
            "--port", str(self.port),
            "--ready-file", str(ready_file),
            "--wal-dir", str(self.wal_dir),
            "--max-inflight", str(self.max_inflight),
            "--cache-size", str(self.cache_size),
        ]
        if self.shared_workers:
            cmd += ["--shared-workers", str(self.shared_workers)]
        if self.fault_plan is not None:
            cmd += ["--fault-plan", str(self.fault_plan)]
        return cmd

    def start(self, timeout: float = 120.0) -> tuple[str, int]:
        """Spawn the server and block until its ready file appears."""
        if self.process is not None and self.process.poll() is None:
            raise RuntimeError("server already running")
        self.starts += 1
        ready_file = self.workdir / f"ready-{self.starts}.json"
        ready_file.unlink(missing_ok=True)
        log_path = self.workdir / f"server-{self.starts}.log"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self._log_handle = open(log_path, "ab")
        self.process = subprocess.Popen(
            self.command(ready_file),
            stdout=self._log_handle,
            stderr=subprocess.STDOUT,
            env=env,
        )
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"server exited with {self.process.returncode} before "
                    f"becoming ready (see {log_path})"
                )
            try:
                with open(ready_file, encoding="utf-8") as handle:
                    ready = json.load(handle)
                return ready["host"], int(ready["port"])
            except (FileNotFoundError, ValueError):
                time.sleep(0.05)
        raise TimeoutError(f"server not ready within {timeout}s (see {log_path})")

    @property
    def pid(self) -> int | None:
        return None if self.process is None else self.process.pid

    def sigkill(self) -> None:
        """Kill the server without any chance to clean up (the crash)."""
        if self.process is None or self.process.poll() is not None:
            return
        os.kill(self.process.pid, signal.SIGKILL)
        self.process.wait()
        self._close_log()

    def terminate(self, timeout: float = 60.0) -> int:
        """Graceful ``SIGTERM`` drain; returns the exit code."""
        if self.process is None:
            return 0
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        self._close_log()
        return self.process.returncode

    def ensure_stopped(self) -> None:
        """Best-effort kill for error paths."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait()
        self._close_log()

    def _close_log(self) -> None:
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None


class ChaosInjector:
    """Executes a plan's client/process-level faults at workload positions.

    Wired into :func:`repro.serve.soak.run_soak` via its ``injector`` hook:
    ``on_update`` runs in the (single) updater thread, ``on_query`` in any
    querier thread; the fault log is therefore lock-protected.
    """

    def __init__(self, plan: FaultPlan, server: ServerProcess | None = None,
                 *, restart_timeout: float = 120.0):
        self._plan = plan
        self._server = server
        self._restart_timeout = restart_timeout
        self._lock = threading.Lock()
        self._log: list[dict] = []

    def _record(self, kind: str, at: int, **detail) -> None:
        _metric_names.FAULTS_INJECTED.inc(kind=kind)
        with self._lock:
            self._log.append({"kind": kind, "at": at, **detail})

    def injected(self) -> list[dict]:
        with self._lock:
            return list(self._log)

    def on_update(self, position: int, client: ServeClient) -> None:
        for event in self._plan.updates_due(position):
            if event.kind == "kill_worker":
                self._kill_worker(position, client)
            elif event.kind == "crash_server":
                self._crash_server(position)
            # slow_update executes inside the server (--fault-plan)

    def on_query(self, ordinal: int, client: ServeClient) -> None:
        for event in self._plan.queries_due(ordinal):
            if event.kind == "drop_connection":
                mode = "before_send" if ordinal % 2 == 0 else "after_send"
                client.inject_fault(mode)
                self._record("drop_connection", ordinal, mode=mode)
            elif event.kind == "delay_connection":
                self._record("delay_connection", ordinal, seconds=event.seconds)
                time.sleep(event.seconds)

    def _kill_worker(self, position: int, client: ServeClient) -> None:
        pids = client.stats().get("workers", {}).get("pids", [])
        if not pids:
            self._record("kill_worker", position, skipped="no worker pids")
            return
        os.kill(pids[0], signal.SIGKILL)
        self._record("kill_worker", position, pid=pids[0])

    def _crash_server(self, position: int) -> None:
        if self._server is None:
            self._record("crash_server", position, skipped="no server handle")
            return
        self._server.sigkill()
        host, port = self._server.start(timeout=self._restart_timeout)
        self._record("crash_server", position, restarted=f"{host}:{port}")


def shm_leftovers(wal_dir: str | os.PathLike) -> list[str]:
    """Manifest-listed segments still present in ``/dev/shm`` (should be [])."""
    from repro.resilience.recovery import read_shm_manifest
    from repro.serve.shm import _attach_untracked

    leftover = []
    for name in read_shm_manifest(wal_dir):
        try:
            segment = _attach_untracked(name)
        except FileNotFoundError:
            continue
        segment.close()
        leftover.append(name)
    return leftover


def _warm_up(host: str, port: int, events: list[dict], timeout: float) -> None:
    """Spawn the lazy shared workers so their pids are visible in stats."""
    query = next((e for e in events if e.get("op") == "query"), None)
    with ServeClient(host, port, timeout=timeout, retry=CHAOS_RETRY) as client:
        client.ping()
        if query is not None:
            client.query(query["lower"], query["upper"], query["k"],
                         query.get("version", "utk1"))


def run_chaos(
    data,
    events: list[dict],
    *,
    schedule: str,
    seed: int,
    workdir: str | os.PathLike,
    server_args: dict | None = None,
    clients: int = 4,
    timeout: float = 180.0,
    shared_workers: int | None = None,
    verify_queries: int = 8,
) -> dict:
    """One seeded chaos soak: spawn, sabotage, verify, drain, audit.

    ``server_args`` must describe the same dataset as ``data`` (the serial
    oracle replays from it).  The report is the soak report plus the fault
    log, the server's exit code, its restart count, and the ``/dev/shm``
    leak audit; ``ok`` requires all of stale == 0, no lost acks, exit 0 and
    zero leaked segments.
    """
    updates = [e for e in events if e.get("op") in ("insert", "delete")]
    queries = [e for e in events if e.get("op") == "query"]
    plan = build_plan(schedule, seed, len(updates), len(queries))
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    plan_path = workdir / "fault_plan.json"
    plan.to_file(plan_path)
    if shared_workers is None:
        shared_workers = 2 if plan.needs_shared_workers() else 0
    server = ServerProcess(
        workdir=workdir,
        shared_workers=shared_workers,
        fault_plan=plan_path if plan.server_side_events() else None,
        **(server_args or {}),
    )
    injector = ChaosInjector(plan, server)
    try:
        from repro.serve.soak import run_soak

        host, port = server.start()
        _warm_up(host, port, events, timeout)
        report = run_soak(
            host, port, data, events,
            clients=clients, timeout=timeout, retry=CHAOS_RETRY,
            injector=injector, verify_queries=verify_queries,
        )
        exit_code = server.terminate()
    finally:
        server.ensure_stopped()
    leaked = shm_leftovers(server.wal_dir)
    report.update({
        "schedule": schedule,
        "chaos_seed": int(seed),
        "plan_events": len(plan),
        "server_exit": exit_code,
        "server_starts": server.starts,
        "shm_leaked": leaked,
        "ok": report["ok"] and exit_code == 0 and not leaked,
    })
    return report
