"""Crash recovery: WAL replay into a fresh engine + orphan shm cleanup.

:func:`recover` is what ``repro serve --wal-dir`` runs at startup.  Given
the initial dataset and the WAL directory it:

1. unlinks any shared-memory segments named in the directory's **shm
   manifest** — a ``SIGKILL``'d predecessor never ran its finalizers, so
   its segments would otherwise leak in ``/dev/shm`` forever;
2. opens the :class:`~repro.resilience.wal.WriteAheadLog` (which truncates
   a torn/corrupt tail to the last valid prefix);
3. replays every recovered record through a fresh engine **in WAL order** —
   record ids are assigned sequentially, so the replayed store is
   bit-identical to the pre-crash one — and rebuilds the txid→ack map that
   makes client update retries exactly-once across the crash.

The resulting engine answers every query exactly as an uninterrupted server
that applied the same update prefix would (the chaos lane's regression
gate).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import names as _metric_names
from repro.resilience.wal import WriteAheadLog
from repro.serve.shm import unlink_segment

#: File inside the WAL directory naming the engine's live shm segments.
SHM_MANIFEST = "shm_manifest.json"


def manifest_path(wal_dir: str | os.PathLike) -> Path:
    return Path(wal_dir) / SHM_MANIFEST


def write_shm_manifest(wal_dir: str | os.PathLike, names: list[str]) -> None:
    """Atomically record the engine's current shared-segment names."""
    path = manifest_path(wal_dir)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"segments": sorted(names)}, handle)
    os.replace(tmp, path)


def read_shm_manifest(wal_dir: str | os.PathLike) -> list[str]:
    path = manifest_path(wal_dir)
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (FileNotFoundError, ValueError):
        return []
    return [str(name) for name in payload.get("segments", [])]


def cleanup_orphan_segments(wal_dir: str | os.PathLike) -> list[str]:
    """Unlink manifest-listed segments a crashed predecessor left behind."""
    removed = [name for name in read_shm_manifest(wal_dir) if unlink_segment(name)]
    return removed


@dataclass
class RecoveryResult:
    """What :func:`recover` restored, ready to hand to ``UTKServer``."""

    engine: object
    wal: WriteAheadLog
    replayed: int = 0
    #: txid -> the ack payload the original request would have received.
    txids: dict[str, dict] = field(default_factory=dict)
    orphans_removed: list[str] = field(default_factory=list)
    truncated_reason: str | None = None


def recover(
    data,
    wal_dir: str | os.PathLike,
    *,
    engine_factory=None,
    engine_kwargs: dict | None = None,
    wal_kwargs: dict | None = None,
) -> RecoveryResult:
    """Restore the serving state a crashed (or cleanly stopped) server had.

    ``data`` must be the same initial dataset the original server started
    from (the WAL only holds the updates).  Returns the live engine, the
    reopened WAL positioned for appending, and the txid dedup map.
    """
    if engine_factory is None:
        from repro.serve.engine import ServeEngine

        engine_factory = ServeEngine
    orphans = cleanup_orphan_segments(wal_dir)
    wal = WriteAheadLog(wal_dir, **(wal_kwargs or {}))
    engine = engine_factory(data, **(engine_kwargs or {}))
    txids: dict[str, dict] = {}
    try:
        for record in wal.recovered_records:
            outcome = engine.apply_updates([record.event])
            _metric_names.WAL_RECORDS.inc(outcome="replayed")
            if record.txid is not None:
                if record.event.get("op") == "insert":
                    record_id = int(outcome["inserted_ids"][0])
                else:
                    record_id = int(record.event["id"])
                txids[record.txid] = {"applied": record.seq, "record": record_id,
                                      "entries_repaired": 0, "entries_evicted": 0}
    except Exception:
        engine.close()
        wal.close()
        raise
    write_shm_manifest(wal_dir, engine.shm_segment_names())
    return RecoveryResult(
        engine=engine,
        wal=wal,
        replayed=len(wal.recovered_records),
        txids=txids,
        orphans_removed=orphans,
        truncated_reason=wal.recovered_reason,
    )
