"""Client-side retry/backoff policy for the serve protocol.

A :class:`RetryPolicy` is a pure description — exponential backoff with
bounded, seeded jitter — so tests can assert the exact delay schedule.  The
:class:`~repro.serve.client.ServeClient` applies it to idempotent requests:
queries and pings always (re-execution is harmless), updates only when they
carry a ``txid`` (the server deduplicates, making the retry exactly-once).

Which server errors are worth retrying is decided by the machine-readable
``code`` field of error responses (see ``UTKServer._dispatch_line``):
:data:`RETRIABLE_CODES` are transient conditions — back off and try again —
everything else (``bad_request``) is permanent and fails fast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Server error codes a client may retry (transient by construction).
RETRIABLE_CODES = frozenset({"overloaded", "worker_crash", "shutting_down"})


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded jitter.

    ``delay(attempt, rng)`` for attempt 0, 1, 2, ... is
    ``min(max_delay, base_delay * multiplier**attempt)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1]`` — deterministic for a
    seeded ``rng``.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = min(self.max_delay, self.base_delay * self.multiplier ** max(0, attempt))
        if self.jitter <= 0:
            return base
        return base * (1.0 - self.jitter * rng.random())

    def delays(self, rng: random.Random) -> list[float]:
        """The full backoff schedule (one delay before each retry attempt)."""
        return [self.delay(attempt, rng) for attempt in range(self.max_attempts - 1)]


#: Sensible interactive default: a handful of quick attempts.
DEFAULT_RETRY = RetryPolicy()

#: Single attempt — the pre-resilience client behaviour.
NO_RETRY = RetryPolicy(max_attempts=1)

#: Patient policy for chaos runs: outlives a server SIGKILL + WAL recovery.
CHAOS_RETRY = RetryPolicy(max_attempts=14, base_delay=0.1, max_delay=2.0)
