"""Append-only, checksummed JSONL write-ahead log for update events.

The serving tier's durability contract is *append-before-ack*: the server
appends every ``insert``/``delete`` to the WAL (and fsyncs) before the
client sees the acknowledgement, so after a crash — including ``SIGKILL``
mid-write — replaying the log through a fresh engine restores the exact
acked update prefix.

Format: one JSON object per line, ``{"seq", "txid", "event", "crc"}`` where
``crc`` is the CRC32 (hex) of the canonical JSON of the other three fields.
Records live in numbered segment files (``wal-00000000.jsonl``, rotated
every ``segment_max_records`` appends) inside one directory.

Recovery semantics (:func:`read_wal`):

* a **torn final record** (the crash cut a line short) is silently dropped —
  that update was never acked, losing it is correct;
* a **checksum mismatch, sequence gap or undecodable line** anywhere stops
  the replay at the last valid prefix — everything before it is trusted,
  everything after (later segments included) is not;
* :class:`WriteAheadLog` opened on an existing directory truncates the tail
  segment to that valid prefix (preserving the cut bytes as ``*.corrupt``
  for inspection) and resumes appending after the highest valid sequence.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import names as _metric_names

#: Segment file name pattern; the index only orders files, sequence numbers
#: inside the records are the source of truth.
_SEGMENT_FORMAT = "wal-{index:08d}.jsonl"
_SEGMENT_GLOB = "wal-*.jsonl"

#: Default appends per segment before rotation.
DEFAULT_SEGMENT_RECORDS = 1024


class WALCorruption(ValueError):
    """A WAL line failed to decode (bad JSON, checksum or sequence)."""


@dataclass(frozen=True)
class WALRecord:
    """One durable update event: sequence number, optional txid, payload."""

    seq: int
    event: dict
    txid: str | None = None


def _canonical(seq: int, event: dict, txid: str | None) -> bytes:
    payload = {"seq": int(seq), "txid": txid, "event": event}
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def encode_record(seq: int, event: dict, txid: str | None = None) -> bytes:
    """One WAL line (newline-terminated) with an embedded CRC32 checksum."""
    body = _canonical(seq, event, txid)
    crc = f"{zlib.crc32(body) & 0xFFFFFFFF:08x}"
    return json.dumps(
        {"seq": int(seq), "txid": txid, "event": event, "crc": crc},
        sort_keys=True,
        separators=(",", ":"),
    ).encode() + b"\n"


def decode_record(line: bytes) -> WALRecord:
    """Parse and verify one WAL line; raises :class:`WALCorruption`."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WALCorruption(f"undecodable WAL line: {exc}") from exc
    if not isinstance(payload, dict):
        raise WALCorruption("WAL line is not a JSON object")
    missing = {"seq", "event", "crc"} - set(payload)
    if missing:
        raise WALCorruption(f"WAL record missing field(s) {sorted(missing)}")
    seq, event, txid = payload["seq"], payload["event"], payload.get("txid")
    if not isinstance(seq, int) or not isinstance(event, dict):
        raise WALCorruption("WAL record field types are wrong")
    if txid is not None and not isinstance(txid, str):
        raise WALCorruption("WAL txid must be a string or null")
    expected = f"{zlib.crc32(_canonical(seq, event, txid)) & 0xFFFFFFFF:08x}"
    if payload["crc"] != expected:
        raise WALCorruption(
            f"WAL checksum mismatch at seq {seq} "
            f"(stored {payload['crc']!r}, computed {expected!r})"
        )
    return WALRecord(seq=seq, event=event, txid=txid)


@dataclass
class WALScan:
    """The valid prefix of a WAL directory plus where (and why) it ended."""

    records: list[WALRecord] = field(default_factory=list)
    #: Segment holding the last valid byte (None for an empty log).
    tail_segment: Path | None = None
    #: Valid bytes inside :attr:`tail_segment`; appends resume there.
    tail_valid_bytes: int = 0
    #: Valid records inside :attr:`tail_segment` (rotation bookkeeping).
    tail_records: int = 0
    #: Why the scan stopped early (None: the whole log was valid).
    truncated_reason: str | None = None
    #: Segments that lie entirely after the stop point (untrusted).
    orphan_segments: list[Path] = field(default_factory=list)

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def wal_segments(directory: str | os.PathLike) -> list[Path]:
    """Existing segment files, in replay order."""
    return sorted(Path(directory).glob(_SEGMENT_GLOB))


def read_wal(directory: str | os.PathLike) -> WALScan:
    """Scan a WAL directory and return its longest valid record prefix.

    Never raises on corruption: the scan stops at the first invalid line
    (torn tail, checksum mismatch, sequence gap) and reports why.
    """
    scan = WALScan()
    expected_seq = 1
    for segment in wal_segments(directory):
        scan.tail_segment = segment
        scan.tail_valid_bytes = 0
        scan.tail_records = 0
        with open(segment, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    # A torn final record: the crash cut the write short.
                    scan.truncated_reason = f"torn record in {segment.name}"
                    break
                try:
                    record = decode_record(line)
                except WALCorruption as exc:
                    scan.truncated_reason = f"{segment.name}: {exc}"
                    break
                if record.seq != expected_seq:
                    scan.truncated_reason = (
                        f"{segment.name}: sequence gap "
                        f"(expected {expected_seq}, found {record.seq})"
                    )
                    break
                scan.records.append(record)
                scan.tail_valid_bytes += len(line)
                scan.tail_records += 1
                expected_seq += 1
        if scan.truncated_reason is not None:
            break
    if scan.truncated_reason is not None:
        stop = scan.tail_segment
        scan.orphan_segments = [
            segment for segment in wal_segments(directory) if segment > stop
        ]
    return scan


class WriteAheadLog:
    """Append-only log over a directory of rotated, checksummed segments.

    Opening an existing directory recovers it for appending: the valid
    record prefix is kept, a torn/corrupt tail is moved aside as
    ``*.corrupt``, and new appends continue from the highest valid
    sequence number.  ``sync_every=1`` (the default) fsyncs every append —
    the durability the serving tier's ack contract needs; larger values
    batch fsyncs for throughput and callers :meth:`sync` at commit points.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        segment_max_records: int = DEFAULT_SEGMENT_RECORDS,
        sync_every: int = 1,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_max = max(1, int(segment_max_records))
        self._sync_every = max(1, int(sync_every))
        self._unsynced = 0
        scan = read_wal(self.directory)
        self._repair(scan)
        #: Records recovered from disk when the log was opened (replay input).
        self.recovered_records: list[WALRecord] = scan.records
        self.recovered_reason = scan.truncated_reason
        self._seq = scan.last_seq
        self.appended = 0
        if scan.tail_segment is not None and scan.tail_records < self._segment_max:
            self._segment_path = scan.tail_segment
            self._segment_records = scan.tail_records
        else:
            self._segment_path = self._next_segment_path()
            self._segment_records = 0
        self._handle = open(self._segment_path, "ab")

    # -------------------------------------------------------------- recovery
    def _repair(self, scan: WALScan) -> None:
        """Cut the invalid suffix found by the scan, preserving it aside."""
        if scan.truncated_reason is None:
            return
        tail = scan.tail_segment
        if tail is not None and tail.stat().st_size > scan.tail_valid_bytes:
            with open(tail, "rb") as handle:
                handle.seek(scan.tail_valid_bytes)
                remainder = handle.read()
            corrupt = tail.with_suffix(tail.suffix + ".corrupt")
            with open(corrupt, "ab") as handle:
                handle.write(remainder)
            with open(tail, "ab") as handle:
                handle.truncate(scan.tail_valid_bytes)
            _metric_names.WAL_RECORDS.inc(outcome="discarded")
        for orphan in scan.orphan_segments:
            orphan.rename(orphan.with_suffix(orphan.suffix + ".corrupt"))

    def _next_segment_path(self) -> Path:
        existing = wal_segments(self.directory)
        index = 0
        if existing:
            last = existing[-1].stem  # "wal-XXXXXXXX"
            index = int(last.split("-")[1]) + 1
        return self.directory / _SEGMENT_FORMAT.format(index=index)

    # --------------------------------------------------------------- appends
    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent durable record."""
        return self._seq

    def append(self, event: dict, *, txid: str | None = None) -> int:
        """Durably append one event; returns its sequence number.

        The record is flushed to the OS always and fsynced according to
        ``sync_every`` — with the default of 1 the append is fully durable
        before this method returns (the ack ordering the server relies on).
        """
        seq = self._seq + 1
        self._handle.write(encode_record(seq, event, txid))
        self._handle.flush()
        self._seq = seq
        self.appended += 1
        self._segment_records += 1
        self._unsynced += 1
        _metric_names.WAL_RECORDS.inc(outcome="appended")
        if self._unsynced >= self._sync_every:
            self._fsync()
        if self._segment_records >= self._segment_max:
            self._rotate()
        return seq

    def sync(self) -> None:
        """Flush and fsync any batched appends now."""
        self._handle.flush()
        if self._unsynced:
            self._fsync()

    def _fsync(self) -> None:
        started = time.perf_counter()
        os.fsync(self._handle.fileno())
        self._unsynced = 0
        _metric_names.WAL_FSYNC_SECONDS.observe(time.perf_counter() - started)

    def _rotate(self) -> None:
        self.sync()
        self._handle.close()
        self._segment_path = self._next_segment_path()
        self._segment_records = 0
        self._handle = open(self._segment_path, "ab")

    def segment_paths(self) -> list[Path]:
        return wal_segments(self.directory)

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
