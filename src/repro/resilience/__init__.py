"""Crash-safe serving: WAL + recovery, supervision, retries, chaos lane.

The serving tier's failure story lives here, in four pieces the modules
mirror:

* :mod:`repro.resilience.wal` — append-only checksummed JSONL write-ahead
  log the server appends to **before** acking any update;
* :mod:`repro.resilience.recovery` — replay the WAL through a fresh engine
  (plus ``/dev/shm`` orphan cleanup) so a killed server restarts to the
  exact acked prefix;
* :mod:`repro.resilience.supervisor` / :mod:`repro.resilience.retry` — the
  two retry layers: server-side worker-pool respawn, client-side
  backoff-with-jitter over machine-readable error codes;
* :mod:`repro.resilience.faults` / :mod:`repro.resilience.chaos` — the
  deterministic seeded fault planner and the harness that executes plans
  against a real server subprocess (``repro soak --chaos``).
"""

from repro.resilience.faults import SCHEDULES, FaultEvent, FaultPlan, build_plan
from repro.resilience.recovery import (
    RecoveryResult,
    cleanup_orphan_segments,
    read_shm_manifest,
    recover,
    write_shm_manifest,
)
from repro.resilience.retry import (
    CHAOS_RETRY,
    DEFAULT_RETRY,
    NO_RETRY,
    RETRIABLE_CODES,
    RetryPolicy,
)
from repro.resilience.supervisor import SupervisedPool, WorkerCrashError
from repro.resilience.wal import (
    WALCorruption,
    WALRecord,
    WriteAheadLog,
    decode_record,
    encode_record,
    read_wal,
)

__all__ = [
    "CHAOS_RETRY",
    "DEFAULT_RETRY",
    "NO_RETRY",
    "RETRIABLE_CODES",
    "SCHEDULES",
    "FaultEvent",
    "FaultPlan",
    "RecoveryResult",
    "RetryPolicy",
    "SupervisedPool",
    "WALCorruption",
    "WALRecord",
    "WorkerCrashError",
    "WriteAheadLog",
    "build_plan",
    "cleanup_orphan_segments",
    "decode_record",
    "encode_record",
    "read_shm_manifest",
    "read_wal",
    "recover",
    "write_shm_manifest",
]
