"""Skyline / k-skyband substrate.

Provides vectorized brute-force dominance counting (used as an oracle and for
small candidate pools) and the BBS branch-and-bound traversal over the R-tree
used by the paper for both the traditional k-skyband and the r-skyband
filtering step.
"""

from repro.skyline.dominance import (
    dominance_matrix,
    k_skyband_bruteforce,
    skyline_bruteforce,
)
from repro.skyline.bbs import bbs_candidates, BBSStatistics
from repro.skyline.skyband import k_skyband, onion_candidates

__all__ = [
    "dominance_matrix",
    "k_skyband_bruteforce",
    "skyline_bruteforce",
    "bbs_candidates",
    "BBSStatistics",
    "k_skyband",
    "onion_candidates",
]
