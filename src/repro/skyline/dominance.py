"""Quadratic traditional-dominance utilities (kernel-backed).

These routines serve three purposes: they are the correctness oracle for the
index-based BBS computation, they finalize candidate sets produced by BBS
(see :mod:`repro.skyline.skyband`), and they are perfectly adequate on the
small candidate pools that reach the refinement steps.  The pairwise matrix
itself is served by :mod:`repro.kernels.dominance`.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import DOMINANCE_TOL
from repro.kernels.dominance import dominance_matrix as _kernel_dominance_matrix


def dominance_matrix(values: np.ndarray, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """Pairwise matrix ``M[i, j] = True`` iff record ``i`` dominates record ``j``."""
    return _kernel_dominance_matrix(values, tol)


def skyline_bruteforce(values: np.ndarray, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """Indices of the skyline (records dominated by no other record)."""
    matrix = dominance_matrix(values, tol)
    counts = matrix.sum(axis=0)
    return np.flatnonzero(counts == 0)


def k_skyband_bruteforce(values: np.ndarray, k: int, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """Indices of the k-skyband (records dominated by fewer than ``k`` others)."""
    matrix = dominance_matrix(values, tol)
    counts = matrix.sum(axis=0)
    return np.flatnonzero(counts < k)


def dominator_sets(values: np.ndarray, tol: float = DOMINANCE_TOL) -> list[set[int]]:
    """For every record, the set of indices of records dominating it."""
    matrix = dominance_matrix(values, tol)
    return [set(np.flatnonzero(matrix[:, j]).tolist()) for j in range(matrix.shape[1])]
