"""BBS branch-and-bound skyband traversal.

BBS (Papadias et al.) visits R-tree nodes and records in decreasing order of
a monotone key and maintains a growing skyband set: an element is pruned as
soon as ``k`` current members dominate it.  The paper's r-skyband computation
(Section 4.1) is the same traversal with two twists — r-dominance replaces
traditional dominance, and the sorting key is the score at the *pivot* vector
of the query region.

The traversal here is generic over both choices: callers supply a ``key``
function (monotone scoring of a point) and a ``dominators_of`` callback that
returns, for a probe point, the mask of current members dominating it.

Because exact score ties can let a dominator pop *after* its dominee, the
traversal returns a (slightly) conservative superset; callers finalize it
with an exact quadratic pass (:mod:`repro.skyline.skyband`,
:mod:`repro.core.rskyband`).  This keeps the index-based path fast and the
final answer exact.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.index.rtree import RTree


@dataclass
class BBSStatistics:
    """Instrumentation of a BBS traversal (useful for benchmarks and tests)."""

    nodes_visited: int = 0
    records_visited: int = 0
    records_pruned: int = 0
    nodes_pruned: int = 0
    heap_pushes: int = 0
    candidate_count: int = 0
    extra: dict = field(default_factory=dict)


def bbs_candidates(tree: RTree, k: int, *,
                   key: Callable[[np.ndarray], float],
                   dominators_of: Callable[[np.ndarray, np.ndarray], np.ndarray],
                   ) -> tuple[list[int], list[np.ndarray], BBSStatistics]:
    """Run the BBS traversal and return the candidate superset.

    Parameters
    ----------
    tree:
        R-tree over the dataset.
    k:
        Skyband parameter: elements dominated by ``k`` or more current
        members are pruned.
    key:
        Monotone scoring of a point; nodes are keyed by their MBB top corner.
    dominators_of:
        ``(probe_point, member_matrix) -> bool mask`` of members dominating
        the probe.

    Returns
    -------
    (indices, points, stats)
        Candidate record indices (in pop order), their attribute vectors and
        traversal statistics.
    """
    stats = BBSStatistics()
    members_idx: list[int] = []
    members_rows: list[np.ndarray] = []
    # Members live in an amortized-doubling buffer so the r-dominance kernel
    # always sees one contiguous matrix; the seed re-stacked the whole pool on
    # every admission, which is quadratic in the member count.
    dimension = tree.dimension or 0
    member_buffer = np.empty((16, dimension), dtype=float)
    member_count = 0

    counter = itertools.count()
    heap: list[tuple[float, int, int, object]] = []

    def push(kind: int, priority: float, payload) -> None:
        heapq.heappush(heap, (-priority, next(counter), kind, payload))
        stats.heap_pushes += 1

    root = tree.root
    if root.mbb is None:
        return [], [], stats
    push(0, key(root.mbb.top_corner), root)

    while heap:
        _, _, kind, payload = heapq.heappop(heap)
        if kind == 0:  # index node
            node = payload
            stats.nodes_visited += 1
            corner = node.mbb.top_corner
            if member_count >= k:
                dominated_by = int(dominators_of(corner, member_buffer[:member_count]).sum())
                if dominated_by >= k:
                    stats.nodes_pruned += 1
                    continue
            if node.is_leaf:
                for index, point in node.entries:
                    push(1, key(point), (index, point))
            else:
                for child in node.children:
                    if child.mbb is not None:
                        push(0, key(child.mbb.top_corner), child)
        else:  # data record
            index, point = payload
            stats.records_visited += 1
            if member_count >= k:
                dominated_by = int(dominators_of(point, member_buffer[:member_count]).sum())
                if dominated_by >= k:
                    stats.records_pruned += 1
                    continue
            members_idx.append(int(index))
            members_rows.append(np.asarray(point, dtype=float))
            if member_count == member_buffer.shape[0]:
                grown = np.empty((member_buffer.shape[0] * 2, dimension), dtype=float)
                grown[:member_count] = member_buffer[:member_count]
                member_buffer = grown
            member_buffer[member_count] = point
            member_count += 1

    stats.candidate_count = len(members_idx)
    tree.count_access("search", stats.nodes_visited)
    return members_idx, members_rows, stats
