"""High-level k-skyband and onion-candidate computation.

Combines the BBS traversal (index-based filtering) with an exact quadratic
finalization pass over the small candidate pool.  The finalization exploits a
standard property of (transitive) dominance: every dominator of a skyband
member is itself a skyband member, and every non-member has at least ``k``
dominators inside the skyband.  Counting dominators within a BBS superset is
therefore exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import DOMINANCE_TOL
from repro.geometry.onion import onion_layers
from repro.index.rtree import RTree
from repro.kernels.dominance import dominators_mask
from repro.skyline.bbs import BBSStatistics, bbs_candidates
from repro.skyline.dominance import dominance_matrix, k_skyband_bruteforce


def k_skyband(
    values: np.ndarray,
    k: int,
    *,
    tree: RTree | None = None,
    tol: float = DOMINANCE_TOL,
    return_stats: bool = False,
):
    """Indices of the traditional k-skyband of ``values``.

    When an R-tree is supplied (or the dataset is large enough to warrant
    building one) the BBS traversal prunes most of the data before the exact
    finalization pass; otherwise a brute-force pass is used directly.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    stats = BBSStatistics()
    if tree is None and n <= 512:
        result = k_skyband_bruteforce(values, k, tol)
        stats.candidate_count = int(result.size)
        return (result, stats) if return_stats else result
    if tree is None:
        tree = RTree(values)

    def key(point: np.ndarray) -> float:
        return float(np.sum(point))

    def dominators_of(point: np.ndarray, members: np.ndarray) -> np.ndarray:
        return dominators_mask(point, members, tol)

    candidate_idx, candidate_rows, stats = bbs_candidates(
        tree, k, key=key, dominators_of=dominators_of
    )
    if not candidate_idx:
        empty = np.zeros(0, dtype=int)
        return (empty, stats) if return_stats else empty
    pool = np.vstack(candidate_rows)
    matrix = dominance_matrix(pool, tol)
    counts = matrix.sum(axis=0)
    members = np.asarray(candidate_idx, dtype=int)[counts < k]
    members = np.sort(members)
    return (members, stats) if return_stats else members


def onion_candidates(
    values: np.ndarray, k: int, *, tree: RTree | None = None, tol: float = DOMINANCE_TOL
) -> np.ndarray:
    """Union of the first ``k`` onion layers, computed off the k-skyband.

    Following the paper (Section 3.3), onion layers are derived from the
    k-skyband — the layers are always a subset of it — which keeps the convex
    hull computations small.
    """
    skyband = k_skyband(values, k, tree=tree, tol=tol)
    if skyband.size == 0:
        return skyband
    layers = onion_layers(np.asarray(values, dtype=float)[skyband], k)
    if not layers:
        return np.zeros(0, dtype=int)
    local = np.unique(np.concatenate(layers))
    return np.sort(skyband[local])
