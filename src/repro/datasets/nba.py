"""Curated NBA 2016-17 star statistics for the paper's case studies (Figure 9).

The paper's qualitative case studies run UTK on per-game statistics of the
2016-17 NBA season and highlight, for ``k = 3`` and small preference regions,
players such as Russell Westbrook, Anthony Davis, Hassan Whiteside, Andre
Drummond, James Harden, LeBron James and DeMarcus Cousins.

The table below lists approximate (publicly known) per-game figures for the
season's notable players.  Exact decimals are not material to the case study
— what matters is the relative ordering of Rebounds / Points / Assists among
the league's leaders, which these values preserve.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import Dataset

#: Column order of :data:`NBA_STARS`.
NBA_STAR_COLUMNS = ("rebounds", "points", "assists", "steals", "blocks")

#: Approximate 2016-17 per-game statistics (rebounds, points, assists,
#: steals, blocks) for notable players.
NBA_STARS: dict[str, tuple[float, float, float, float, float]] = {
    "Russell Westbrook": (10.7, 31.6, 10.4, 1.6, 0.4),
    "James Harden": (8.1, 29.1, 11.2, 1.5, 0.5),
    "Anthony Davis": (11.8, 28.0, 2.1, 1.3, 2.2),
    "DeMarcus Cousins": (11.0, 27.0, 4.6, 1.4, 1.3),
    "Hassan Whiteside": (14.1, 17.0, 0.7, 0.7, 2.1),
    "Andre Drummond": (13.8, 13.6, 1.1, 1.5, 1.1),
    "LeBron James": (8.6, 26.4, 8.7, 1.2, 0.6),
    "Kevin Durant": (8.3, 25.1, 4.8, 1.1, 1.6),
    "Kawhi Leonard": (5.8, 25.5, 3.5, 1.8, 0.7),
    "Giannis Antetokounmpo": (8.8, 22.9, 5.4, 1.6, 1.9),
    "Karl-Anthony Towns": (12.3, 25.1, 2.7, 0.7, 1.3),
    "Rudy Gobert": (12.8, 14.0, 1.2, 0.6, 2.6),
    "DeAndre Jordan": (13.8, 12.7, 1.2, 0.6, 1.7),
    "Isaiah Thomas": (2.7, 28.9, 5.9, 0.9, 0.2),
    "Stephen Curry": (4.5, 25.3, 6.6, 1.8, 0.2),
    "John Wall": (4.2, 23.1, 10.7, 2.0, 0.6),
    "Damian Lillard": (4.9, 27.0, 5.9, 0.9, 0.3),
    "Jimmy Butler": (6.2, 23.9, 5.5, 1.9, 0.4),
    "Kevin Love": (11.1, 19.0, 1.9, 0.9, 0.4),
    "Blake Griffin": (8.1, 21.6, 4.9, 0.9, 0.4),
    "Nikola Jokic": (9.8, 16.7, 4.9, 0.8, 0.8),
    "Paul George": (6.6, 23.7, 3.3, 1.6, 0.4),
    "Kyrie Irving": (3.2, 25.2, 5.8, 1.2, 0.3),
    "Klay Thompson": (3.7, 22.3, 2.1, 0.8, 0.5),
    "DeMar DeRozan": (5.2, 27.3, 3.9, 1.1, 0.2),
    "Marc Gasol": (6.3, 19.5, 4.6, 0.9, 1.3),
    "Dwight Howard": (12.7, 13.5, 1.4, 0.9, 1.2),
    "Gordon Hayward": (5.4, 21.9, 3.5, 1.0, 0.3),
    "Kemba Walker": (3.9, 23.2, 5.5, 1.1, 0.3),
    "Kyle Lowry": (4.8, 22.4, 7.0, 1.5, 0.3),
    "Draymond Green": (7.9, 10.2, 7.0, 2.0, 1.4),
    "Chris Paul": (5.0, 18.1, 9.2, 2.0, 0.1),
    "Mike Conley": (3.5, 20.5, 6.3, 1.3, 0.3),
    "Brook Lopez": (5.4, 20.5, 2.3, 0.5, 1.7),
    "Carmelo Anthony": (5.9, 22.4, 2.9, 0.8, 0.5),
    "Bradley Beal": (3.1, 23.1, 3.5, 1.1, 0.3),
    "Andre Iguodala": (4.0, 7.6, 3.4, 1.0, 0.5),
    "Al Horford": (6.8, 14.0, 5.0, 0.8, 1.3),
    "Paul Millsap": (7.7, 18.1, 3.7, 1.3, 0.9),
    "Otto Porter": (6.4, 13.4, 1.5, 1.5, 0.5),
}


def nba_star_dataset(columns=("rebounds", "points")) -> Dataset:
    """Dataset of the curated 2016-17 stars restricted to ``columns``.

    Parameters
    ----------
    columns:
        Statistic names (subset of :data:`NBA_STAR_COLUMNS`) in the desired
        attribute order.  The Figure 9(a) case study uses
        ``("rebounds", "points")``; Figure 9(b) adds ``"assists"``.
    """
    positions = [NBA_STAR_COLUMNS.index(column) for column in columns]
    labels = list(NBA_STARS)
    values = np.array([[NBA_STARS[name][pos] for pos in positions] for name in labels], dtype=float)
    return Dataset(values, labels)
