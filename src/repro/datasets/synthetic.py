"""Synthetic benchmark generators: Independent, Correlated, Anticorrelated.

These are the standard preference-query workloads of Börzsönyi et al. (the
skyline paper), which the UTK paper uses for its scalability experiments.
Attribute values lie in ``[0, 1]``.

* **IND** — attributes drawn independently and uniformly.
* **COR** — attributes positively correlated: records that are good in one
  dimension tend to be good in all (skylines/skybands are tiny).
* **ANTI** — attributes anticorrelated: records that are good in one
  dimension tend to be poor in the others (skylines/skybands are large).
"""

from __future__ import annotations

import numpy as np

from repro.core.records import Dataset
from repro.exceptions import InvalidDatasetError

#: Registry of distribution names accepted by :func:`synthetic_dataset`.
DISTRIBUTIONS = ("IND", "COR", "ANTI")


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def independent(cardinality: int, dimensionality: int, seed=0) -> np.ndarray:
    """Uniform, independent attributes in ``[0, 1]``."""
    if cardinality <= 0 or dimensionality < 2:
        raise InvalidDatasetError("need a positive cardinality and d >= 2")
    return _rng(seed).random((cardinality, dimensionality))


def correlated(cardinality: int, dimensionality: int, seed=0, spread: float = 0.12) -> np.ndarray:
    """Positively correlated attributes.

    Every record is a common base value (its overall quality) plus small
    per-attribute perturbations, mirroring the classic generator: records
    good in one dimension are good in all.
    """
    if cardinality <= 0 or dimensionality < 2:
        raise InvalidDatasetError("need a positive cardinality and d >= 2")
    rng = _rng(seed)
    base = rng.normal(loc=0.5, scale=0.18, size=(cardinality, 1))
    noise = rng.normal(scale=spread, size=(cardinality, dimensionality))
    return np.clip(base + noise, 0.0, 1.0)


def anticorrelated(
    cardinality: int, dimensionality: int, seed=0, spread: float = 0.25
) -> np.ndarray:
    """Anticorrelated attributes.

    Records lie close to the hyperplane ``sum(x) = d / 2`` with large
    variance across attributes: excelling in one dimension comes at the
    expense of the others, which maximizes skyline/skyband sizes.
    """
    if cardinality <= 0 or dimensionality < 2:
        raise InvalidDatasetError("need a positive cardinality and d >= 2")
    rng = _rng(seed)
    base = rng.normal(loc=0.5, scale=0.05, size=(cardinality, 1))
    offsets = rng.normal(scale=spread, size=(cardinality, dimensionality))
    offsets -= offsets.mean(axis=1, keepdims=True)  # trade-off across attributes
    return np.clip(base + offsets, 0.0, 1.0)


def synthetic_dataset(distribution: str, cardinality: int, dimensionality: int, seed=0) -> Dataset:
    """Build a :class:`~repro.core.records.Dataset` for a named distribution."""
    name = distribution.upper()
    if name == "IND":
        values = independent(cardinality, dimensionality, seed)
    elif name == "COR":
        values = correlated(cardinality, dimensionality, seed)
    elif name == "ANTI":
        values = anticorrelated(cardinality, dimensionality, seed)
    else:
        raise InvalidDatasetError(
            f"unknown distribution {distribution!r}; expected one of {DISTRIBUTIONS}"
        )
    return Dataset(values)
