"""Synthetic benchmark generators: Independent, Correlated, Anticorrelated.

These are the standard preference-query workloads of Börzsönyi et al. (the
skyline paper), which the UTK paper uses for its scalability experiments.
Attribute values lie in ``[0, 1]``.

* **IND** — attributes drawn independently and uniformly.
* **COR** — attributes positively correlated: records that are good in one
  dimension tend to be good in all (skylines/skybands are tiny).
* **ANTI** — attributes anticorrelated: records that are good in one
  dimension tend to be poor in the others (skylines/skybands are large).
* **CLUS** — attributes clustered around a handful of Gaussian centres, the
  workload of real catalogues (hotels group by class, players by role):
  query cost depends on where the region's score gradient points relative
  to the nearest cluster.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import Dataset
from repro.exceptions import InvalidDatasetError

#: Registry of distribution names accepted by :func:`synthetic_dataset`.
DISTRIBUTIONS = ("IND", "COR", "ANTI", "CLUS")


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def independent(cardinality: int, dimensionality: int, seed=0) -> np.ndarray:
    """Uniform, independent attributes in ``[0, 1]``."""
    if cardinality <= 0 or dimensionality < 2:
        raise InvalidDatasetError("need a positive cardinality and d >= 2")
    return _rng(seed).random((cardinality, dimensionality))


def correlated(cardinality: int, dimensionality: int, seed=0, spread: float = 0.12) -> np.ndarray:
    """Positively correlated attributes.

    Every record is a common base value (its overall quality) plus small
    per-attribute perturbations, mirroring the classic generator: records
    good in one dimension are good in all.
    """
    if cardinality <= 0 or dimensionality < 2:
        raise InvalidDatasetError("need a positive cardinality and d >= 2")
    rng = _rng(seed)
    base = rng.normal(loc=0.5, scale=0.18, size=(cardinality, 1))
    noise = rng.normal(scale=spread, size=(cardinality, dimensionality))
    return np.clip(base + noise, 0.0, 1.0)


def anticorrelated(
    cardinality: int, dimensionality: int, seed=0, spread: float = 0.25
) -> np.ndarray:
    """Anticorrelated attributes.

    Records lie close to the hyperplane ``sum(x) = d / 2`` with large
    variance across attributes: excelling in one dimension comes at the
    expense of the others, which maximizes skyline/skyband sizes.
    """
    if cardinality <= 0 or dimensionality < 2:
        raise InvalidDatasetError("need a positive cardinality and d >= 2")
    rng = _rng(seed)
    base = rng.normal(loc=0.5, scale=0.05, size=(cardinality, 1))
    offsets = rng.normal(scale=spread, size=(cardinality, dimensionality))
    offsets -= offsets.mean(axis=1, keepdims=True)  # trade-off across attributes
    return np.clip(base + offsets, 0.0, 1.0)


def clustered(
    cardinality: int,
    dimensionality: int,
    seed=0,
    *,
    clusters: int = 5,
    spread: float = 0.06,
) -> np.ndarray:
    """Clustered attributes: Gaussian blobs around random centres.

    Records are assigned to one of ``clusters`` centres (uniformly placed in
    ``[0.15, 0.85]^d`` so the blobs rarely clip against the domain boundary)
    and perturbed by isotropic noise of scale ``spread``.  Skyband sizes sit
    between COR and ANTI, but — unlike either — vary sharply with the query
    direction, which is what makes this a distinct scenario axis.
    """
    if cardinality <= 0 or dimensionality < 2:
        raise InvalidDatasetError("need a positive cardinality and d >= 2")
    if clusters <= 0:
        raise InvalidDatasetError("need at least one cluster")
    rng = _rng(seed)
    centres = rng.uniform(0.15, 0.85, size=(clusters, dimensionality))
    assignment = rng.integers(clusters, size=cardinality)
    noise = rng.normal(scale=spread, size=(cardinality, dimensionality))
    return np.clip(centres[assignment] + noise, 0.0, 1.0)


# -------------------------------------------------------------- update streams
def update_stream(
    initial,
    count: int,
    *,
    insert_prob: float = 0.2,
    delete_prob: float = 0.2,
    k_choices=(1, 2, 5),
    zipf_exponent: float = 1.2,
    sigma: float = 0.08,
    hot_regions: int = 3,
    hot_prob: float = 0.65,
    churn_exponent: float = 1.1,
    jitter: float = 0.05,
    seed=0,
) -> list[dict]:
    """A reproducible interleaved stream of insert/delete/query events.

    This is the workload of the dynamic-data serving path: a dataset under
    churn while queries keep arriving.  Each event is a JSON-able mapping in
    the shape :func:`repro.dynamic.serve_events` and the ``repro stream`` CLI
    consume: ``{"op": "insert", "values": [...]}``,
    ``{"op": "delete", "id": ...}`` or ``{"op": "query", "lower": [...],
    "upper": [...], "k": ..., "version": ...}``.

    Parameters
    ----------
    initial:
        The dataset the stream starts from (a
        :class:`~repro.core.records.Dataset` or an ``(n, d)`` matrix); its
        records are assumed to hold ids ``0..n-1``, as a
        :class:`~repro.dynamic.engine.DynamicUTKEngine` assigns them.
    count:
        Number of events to generate.
    insert_prob, delete_prob:
        Update mix; the remainder are queries.  A delete drawn while fewer
        than two records are live degrades to an insert.
    k_choices, zipf_exponent:
        Query ``k`` values with Zipf-distributed popularity (as in
        :func:`repro.bench.workloads.engine_query_stream`).
    sigma, hot_regions, hot_prob:
        Query regions are hyper-cubes of side ``sigma``; with probability
        ``hot_prob`` a query revisits one of ``hot_regions`` fixed hot cubes
        (the cache-friendly serving pattern), otherwise a fresh random cube.
    churn_exponent:
        Skew of the key churn: deletes (and insert templates) pick live
        records rank-weighted by recency, ``1 / rank ** churn_exponent`` with
        the newest record at rank 1 — hot keys churn the most, as in real
        update streams.
    jitter:
        Inserted records perturb a recency-sampled template row by this
        Gaussian spread (clipped to ``[0, 1]``), so the data distribution
        drifts slowly instead of resetting.
    """
    # Imported lazily: repro.bench pulls in the experiment generators, which
    # in turn import this module.
    from repro.bench.workloads import _random_cube, zipfian_k

    if count < 0:
        raise InvalidDatasetError("count must be non-negative")
    if insert_prob < 0 or delete_prob < 0 or insert_prob + delete_prob > 1.0:
        raise InvalidDatasetError("insert_prob/delete_prob must be a sub-probability pair")
    values = initial.values if isinstance(initial, Dataset) else np.asarray(initial, dtype=float)
    if values.ndim != 2:
        raise InvalidDatasetError("initial dataset must be an (n, d) matrix")
    n, d = values.shape
    if n == 0 or d < 2:
        raise InvalidDatasetError("need a non-empty initial dataset with d >= 2")
    rng = _rng(seed)
    corners = [_random_cube(d - 1, sigma, rng) for _ in range(max(1, hot_regions))]

    rows = {i: values[i] for i in range(n)}
    live: list[int] = list(range(n))  # insertion order: newest last
    next_id = n

    def churn_pick() -> int:
        """Position into ``live``, recency-skewed (newest = rank 1)."""
        ranks = np.arange(1, len(live) + 1, dtype=float)
        weights = ranks ** (-float(churn_exponent))
        probabilities = weights / weights.sum()
        rank = int(rng.choice(len(live), p=probabilities))
        return len(live) - 1 - rank

    events: list[dict] = []
    for _ in range(count):
        roll = rng.random()
        if roll < insert_prob or (roll < insert_prob + delete_prob and len(live) < 2):
            template = rows[live[churn_pick()]]
            row = np.clip(template + rng.normal(scale=jitter, size=d), 0.0, 1.0)
            rows[next_id] = row
            live.append(next_id)
            events.append({"op": "insert", "values": [float(v) for v in row]})
            next_id += 1
        elif roll < insert_prob + delete_prob:
            position = churn_pick()
            victim = live.pop(position)
            rows.pop(victim)
            events.append({"op": "delete", "id": int(victim)})
        else:
            if rng.random() < hot_prob:
                lower, upper = corners[int(rng.integers(len(corners)))]
            else:
                lower, upper = _random_cube(d - 1, sigma, rng)
            events.append(
                {
                    "op": "query",
                    "lower": [float(v) for v in lower],
                    "upper": [float(v) for v in upper],
                    "k": zipfian_k(k_choices, zipf_exponent, rng),
                    "version": str(rng.choice(["utk1", "utk2", "both"], p=[0.5, 0.3, 0.2])),
                }
            )
    return events


def _generate(distribution: str, cardinality: int, dimensionality: int, seed) -> np.ndarray:
    name = distribution.upper()
    if name == "IND":
        return independent(cardinality, dimensionality, seed)
    if name == "COR":
        return correlated(cardinality, dimensionality, seed)
    if name == "ANTI":
        return anticorrelated(cardinality, dimensionality, seed)
    if name == "CLUS":
        return clustered(cardinality, dimensionality, seed)
    raise InvalidDatasetError(
        f"unknown distribution {distribution!r}; expected one of {DISTRIBUTIONS}"
    )


def synthetic_dataset(distribution: str, cardinality: int, dimensionality: int, seed=0) -> Dataset:
    """Build a :class:`~repro.core.records.Dataset` for a named distribution."""
    return Dataset(_generate(distribution, cardinality, dimensionality, seed))


def synthetic_chunks(
    distribution: str,
    cardinality: int,
    dimensionality: int,
    seed=0,
    *,
    chunk_rows: int = 1 << 18,
):
    """Yield the dataset as ``(n_i, d)`` chunks without ever holding all of it.

    Each chunk draws from its own ``default_rng([seed, chunk_index])``
    stream, so the sequence is deterministic for a given ``(distribution,
    cardinality, dimensionality, seed, chunk_rows)`` tuple and chunks can be
    regenerated independently — the 10M-record colstore benchmark builds
    its store from this and re-derives reference chunks for verification.
    Note the per-chunk streams make the result differ from the monolithic
    :func:`synthetic_dataset` draw, and CLUS draws chunk-local cluster
    centres (each chunk is its own blob family).
    """
    if cardinality <= 0 or dimensionality < 2:
        raise InvalidDatasetError("need a positive cardinality and d >= 2")
    if chunk_rows <= 0:
        raise InvalidDatasetError("chunk_rows must be positive")
    # Validate the name once up front, before the first chunk is drawn.
    if distribution.upper() not in DISTRIBUTIONS:
        raise InvalidDatasetError(
            f"unknown distribution {distribution!r}; expected one of {DISTRIBUTIONS}"
        )
    emitted = 0
    index = 0
    while emitted < cardinality:
        rows = min(chunk_rows, cardinality - emitted)
        rng = np.random.default_rng([seed, index])
        yield _generate(distribution, rows, dimensionality, rng)
        emitted += rows
        index += 1
