"""Simulated substitutes for the paper's real datasets.

The paper evaluates on three real datasets that are not redistributable here:

* **HOTEL** — 418,843 hotels with 4 rating attributes (hotels-base.com);
* **HOUSE** — 315,265 households with 6 expenditure attributes (ipums.org);
* **NBA** — 21,960 player-season rows with 8 per-game statistics
  (basketball-reference.com).

The generators below reproduce what actually drives UTK cost — cardinality,
dimensionality and the correlation structure between attributes — so the
benchmark *shapes* carry over even though individual values are synthetic.
Default cardinalities are scaled down (the library is pure Python); pass the
paper's cardinalities explicitly to reproduce the full-size workloads.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import Dataset
from repro.exceptions import InvalidDatasetError

#: Cardinalities and dimensionalities of the original datasets.
PAPER_SHAPES = {
    "HOTEL": (418_843, 4),
    "HOUSE": (315_265, 6),
    "NBA": (21_960, 8),
}

#: Scaled-down default cardinalities used by the benchmark harness.
DEFAULT_CARDINALITIES = {
    "HOTEL": 8_000,
    "HOUSE": 6_000,
    "NBA": 4_000,
}


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def _correlated_block(
    rng: np.random.Generator,
    cardinality: int,
    dimensionality: int,
    correlation: float,
    scale: float,
) -> np.ndarray:
    """Gaussian-copula-style block with a common latent quality factor."""
    latent = rng.normal(size=(cardinality, 1))
    noise = rng.normal(size=(cardinality, dimensionality))
    mixed = correlation * latent + np.sqrt(max(0.0, 1.0 - correlation ** 2)) * noise
    # Map to [0, scale] through a logistic squash for bounded, rating-like values.
    return scale / (1.0 + np.exp(-mixed))


def hotel_dataset(cardinality: int | None = None, seed=0) -> Dataset:
    """HOTEL substitute: 4 mildly correlated guest-rating attributes in [0, 10].

    Hotel ratings (service, cleanliness, location, value) are positively but
    not strongly correlated — good hotels tend to rate well across the board,
    with location the least correlated attribute.
    """
    if cardinality is None:
        cardinality = DEFAULT_CARDINALITIES["HOTEL"]
    if cardinality <= 0:
        raise InvalidDatasetError("cardinality must be positive")
    rng = _rng(seed)
    core = _correlated_block(rng, cardinality, 3, correlation=0.55, scale=10.0)
    location = rng.uniform(0.0, 10.0, size=(cardinality, 1))
    values = np.hstack([core, location])
    return Dataset(values)


def house_dataset(cardinality: int | None = None, seed=0) -> Dataset:
    """HOUSE substitute: 6 expenditure attributes with mixed correlations.

    Household expenditures mix positively correlated groups (overall income
    level) with trade-offs between categories, which places the dataset
    between IND and ANTI in terms of skyband size — matching the paper's
    observation that HOUSE is harder than HOTEL despite similar cardinality.
    """
    if cardinality is None:
        cardinality = DEFAULT_CARDINALITIES["HOUSE"]
    if cardinality <= 0:
        raise InvalidDatasetError("cardinality must be positive")
    rng = _rng(seed)
    income = rng.lognormal(mean=0.0, sigma=0.4, size=(cardinality, 1))
    shares = rng.dirichlet(np.ones(6) * 1.2, size=cardinality)  # budget trade-off
    values = income * shares
    # Normalize every attribute to [0, 1] so weights are comparable.
    values = values / values.max(axis=0, keepdims=True)
    return Dataset(values)


def nba_league_dataset(cardinality: int | None = None, seed=0) -> Dataset:
    """NBA substitute: 8 positively correlated per-game statistics.

    Per-game box-score statistics (points, rebounds, assists, steals, blocks,
    field goals, free throws, minutes) correlate through playing time and
    overall player quality, with role-dependent trade-offs (big men rebound
    and block, guards assist and score from range).
    """
    if cardinality is None:
        cardinality = DEFAULT_CARDINALITIES["NBA"]
    if cardinality <= 0:
        raise InvalidDatasetError("cardinality must be positive")
    rng = _rng(seed)
    minutes = rng.beta(2.0, 2.5, size=(cardinality, 1))            # playing time
    role = rng.random((cardinality, 1))                            # 0 = guard, 1 = big
    quality = rng.beta(2.0, 5.0, size=(cardinality, 1))            # star factor
    noise = rng.normal(scale=0.08, size=(cardinality, 8))
    points = minutes * (0.5 + 0.8 * quality)
    rebounds = minutes * (0.25 + 0.7 * role + 0.3 * quality)
    assists = minutes * (0.25 + 0.7 * (1.0 - role) + 0.3 * quality)
    steals = minutes * (0.3 + 0.4 * (1.0 - role) + 0.2 * quality)
    blocks = minutes * (0.2 + 0.7 * role + 0.2 * quality)
    field_goals = points * (0.8 + 0.2 * role)
    free_throws = points * (0.6 + 0.4 * quality)
    values = np.hstack(
        [points, rebounds, assists, steals, blocks, field_goals, free_throws, minutes]
    ) + noise
    values = np.clip(values, 0.0, None)
    values = values / values.max(axis=0, keepdims=True)
    return Dataset(values)


def real_dataset(name: str, cardinality: int | None = None, seed=0) -> Dataset:
    """Dispatch helper used by the benchmark harness (``HOTEL``/``HOUSE``/``NBA``)."""
    key = name.upper()
    if key == "HOTEL":
        return hotel_dataset(cardinality, seed)
    if key == "HOUSE":
        return house_dataset(cardinality, seed)
    if key == "NBA":
        return nba_league_dataset(cardinality, seed)
    raise InvalidDatasetError(f"unknown real dataset {name!r}")
