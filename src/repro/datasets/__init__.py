"""Workload datasets.

Synthetic preference-query benchmarks (Independent / Correlated /
Anticorrelated) and simulated substitutes for the paper's real datasets
(HOTEL, HOUSE, NBA).  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.synthetic import (
    independent,
    correlated,
    anticorrelated,
    synthetic_chunks,
    synthetic_dataset,
    update_stream,
)
from repro.datasets.real import hotel_dataset, house_dataset, nba_league_dataset
from repro.datasets.nba import nba_star_dataset, NBA_STAR_COLUMNS

__all__ = [
    "independent",
    "correlated",
    "anticorrelated",
    "synthetic_chunks",
    "synthetic_dataset",
    "update_stream",
    "hotel_dataset",
    "house_dataset",
    "nba_league_dataset",
    "nba_star_dataset",
    "NBA_STAR_COLUMNS",
]
