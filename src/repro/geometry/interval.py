"""Exact one-dimensional interval arithmetic.

When the data dimensionality is ``d = 2`` the preference domain collapses to
a segment of the real line and every arrangement cell is an interval.  This
module provides an exact, LP-free representation used by the fast paths and
by the d=2 correctness oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` on the real line.

    The interval is considered *empty* when ``lo > hi`` and *degenerate*
    (lower-dimensional) when ``hi - lo`` does not exceed the tolerance used
    by the caller.
    """

    lo: float
    hi: float

    @property
    def is_empty(self) -> bool:
        """Whether the interval contains no point."""
        return self.lo > self.hi

    @property
    def width(self) -> float:
        """Length of the interval (negative when empty)."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """Centre of the interval."""
        return (self.lo + self.hi) / 2.0

    def contains(self, x: float, tol: float = 0.0) -> bool:
        """Whether ``x`` lies inside the interval (within ``tol``)."""
        return (self.lo - tol) <= x <= (self.hi + tol)

    def intersect(self, other: "Interval") -> "Interval":
        """Intersection with another interval."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def clip_halfline(self, coeff: float, rhs: float) -> "Interval":
        """Intersect with the half-line ``coeff * x <= rhs``.

        A zero coefficient leaves the interval unchanged when the constraint
        is satisfiable (``rhs >= 0``) and empties it otherwise.
        """
        if coeff > 0.0:
            return Interval(self.lo, min(self.hi, rhs / coeff))
        if coeff < 0.0:
            return Interval(max(self.lo, rhs / coeff), self.hi)
        if rhs >= 0.0:
            return Interval(self.lo, self.hi)
        return Interval(1.0, 0.0)

    def sample(self, count: int) -> np.ndarray:
        """Evenly spaced points strictly inside the interval."""
        if self.is_empty or count <= 0:
            return np.zeros(0, dtype=float)
        return np.linspace(self.lo, self.hi, count + 2)[1:-1]

    @staticmethod
    def from_constraints(coeffs, rhs) -> "Interval":
        """Build the interval ``{x : coeffs[i] * x <= rhs[i] for all i}``.

        Starts from the whole real line, so callers should include their own
        bounding constraints.
        """
        interval = Interval(-np.inf, np.inf)
        for coeff, bound in zip(
            np.asarray(coeffs, float).reshape(-1), np.asarray(rhs, float).reshape(-1)
        ):
            interval = interval.clip_halfline(float(coeff), float(bound))
            if interval.is_empty:
                break
        return interval
