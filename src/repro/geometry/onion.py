"""Onion layers (iterated upper convex hulls).

The onion technique of Chang et al. pre-computes convex-hull layers: layer 1
is the upper hull of the dataset, layer ``i`` is the upper hull once the first
``i - 1`` layers are removed.  The first ``k`` layers form a superset of every
possible top-k result (for non-negative weights), and the paper's ON baseline
uses them as its filtering step.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.convex_hull import upper_hull_members


def onion_layers(points: np.ndarray, num_layers: int, *, method: str = "lp") -> list[np.ndarray]:
    """Compute the first ``num_layers`` onion layers of ``points``.

    Parameters
    ----------
    points:
        ``(n, d)`` array of records (higher attribute values preferred).
    num_layers:
        Number of layers to peel (the ``k`` of the top-k query).
    method:
        Hull-membership method forwarded to
        :func:`repro.geometry.convex_hull.upper_hull_members`.

    Returns
    -------
    list of int arrays
        ``layers[i]`` holds the original indices of the records in layer
        ``i + 1``.  Fewer than ``num_layers`` layers are returned when the
        dataset is exhausted first.
    """
    points = np.asarray(points, dtype=float)
    if num_layers <= 0:
        return []
    remaining = np.arange(points.shape[0], dtype=int)
    layers: list[np.ndarray] = []
    for _ in range(num_layers):
        if remaining.size == 0:
            break
        local = upper_hull_members(points[remaining], method=method)
        layer = remaining[local]
        layers.append(np.sort(layer))
        keep = np.ones(remaining.size, dtype=bool)
        keep[local] = False
        remaining = remaining[keep]
    return layers


def onion_member_indices(points: np.ndarray, num_layers: int, *, method: str = "lp") -> np.ndarray:
    """Union of the first ``num_layers`` onion layers, as sorted original indices."""
    layers = onion_layers(points, num_layers, method=method)
    if not layers:
        return np.zeros(0, dtype=int)
    return np.unique(np.concatenate(layers))
