"""Computational-geometry substrate used by the UTK algorithms.

The subpackage provides a linear-programming toolkit over H-polytopes
(:mod:`repro.geometry.linear_programming`), incremental V-representation
maintenance for arrangement cells (:mod:`repro.geometry.vertex_clip`),
geometry telemetry counters (:mod:`repro.geometry.telemetry`), exact
one-dimensional interval helpers (:mod:`repro.geometry.interval`),
convex-hull utilities (:mod:`repro.geometry.convex_hull`) and onion-layer
computation (:mod:`repro.geometry.onion`).
"""

from repro.geometry.linear_programming import (
    LPResult,
    chebyshev_center,
    feasible_point,
    has_interior,
    maximize,
    minimize,
    polytope_vertices,
)
from repro.obs.geometry import COUNTERS, GeometryCounters
from repro.geometry.vertex_clip import VertexCache, build_cache, clip
from repro.geometry.interval import Interval
from repro.geometry.convex_hull import (
    hull_vertices,
    upper_hull_members,
    is_upper_hull_member,
)
from repro.geometry.onion import onion_layers

__all__ = [
    "LPResult",
    "chebyshev_center",
    "feasible_point",
    "has_interior",
    "maximize",
    "minimize",
    "polytope_vertices",
    "COUNTERS",
    "GeometryCounters",
    "VertexCache",
    "build_cache",
    "clip",
    "Interval",
    "hull_vertices",
    "upper_hull_members",
    "is_upper_hull_member",
    "onion_layers",
]
