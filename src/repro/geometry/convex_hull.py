"""Convex-hull utilities for score-based ranking.

For top-k processing with non-negative weights only the part of the convex
hull facing the *top corner* of the data domain matters: a record can rank
first for some weight vector exactly when it lies on a hull facet whose
outward normal has non-negative components (the "upper hull").  This module
offers two interchangeable ways of identifying such records:

* a robust per-record linear-programming membership test (default), and
* a qhull-based test via :class:`scipy.spatial.ConvexHull` for callers that
  prefer the classical computational-geometry route.

The onion-layer computation in :mod:`repro.geometry.onion` builds on these
primitives.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.linear_programming import maximize

#: Margin below which a record is not considered a strict upper-hull vertex.
UPPER_HULL_TOL = 1e-9


def _score_difference_rows(points: np.ndarray, idx: int) -> tuple[np.ndarray, np.ndarray]:
    """Linear forms of ``S(points[idx]) - S(q)`` over the reduced weight space.

    Returns ``(coeffs, consts)`` such that for reduced weights ``u`` the score
    difference against competitor ``j`` equals ``coeffs[j] @ u + consts[j]``.
    """
    p = points[idx]
    others = np.delete(points, idx, axis=0)
    diff = p - others                              # (m, d)
    consts = diff[:, -1]
    coeffs = diff[:, :-1] - diff[:, -1:][..., 0].reshape(-1, 1)
    return coeffs, consts


def is_upper_hull_member(points: np.ndarray, idx: int, tol: float = UPPER_HULL_TOL) -> bool:
    """Whether record ``idx`` can rank first for some non-negative weight vector.

    The test maximizes the minimum score margin of the record over all
    competitors, with weights constrained to the probability simplex.  A
    strictly positive optimum means the record is a vertex of the upper hull.
    """
    points = np.asarray(points, dtype=float)
    n, d = points.shape
    if n == 1:
        return True
    coeffs, consts = _score_difference_rows(points, idx)
    dim = d - 1
    # Variables: reduced weights u (dim of them) followed by the margin delta.
    # Constraints: -coeffs @ u + delta <= consts   (margin below every difference)
    #              -u_i <= 0, sum(u) <= 1          (simplex)
    n_comp = coeffs.shape[0]
    a_margin = np.hstack([-coeffs, np.ones((n_comp, 1))])
    b_margin = consts
    a_simplex = np.vstack([
        np.hstack([-np.eye(dim), np.zeros((dim, 1))]),
        np.hstack([np.ones((1, dim)), np.zeros((1, 1))]),
    ])
    b_simplex = np.concatenate([np.zeros(dim), [1.0]])
    # Keep delta bounded so the LP cannot be unbounded on degenerate input.
    a_cap = np.zeros((1, dim + 1))
    a_cap[0, -1] = 1.0
    scale = float(np.abs(points).max()) + 1.0
    a_ub = np.vstack([a_margin, a_simplex, a_cap])
    b_ub = np.concatenate([b_margin, b_simplex, [scale]])
    objective = np.zeros(dim + 1)
    objective[-1] = 1.0
    result = maximize(objective, a_ub, b_ub)
    if not result.is_optimal:
        raise GeometryError("upper-hull membership LP did not solve")
    return result.value > tol


def upper_hull_members(
    points: np.ndarray, *, method: str = "lp", tol: float = UPPER_HULL_TOL
) -> np.ndarray:
    """Indices of records on the upper convex hull (possible top-1 records).

    Parameters
    ----------
    points:
        ``(n, d)`` array of records.
    method:
        ``"lp"`` (default) for the per-record LP test or ``"qhull"`` for the
        facet-normal filter over :class:`scipy.spatial.ConvexHull`.  The qhull
        route silently falls back to the LP route on degenerate input.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if n == 0:
        return np.zeros(0, dtype=int)
    if method == "qhull":
        indices = _upper_hull_via_qhull(points, tol)
        if indices is not None:
            return indices
    members = [i for i in range(n) if is_upper_hull_member(points, i, tol=tol)]
    return np.asarray(members, dtype=int)


def _upper_hull_via_qhull(points: np.ndarray, tol: float) -> np.ndarray | None:
    """qhull-based upper-hull members, or ``None`` when qhull cannot be used."""
    from scipy.spatial import ConvexHull, QhullError

    n, d = points.shape
    if n <= d + 1:
        return None
    try:
        hull = ConvexHull(points)
    except (QhullError, ValueError):
        return None
    members: set[int] = set()
    normals = hull.equations[:, :-1]
    for facet, normal in zip(hull.simplices, normals):
        if np.all(normal >= -tol):
            members.update(int(v) for v in facet)
    if not members:
        return np.zeros(0, dtype=int)
    return np.asarray(sorted(members), dtype=int)


def hull_vertices(points: np.ndarray) -> np.ndarray:
    """Indices of all convex-hull vertices of ``points``.

    Falls back to returning every index when qhull cannot process the input
    (too few points or degenerate configurations), which is always a safe
    superset for filtering purposes.
    """
    from scipy.spatial import ConvexHull, QhullError

    points = np.asarray(points, dtype=float)
    n, d = points.shape
    if n <= d + 1:
        return np.arange(n, dtype=int)
    try:
        hull = ConvexHull(points)
    except (QhullError, ValueError):
        return np.arange(n, dtype=int)
    return np.asarray(sorted(set(int(v) for v in hull.vertices)), dtype=int)
