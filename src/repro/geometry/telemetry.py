"""Deprecated shim — the geometry counters live in :mod:`repro.obs.geometry`.

This module used to define the thread-local :class:`GeometryCounters`; the
observability layer absorbed them (they are the always-on substrate the
registry's ``repro_geometry_calls_total`` series is fed from).  Importing
``COUNTERS``/``GeometryCounters`` from here keeps working — existing callers
and the ``--stats`` output are unchanged — but new code should import from
:mod:`repro.obs` directly.
"""

from __future__ import annotations

from repro.obs.geometry import COUNTERS, GeometryCounters

__all__ = ["COUNTERS", "GeometryCounters"]
