"""Incremental V-representation maintenance for arrangement cells.

The RSA/JAA refinement spends nearly all of its time asking geometric
questions about arrangement cells — which side of a half-space, interior
point, drill direction, linear range.  In H-representation each question is a
linear program whose vertex-enumeration cost grows as ``C(m, d)`` with the
accumulated constraint count ``m``.  This module maintains the *exact*
V-representation instead: a cell's vertices are enumerated once at the root,
and every child derives its vertex set from the parent's by **clipping** with
the cutting half-space — keep the feasible side and generate the cut-plane
vertices on crossing edges — the classic incremental construction behind
Clarkson-style and double-description half-space intersection.  Every
geometric primitive then becomes a dot product over a small cached array.

Vertices carry their *tight sets* (which constraint rows pass through them).
Two vertices span an edge exactly when they share at least ``dim - 1`` tight
rows, which identifies crossing edges without any combinatorial search.
Tight sets are propagated symbolically through clips (only the new row's
incidence is measured numerically), so repeated clipping cannot drift a
genuine edge out of recognition.  In degenerate (non-simple) polytopes the
shared-tight test may also connect two non-adjacent vertices; the generated
point then lies on a face rather than at a corner, which is harmless — linear
minima/maxima and affine ranks are unchanged by extra points inside the
convex hull, and the centroid (though re-weighted by them) stays strictly
interior, which is all its callers rely on.  Rows that end up with no tight vertex are provably
redundant for the cell (and, since children only shrink, for all its
descendants) and are pruned, keeping any residual LP fallback small.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.linear_programming import polytope_vertices
from repro.obs.geometry import COUNTERS

#: Base tolerance for tight-row incidence and clip side decisions, scaled per
#: row by ``1 + |b| + ||a||`` exactly like the feasibility slack of the
#: vertex enumeration in :mod:`repro.geometry.linear_programming`.
CLIP_TOL = 1e-9

#: Decimals used to merge duplicate vertices (matches ``polytope_vertices``).
DEDUP_DECIMALS = 12

#: Ceiling on cached vertices per cell; a clip that would exceed it reports
#: failure and the cell falls back to the H-representation (LP) path.
MAX_VERTICES = 4096


class VertexCache:
    """Exact V-representation of one cell polytope.

    Attributes
    ----------
    vertices:
        ``(v, dim)`` vertex array.  In degenerate polytopes it may also hold
        a few points interior to faces (see the module docstring); bounds and
        ranks are unaffected and the centroid stays interior.
    tight:
        ``(v, m)`` boolean incidence between vertices and active rows.
    active_a, active_b:
        The non-redundant constraint rows ``active_a @ x <= active_b`` — the
        subset of the cell's H-representation with at least one tight vertex.
    """

    __slots__ = ("vertices", "tight", "active_a", "active_b")

    def __init__(self, vertices: np.ndarray, tight: np.ndarray,
                 active_a: np.ndarray, active_b: np.ndarray):
        self.vertices = vertices
        self.tight = tight
        self.active_a = active_a
        self.active_b = active_b

    @property
    def dimension(self) -> int:
        """Dimensionality of the ambient (preference) space."""
        return self.vertices.shape[1]

    @property
    def is_empty(self) -> bool:
        """Whether the polytope has no feasible vertex (certifies emptiness)."""
        return self.vertices.shape[0] == 0

    # ------------------------------------------------------------- primitives
    def linear_bounds(self, coef) -> tuple[float, float]:
        """Minimum and maximum of ``coef @ x`` over the polytope.

        The optimum of a linear function over a bounded polytope is attained
        at a vertex, so this is exact.  Empty polytopes yield ``(nan, nan)``,
        mirroring the infeasible-LP convention of :meth:`Cell.linear_range`.
        """
        if self.is_empty:
            return np.nan, np.nan
        values = self.vertices @ np.asarray(coef, dtype=float).reshape(-1)
        return float(values.min()), float(values.max())

    def centroid(self) -> np.ndarray:
        """Vertex centroid — strictly interior for full-dimensional cells."""
        return self.vertices.mean(axis=0)

    def min_width(self) -> float:
        """Smallest singular value of the centred vertex set.

        A width proxy that never under-reports: along any direction the
        centred projections reach at least half the polytope's extent, so the
        smallest singular value is always >= the inscribed-ball radius.
        ``0.0`` for vertex sets too small to span the space.
        """
        count = self.vertices.shape[0]
        if count < 2:
            return 0.0
        centered = self.vertices - self.vertices.mean(axis=0)
        singular = np.linalg.svd(centered, compute_uv=False)
        if singular.shape[0] < self.dimension:
            return 0.0
        return float(singular[-1])

    def is_full_dimensional(self, tol: float) -> bool | None:
        """Affine-rank/width test against the Chebyshev criterion ``r > tol``.

        The smallest singular value ``s`` brackets the inscribed-ball radius
        ``r`` from both sides: ``s >= r`` always (along any direction the
        centred projections reach the polytope's half-extent), and by
        Steinhagen's inequality ``r >= s / (2 * sqrt(d * v))`` (half-extent
        ``>= s / sqrt(v)``, minimal width ``>= 2 * r * sqrt(d)`` up to the
        dimensional constant).  So ``s <= tol`` certifies *not* full-
        dimensional, ``s`` clearing the Steinhagen bound certifies full-
        dimensional, and the narrow band in between returns ``None`` — the
        caller resolves it with the exact (pruned-row) Chebyshev LP, keeping
        the verdict identical to the LP path even on degenerate slivers.
        """
        count = self.vertices.shape[0]
        if count <= self.dimension:
            return False
        width = self.min_width()
        if width <= tol:
            return False
        if width > tol * 2.0 * math.sqrt(self.dimension * count):
            return True
        return None


def _row_tolerances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row incidence tolerance, scaled like the enumeration slack."""
    return CLIP_TOL * (1.0 + np.abs(b) + np.linalg.norm(a, axis=1))


def _empty_cache(dim: int) -> VertexCache:
    return VertexCache(
        np.zeros((0, dim), dtype=float),
        np.zeros((0, 0), dtype=bool),
        np.zeros((0, dim), dtype=float),
        np.zeros(0, dtype=float),
    )


def _pruned(vertices: np.ndarray, tight: np.ndarray,
            a: np.ndarray, b: np.ndarray) -> VertexCache:
    """Drop rows with no tight vertex — they are redundant for the polytope."""
    keep = tight.any(axis=0)
    if keep.all():
        return VertexCache(vertices, tight, a, b)
    return VertexCache(vertices, tight[:, keep], a[keep], b[keep])


def build_cache(a_ub, b_ub, *, vertices=None) -> VertexCache | None:
    """V-representation of ``{x : a_ub x <= b_ub}`` built from scratch.

    ``vertices`` seeds the cache with a known vertex set (e.g. the query
    region's corners, or :func:`repro.geometry.linear_programming.polytope_vertices`
    output preserved across region bisections); otherwise the vertex
    enumeration runs here.  Returns ``None`` when the enumeration is not
    applicable — the caller stays on the LP path.
    """
    a = np.asarray(a_ub, dtype=float)
    b = np.asarray(b_ub, dtype=float).reshape(-1)
    if vertices is None:
        COUNTERS.enumeration_calls += 1
        vertices = polytope_vertices(a, b)
        if vertices is None:
            return None
    else:
        vertices = np.asarray(vertices, dtype=float)
        if vertices.shape[0]:
            _, unique = np.unique(np.round(vertices, DEDUP_DECIMALS), axis=0, return_index=True)
            vertices = vertices[np.sort(unique)]
    if vertices.shape[0] == 0:
        return _empty_cache(a.shape[1])
    if vertices.shape[0] > MAX_VERTICES:
        return None
    slack = np.abs(vertices @ a.T - b[None, :])
    tight = slack <= _row_tolerances(a, b)[None, :]
    return _pruned(vertices, tight, a, b)


def clip(cache: VertexCache, row, rhs: float) -> VertexCache | None:
    """Child cache for ``cache ∩ {row @ x <= rhs}``.

    Keeps the feasible-side vertices and generates the cut-plane vertices on
    crossing edges (pairs of strictly-inside / strictly-outside vertices
    sharing at least ``dim - 1`` tight rows).  Returns the parent unchanged
    when the cut is redundant, an empty cache when nothing survives, and
    ``None`` when the clip is degenerate within tolerance (no crossing edge
    identifiable, or the vertex budget would be exceeded) — the caller then
    falls back to from-scratch enumeration or the LP path.
    """
    COUNTERS.vertex_clip_calls += 1
    vertices = cache.vertices
    dim = cache.dimension
    if vertices.shape[0] == 0:
        return cache
    row = np.asarray(row, dtype=float).reshape(-1)
    rhs = float(rhs)
    tol = CLIP_TOL * (1.0 + abs(rhs) + float(np.linalg.norm(row)))
    slack = vertices @ row - rhs
    outside = slack > tol
    if not outside.any():
        # Redundant cut: the child polytope is the parent — the new row gains
        # no tight vertex, so pruning it away is exactly "don't add it".
        return cache
    keep = ~outside
    if not keep.any():
        return _empty_cache(dim)
    inside = slack < -tol
    in_idx = np.nonzero(inside)[0]
    out_idx = np.nonzero(outside)[0]

    on_plane = keep & ~inside
    piece_vertices = [vertices[keep]]
    piece_tight = [np.hstack([cache.tight[keep], on_plane[keep][:, None]])]
    if in_idx.size:
        shared = cache.tight[in_idx].astype(np.int64) @ cache.tight[out_idx].T.astype(np.int64)
        pair_in, pair_out = np.nonzero(shared >= dim - 1)
        if pair_in.size == 0 and not on_plane.any():
            # Genuine crossing edges always share >= dim - 1 tight rows, and
            # a path from an inside to an outside vertex must pass through a
            # crossing edge or an on-plane vertex — finding neither means a
            # tight incidence was lost to tolerance: fall back.
            return None
        if pair_in.size + piece_vertices[0].shape[0] > MAX_VERTICES:
            return None
        if pair_in.size:
            lo = vertices[in_idx[pair_in]]
            hi = vertices[out_idx[pair_out]]
            s_lo = slack[in_idx[pair_in]][:, None]
            s_hi = slack[out_idx[pair_out]][:, None]
            # s_lo < 0 < s_hi, so the interpolation parameter lies in (0, 1).
            cut_points = lo + (hi - lo) * (s_lo / (s_lo - s_hi))
            cut_tight = cache.tight[in_idx[pair_in]] & cache.tight[out_idx[pair_out]]
            piece_vertices.append(cut_points)
            piece_tight.append(
                np.hstack([cut_tight, np.ones((cut_points.shape[0], 1), dtype=bool)])
            )
    new_vertices = np.vstack(piece_vertices)
    new_tight = np.vstack(piece_tight)

    # Merge duplicate points (the same corner reached via several edges),
    # OR-ing their incidence — the same geometric point is tight on the union
    # of the rows its copies were tight on.
    rounded = np.round(new_vertices, DEDUP_DECIMALS)
    _, first, inverse = np.unique(rounded, axis=0, return_index=True, return_inverse=True)
    if first.shape[0] != new_vertices.shape[0]:
        merged = np.zeros((first.shape[0], new_tight.shape[1]), dtype=bool)
        np.logical_or.at(merged, inverse.reshape(-1), new_tight)
        order = np.argsort(first)
        new_vertices = new_vertices[first[order]]
        new_tight = merged[order]

    a = np.vstack([cache.active_a, row[None, :]])
    b = np.concatenate([cache.active_b, [rhs]])
    return _pruned(new_vertices, new_tight, a, b)
