"""Linear-programming toolkit over H-polytopes.

Every polytope in the library is described in *H-representation*: a matrix
``A`` and vector ``b`` such that the feasible set is ``{x : A @ x <= b}``.
This module wraps :func:`scipy.optimize.linprog` (HiGHS) and adds:

* an analytic fast path for one-dimensional problems, which dominate the
  workload whenever the data dimensionality is ``d = 2`` (the preference
  domain is then a segment);
* a vertex-enumeration fast path for *bounded* low-dimensional polytopes
  (``assume_bounded=True``): the optimum of a bounded LP is attained at a
  vertex, so enumerating the feasible intersections of ``dim``-subsets of
  constraints answers the program with a handful of batched dense solves —
  roughly an order of magnitude faster than a :func:`scipy.optimize.linprog`
  round-trip at arrangement-cell sizes.  Arrangement cells opt in: they are
  always subsets of the (bounded) query region;
* Chebyshev-centre computation, used both as a robust interior point and as a
  full-dimensionality test for arrangement cells;
* convenience wrappers for maximizing / minimizing linear objectives.

All functions treat the polytope as closed; "interior" tests use a tolerance
``tol`` interpreted as the radius of a ball that must fit inside the polytope.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import LinearProgramError
from repro.obs.geometry import COUNTERS

#: Default radius below which a cell is considered lower-dimensional (empty
#: interior).  Chosen conservatively for attribute values in [0, 1] x 10.
DEFAULT_INTERIOR_TOL = 1e-9

#: Candidate-vertex budget of the bounded-polytope enumeration fast path;
#: programs whose combination count exceeds this fall back to scipy.
_ENUM_LIMIT = 20000

#: Relative determinant threshold below which a constraint subset is treated
#: as degenerate (no vertex contributed).
_ENUM_DET_TOL = 1e-12


@dataclass(frozen=True)
class LPResult:
    """Outcome of a linear program.

    Attributes
    ----------
    status:
        ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
    x:
        Optimal point (``None`` unless ``status == "optimal"``).
    value:
        Optimal objective value (``None`` unless ``status == "optimal"``).
    """

    status: str
    x: np.ndarray | None = None
    value: float | None = None

    @property
    def is_optimal(self) -> bool:
        """Whether the program solved to optimality."""
        return self.status == "optimal"


def _as_matrix(a_ub, b_ub, dim: int):
    """Normalize constraint input into float arrays of consistent shape."""
    if a_ub is None or len(a_ub) == 0:
        return np.zeros((0, dim), dtype=float), np.zeros(0, dtype=float)
    a = np.asarray(a_ub, dtype=float)
    b = np.asarray(b_ub, dtype=float).reshape(-1)
    if a.ndim != 2 or a.shape[0] != b.shape[0]:
        raise LinearProgramError(f"inconsistent constraint shapes: A is {a.shape}, b is {b.shape}")
    if a.shape[1] != dim:
        raise LinearProgramError(f"constraint matrix has {a.shape[1]} columns, expected {dim}")
    return a, b


def _solve_1d(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> LPResult:
    """Analytically solve a one-variable LP ``min c*x  s.t.  a*x <= b``."""
    lo, hi = -np.inf, np.inf
    for coeff, rhs in zip(a[:, 0], b):
        if coeff > 0.0:
            hi = min(hi, rhs / coeff)
        elif coeff < 0.0:
            lo = max(lo, rhs / coeff)
        elif rhs < 0.0:
            return LPResult(status="infeasible")
    if lo > hi:
        return LPResult(status="infeasible")
    slope = float(c[0])
    if slope > 0.0:
        best = lo
    elif slope < 0.0:
        best = hi
    else:
        best = lo if np.isfinite(lo) else (hi if np.isfinite(hi) else 0.0)
    if not np.isfinite(best):
        return LPResult(status="unbounded")
    x = np.array([best], dtype=float)
    return LPResult(status="optimal", x=x, value=float(slope * best))


@lru_cache(maxsize=256)
def _combination_index(m: int, k: int) -> np.ndarray | None:
    """All ``k``-subsets of ``range(m)`` as an ``(count, k)`` index array."""
    if math.comb(m, k) > _ENUM_LIMIT:
        return None
    combos = np.array(list(itertools.combinations(range(m), k)), dtype=int)
    combos.setflags(write=False)
    return combos


def _enumerate_vertices(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """Feasible vertices of ``{x : a x <= b}`` via batched dense solves.

    Returns ``None`` when the enumeration cannot be applied (too many
    combinations, or every constraint subset degenerate) — callers then fall
    back to scipy.  An empty result means no feasible vertex exists, which
    for a pointed polyhedron certifies infeasibility.
    """
    m, dim = a.shape
    if m < dim:
        return None
    combos = _combination_index(m, dim)
    if combos is None:
        return None
    sub_a = a[combos]
    dets = np.linalg.det(sub_a)
    scale = np.maximum(np.linalg.norm(sub_a, axis=2).prod(axis=1), 1e-300)
    keep = np.abs(dets) > _ENUM_DET_TOL * scale
    if not keep.any():
        return None
    try:
        candidates = np.linalg.solve(sub_a[keep], b[combos[keep]][..., None])[..., 0]
    except np.linalg.LinAlgError:  # pragma: no cover - blocked by the det filter
        return None
    slack = 1e-9 * (1.0 + np.abs(b) + np.linalg.norm(a, axis=1))
    feasible = np.all(a @ candidates.T <= (b + slack)[:, None], axis=0)
    return candidates[feasible]


def _solve_bounded(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> LPResult | None:
    """Solve ``min c @ x`` over a *pointed, bounded-objective* polyhedron.

    Valid whenever the optimum is attained at a vertex — in particular for
    the bounded arrangement-cell polytopes.  Returns ``None`` when the
    enumeration is not applicable (the caller falls back to scipy); ties are
    broken by candidate order, so results are deterministic.
    """
    vertices = _enumerate_vertices(a, b)
    if vertices is None:
        return None
    if vertices.shape[0] == 0:
        return LPResult(status="infeasible")
    values = vertices @ c
    best = int(np.argmin(values))
    return LPResult(status="optimal", x=vertices[best], value=float(values[best]))


def polytope_vertices(a_ub, b_ub, *, decimals: int = 12) -> np.ndarray | None:
    """Vertices of the bounded polytope ``{x : A x <= b}``, or ``None``.

    A deduplicated wrapper around the vertex enumeration used by the bounded
    LP fast path.  Returns ``None`` when the enumeration is not applicable
    (too many constraint combinations) — callers keep an H-representation
    only.  An empty ``(0, dim)`` result means the polytope has no vertex
    (infeasible, for the pointed polytopes this library builds).

    The region bisection of the parallel executor uses this to preserve the
    vertex representation across splits, keeping r-dominance tests on the
    vectorized vertex path instead of per-pair LPs.
    """
    a = np.asarray(a_ub, dtype=float)
    b = np.asarray(b_ub, dtype=float).reshape(-1)
    vertices = _enumerate_vertices(a, b)
    if vertices is None:
        return None
    if vertices.shape[0] == 0:
        return vertices
    _, unique = np.unique(np.round(vertices, decimals), axis=0, return_index=True)
    return vertices[np.sort(unique)]


def minimize(c, a_ub=None, b_ub=None, *, bounds=None, assume_bounded: bool = False) -> LPResult:
    """Minimize ``c @ x`` subject to ``a_ub @ x <= b_ub``.

    Parameters
    ----------
    c:
        Objective coefficients.
    a_ub, b_ub:
        Inequality constraints ``a_ub @ x <= b_ub``.  May be ``None``/empty.
    bounds:
        Optional scipy-style variable bounds.  Defaults to unbounded
        variables, which is what the preference-space machinery expects
        (region constraints already bound every variable).
    assume_bounded:
        Promise that the feasible region is bounded (as every arrangement
        cell is).  Enables the exact vertex-enumeration fast path; must not
        be set for potentially unbounded programs, whose detection needs the
        scipy solver.
    """
    c = np.asarray(c, dtype=float).reshape(-1)
    dim = c.shape[0]
    a, b = _as_matrix(a_ub, b_ub, dim)
    if dim == 1 and bounds is None:
        return _solve_1d(c, a, b)
    if assume_bounded and bounds is None:
        solved = _solve_bounded(c, a, b)
        if solved is not None:
            return solved
    if bounds is None:
        bounds = [(None, None)] * dim
    COUNTERS.fallback_calls += 1
    try:
        res = linprog(
            c, A_ub=a if a.size else None, b_ub=b if b.size else None, bounds=bounds, method="highs"
        )
    except ValueError as exc:  # malformed input surfaced by scipy
        raise LinearProgramError(str(exc)) from exc
    if res.status == 0:
        return LPResult(status="optimal", x=np.asarray(res.x, dtype=float), value=float(res.fun))
    if res.status == 2:
        return LPResult(status="infeasible")
    if res.status == 3:
        return LPResult(status="unbounded")
    raise LinearProgramError(f"linear program failed: {res.message}")


def maximize(c, a_ub=None, b_ub=None, *, bounds=None, assume_bounded: bool = False) -> LPResult:
    """Maximize ``c @ x`` subject to ``a_ub @ x <= b_ub``."""
    c = np.asarray(c, dtype=float).reshape(-1)
    res = minimize(-c, a_ub, b_ub, bounds=bounds, assume_bounded=assume_bounded)
    if res.is_optimal:
        return LPResult(status="optimal", x=res.x, value=-res.value)
    return res


def chebyshev_center(a_ub, b_ub, dim: int | None = None, *, assume_bounded: bool = False) -> tuple[
    np.ndarray | None, float
]:
    """Compute the Chebyshev centre of ``{x : A x <= b}``.

    Returns ``(centre, radius)`` where ``radius`` is the largest ball radius
    that fits in the polytope.  ``centre`` is ``None`` when the polytope is
    empty.  An unbounded polytope returns a finite point with ``radius``
    ``inf`` is never produced in this library because every cell is contained
    in a bounded preference region; if it happens we cap the radius at a large
    constant and return a feasible point.  ``assume_bounded`` promises the
    ``x``-polytope is bounded and enables the vertex-enumeration fast path on
    the augmented ``(x, r)`` program (that program is pointed whenever the
    promise holds, so its optimum sits at an enumerated vertex).
    """
    if dim is None:
        a_probe = np.asarray(a_ub, dtype=float)
        if a_probe.ndim != 2 or a_probe.shape[0] == 0:
            raise LinearProgramError(
                "chebyshev_center needs a non-empty constraint matrix " "or an explicit dimension"
            )
        dim = a_probe.shape[1]
    a, b = _as_matrix(a_ub, b_ub, dim)
    if a.shape[0] == 0:
        return np.zeros(dim, dtype=float), np.inf
    norms = np.linalg.norm(a, axis=1)
    if dim == 1:
        # Analytic: feasible interval [lo, hi]; centre is the midpoint.
        lo, hi = -np.inf, np.inf
        for coeff, rhs in zip(a[:, 0], b):
            if coeff > 0.0:
                hi = min(hi, rhs / coeff)
            elif coeff < 0.0:
                lo = max(lo, rhs / coeff)
            elif rhs < 0.0:
                return None, -np.inf
        if lo > hi:
            return None, -np.inf
        if not np.isfinite(lo) or not np.isfinite(hi):
            point = np.array([lo if np.isfinite(lo) else (hi if np.isfinite(hi) else 0.0)])
            return point, np.inf
        return np.array([(lo + hi) / 2.0]), (hi - lo) / 2.0
    # max r  s.t.  a_i . x + ||a_i|| r <= b_i
    c = np.zeros(dim + 1)
    c[-1] = -1.0
    a_aug = np.hstack([a, norms.reshape(-1, 1)])
    if assume_bounded:
        solved = _solve_bounded(c, a_aug, b)
        if solved is not None:
            if not solved.is_optimal:
                return None, -np.inf
            radius = float(solved.x[-1])
            if radius < 0.0:
                # A negative inscribed radius means the polytope is empty.
                return None, radius
            return np.asarray(solved.x[:dim], dtype=float), radius
    bounds = [(None, None)] * dim + [(None, None)]
    COUNTERS.fallback_calls += 1
    try:
        res = linprog(c, A_ub=a_aug, b_ub=b, bounds=bounds, method="highs")
    except ValueError as exc:
        raise LinearProgramError(str(exc)) from exc
    if res.status == 2:
        return None, -np.inf
    if res.status == 3:
        # Unbounded radius: fall back to any feasible point.
        point = feasible_point(a, b, dim=dim)
        return point, np.inf
    if res.status != 0:
        raise LinearProgramError(f"chebyshev_center failed: {res.message}")
    x = np.asarray(res.x[:dim], dtype=float)
    radius = float(res.x[-1])
    if radius < 0.0:
        # A negative inscribed radius means the polytope itself is empty.
        return None, radius
    return x, radius


def has_interior(a_ub, b_ub, dim: int | None = None, tol: float = DEFAULT_INTERIOR_TOL) -> bool:
    """Whether ``{x : A x <= b}`` is full-dimensional (contains a ball of radius > tol)."""
    _, radius = chebyshev_center(a_ub, b_ub, dim=dim)
    return radius > tol


def feasible_point(a_ub, b_ub, dim: int | None = None) -> np.ndarray | None:
    """Return a point satisfying ``A x <= b`` or ``None`` if infeasible.

    The point returned is the Chebyshev centre whenever the polytope is
    bounded, which keeps it safely away from cell boundaries.
    """
    centre, radius = chebyshev_center(a_ub, b_ub, dim=dim)
    if centre is None or radius < 0.0:
        return None
    return centre
