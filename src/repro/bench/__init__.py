"""Benchmark harness: workload generation, experiment runner, reporting.

Each experiment of the paper's evaluation section (Figures 9-16, Table 1) has
a corresponding generator in :mod:`repro.bench.experiments` that produces the
same rows/series the figure plots; the runnable entry points live under the
repository's ``benchmarks/`` directory.
"""

from repro.bench.workloads import (
    DEFAULT_PARAMETERS,
    PAPER_PARAMETERS,
    random_region,
    query_workload,
)
from repro.bench.harness import QueryMeasurement, measure_query, run_workload
from repro.bench.reporting import format_table, format_series

__all__ = [
    "DEFAULT_PARAMETERS",
    "PAPER_PARAMETERS",
    "random_region",
    "query_workload",
    "QueryMeasurement",
    "measure_query",
    "run_workload",
    "format_table",
    "format_series",
]
