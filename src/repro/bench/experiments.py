"""Per-figure experiment definitions (paper Section 7).

Every public function reproduces the data series of one table or figure of
the paper's evaluation and returns plain rows (lists of dicts) that the
``benchmarks/`` scripts print with :mod:`repro.bench.reporting`.  A ``scale``
dictionary controls dataset cardinalities and repetition counts so the same
code can run both as a quick smoke benchmark and as a larger overnight run.

The default scale is deliberately small: the library is pure Python, and the
paper's shapes (relative ordering of methods, growth trends) already show at
these sizes.  EXPERIMENTS.md records paper-versus-measured for each figure.
"""

from __future__ import annotations

from statistics import mean

from repro.bench.harness import measure_query
from repro.bench.workloads import query_workload
from repro.core.jaa import JAA
from repro.core.region import hyperrectangle
from repro.core.rsa import RSA
from repro.datasets.nba import nba_star_dataset
from repro.datasets.real import real_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.geometry.onion import onion_member_indices
from repro.queries.topk import incremental_top_k_until
from repro.skyline.skyband import k_skyband, onion_candidates

#: Scale used by the quick benchmarks (kept small because the substrate is
#: pure Python; raise these numbers for a longer run).
QUICK_SCALE = {
    "cardinality": 2_000,
    "cardinalities": [500, 1_000, 2_000, 4_000],
    "baseline_cardinality": 400,
    "dimensionality": 4,
    "dimensionalities": [2, 3, 4, 5],
    "k": 5,
    "k_values": [1, 2, 5, 10],
    "baseline_k_values": [1, 2, 3],
    "sigma": 0.05,
    "sigma_values": [0.01, 0.05, 0.10, 0.20],
    # The real-data substitutes include 6-D and 8-D datasets whose preference
    # domains are much harder; their quick-scale workload is kept smaller.
    "real_cardinality": 800,
    "real_k_values": [1, 2, 3],
    "real_sigma": 0.01,
    "real_sigma_values": [0.005, 0.01, 0.02, 0.05],
    "queries": 2,
    "seed": 7,
}


def _scale(overrides: dict | None) -> dict:
    merged = dict(QUICK_SCALE)
    if overrides:
        merged.update(overrides)
    return merged


# --------------------------------------------------------------------- Table 1
def experiment_table1(scale: dict | None = None) -> list[dict]:
    """Table 1: the experiment parameter grid (paper values and harness values)."""
    scale = _scale(scale)
    rows = [
        {"parameter": "cardinality n", "paper": "100K..1600K (default 400K)",
         "harness": f"{scale['cardinalities']} (default {scale['cardinality']})"},
        {"parameter": "dimensionality d", "paper": "2..7 (default 4)",
         "harness": f"{scale['dimensionalities']} (default {scale['dimensionality']})"},
        {"parameter": "k", "paper": "1..100 (default 10)",
         "harness": f"{scale['k_values']} (default {scale['k']})"},
        {"parameter": "sigma", "paper": "0.1%..10% (default 1%)",
         "harness": f"{scale['sigma_values']} (default {scale['sigma']})"},
        {"parameter": "queries per setting", "paper": "50",
         "harness": str(scale["queries"])},
    ]
    return rows


# ------------------------------------------------------------------- Figure 9
def experiment_fig9_2d(k: int = 3, region_bounds=(0.64, 0.74)) -> dict:
    """Figure 9(a): 2-D NBA case study (Rebounds/Points, k=3, R=[0.64, 0.74])."""
    data = nba_star_dataset(("rebounds", "points"))
    region = hyperrectangle([region_bounds[0]], [region_bounds[1]])
    utk = RSA(data.values, region, k).run()
    utk2 = JAA(data.values, region, k).run()
    onion = onion_candidates(data.values, k)
    skyband = k_skyband(data.values, k)
    return {
        "utk1_players": [data.label_of(i) for i in utk.indices],
        "utk2_partitions": [
            {"top_k": sorted(data.label_of(i) for i in part.top_k),
             "interior_wr": None if part.interior_point is None
             else float(part.interior_point[0])}
            for part in utk2.partitions
        ],
        "onion_players": [data.label_of(i) for i in onion],
        "skyband_players": [data.label_of(i) for i in skyband],
        "counts": {"utk": len(utk), "onion": int(onion.size),
                   "skyband": int(skyband.size)},
    }


def experiment_fig9_3d(k: int = 3, region_low=(0.2, 0.5), region_high=(0.3, 0.6)) -> dict:
    """Figure 9(b): 3-D NBA case study (Rebounds/Points/Assists, k=3)."""
    data = nba_star_dataset(("rebounds", "points", "assists"))
    region = hyperrectangle(list(region_low), list(region_high))
    utk2 = JAA(data.values, region, k).run()
    utk1 = RSA(data.values, region, k).run()
    onion = onion_candidates(data.values, k)
    skyband = k_skyband(data.values, k)
    return {
        "utk1_players": [data.label_of(i) for i in utk1.indices],
        "utk2_partitions": [
            {"top_k": sorted(data.label_of(i) for i in part.top_k)}
            for part in utk2.partitions
        ],
        "counts": {"utk": len(utk1), "onion": int(onion.size),
                   "skyband": int(skyband.size),
                   "utk2_partitions": len(utk2)},
    }


# ------------------------------------------------------------------ Figure 10
def experiment_fig10(scale: dict | None = None) -> list[dict]:
    """Figure 10: UTK versus traditional operators on the NBA workload.

    For each ``k``: the number of records in the k-skyband, the k onion
    layers and the UTK1 result (Fig 10a), plus the ``k`` a plain top-k query
    needs to cover the UTK1 result and how many records it outputs doing so
    (Fig 10b).
    """
    scale = _scale(scale)
    data = real_dataset("NBA", cardinality=scale["baseline_cardinality"], seed=scale["seed"])
    values = data.values
    rows = []
    for k in scale["baseline_k_values"]:
        workload = query_workload(
            values.shape[1], k, scale["sigma"], scale["queries"], seed=scale["seed"]
        )
        # The traditional skyband and onion filters depend only on k, not on
        # the query region; computing them per spec silently rebuilt an
        # R-tree (above the index threshold) for every single query.
        skyband = k_skyband(values, k)
        onion = onion_member_indices(values[skyband], k)
        skyband_sizes, onion_sizes, utk_sizes, needed_ks, tk_sizes = [], [], [], [], []
        for spec in workload:
            utk = RSA(values, spec.region, k).run()
            skyband_sizes.append(int(skyband.size))
            onion_sizes.append(int(onion.size))
            utk_sizes.append(len(utk))
            needed, output = incremental_top_k_until(values, spec.region.pivot, k, set(utk.indices))
            needed_ks.append(needed)
            tk_sizes.append(len(output))
        rows.append({
            "k": k,
            "k_skyband": mean(skyband_sizes),
            "onion": mean(onion_sizes),
            "utk": mean(utk_sizes),
            "required_k_for_topk": mean(needed_ks),
            "topk_output": mean(tk_sizes),
        })
    return rows


# ------------------------------------------------------------------ Figure 11
def experiment_fig11(scale: dict | None = None) -> list[dict]:
    """Figure 11: response time versus ``k`` on IND — our algorithms vs baselines."""
    scale = _scale(scale)
    data = synthetic_dataset(
        "IND", scale["baseline_cardinality"], scale["dimensionality"], seed=scale["seed"]
    )
    values = data.values
    rows = []
    for k in scale["baseline_k_values"]:
        workload = query_workload(
            values.shape[1], k, scale["sigma"], scale["queries"], seed=scale["seed"]
        )
        row = {"k": k}
        for algorithm in ("RSA", "SK1", "ON1", "JAA", "SK2", "ON2"):
            elapsed = [measure_query(algorithm, values, spec.region, k).elapsed_seconds
                       for spec in workload]
            row[algorithm] = mean(elapsed)
        rows.append(row)
    return rows


# ------------------------------------------------------------------ Figure 12
def experiment_fig12(scale: dict | None = None) -> list[dict]:
    """Figure 12: effect of cardinality and data distribution (RSA & JAA)."""
    scale = _scale(scale)
    rows = []
    for distribution in ("COR", "IND", "ANTI"):
        for cardinality in scale["cardinalities"]:
            data = synthetic_dataset(
                distribution, cardinality, scale["dimensionality"], seed=scale["seed"]
            )
            workload = query_workload(
                scale["dimensionality"],
                scale["k"],
                scale["sigma"],
                scale["queries"],
                seed=scale["seed"],
            )
            rsa_time, rsa_size, jaa_time, jaa_sets = [], [], [], []
            for spec in workload:
                rsa = measure_query("RSA", data.values, spec.region, spec.k)
                jaa = measure_query("JAA", data.values, spec.region, spec.k)
                rsa_time.append(rsa.elapsed_seconds)
                rsa_size.append(rsa.output_size)
                jaa_time.append(jaa.elapsed_seconds)
                jaa_sets.append(jaa.output_size)
            rows.append({
                "distribution": distribution,
                "n": cardinality,
                "rsa_seconds": mean(rsa_time),
                "utk1_records": mean(rsa_size),
                "jaa_seconds": mean(jaa_time),
                "utk2_sets": mean(jaa_sets),
            })
    return rows


# ------------------------------------------------------------------ Figure 13
def experiment_fig13(scale: dict | None = None) -> list[dict]:
    """Figure 13: effect of dimensionality on response time and memory (IND)."""
    scale = _scale(scale)
    rows = []
    for dimensionality in scale["dimensionalities"]:
        data = synthetic_dataset("IND", scale["cardinality"], dimensionality, seed=scale["seed"])
        workload = query_workload(
            dimensionality, scale["k"], scale["sigma"], scale["queries"], seed=scale["seed"]
        )
        rsa_time, jaa_time, rsa_memory, jaa_memory = [], [], [], []
        for spec in workload:
            rsa = measure_query("RSA", data.values, spec.region, spec.k, track_memory=True)
            jaa = measure_query("JAA", data.values, spec.region, spec.k, track_memory=True)
            rsa_time.append(rsa.elapsed_seconds)
            jaa_time.append(jaa.elapsed_seconds)
            rsa_memory.append(rsa.peak_memory_bytes)
            jaa_memory.append(jaa.peak_memory_bytes)
        rows.append({
            "d": dimensionality,
            "rsa_seconds": mean(rsa_time),
            "jaa_seconds": mean(jaa_time),
            "rsa_peak_mb": mean(rsa_memory) / 1e6,
            "jaa_peak_mb": mean(jaa_memory) / 1e6,
        })
    return rows


# ------------------------------------------------------------------ Figure 14
def experiment_fig14(scale: dict | None = None) -> list[dict]:
    """Figure 14: effect of the region size ``sigma`` on time and result size (IND)."""
    scale = _scale(scale)
    data = synthetic_dataset(
        "IND", scale["cardinality"], scale["dimensionality"], seed=scale["seed"]
    )
    rows = []
    for sigma in scale["sigma_values"]:
        workload = query_workload(
            scale["dimensionality"], scale["k"], sigma, scale["queries"], seed=scale["seed"]
        )
        rsa_time, rsa_size, jaa_time, jaa_sets = [], [], [], []
        for spec in workload:
            rsa = measure_query("RSA", data.values, spec.region, spec.k)
            jaa = measure_query("JAA", data.values, spec.region, spec.k)
            rsa_time.append(rsa.elapsed_seconds)
            rsa_size.append(rsa.output_size)
            jaa_time.append(jaa.elapsed_seconds)
            jaa_sets.append(jaa.output_size)
        rows.append({
            "sigma": sigma,
            "rsa_seconds": mean(rsa_time),
            "utk1_records": mean(rsa_size),
            "jaa_seconds": mean(jaa_time),
            "utk2_sets": mean(jaa_sets),
        })
    return rows


# ------------------------------------------------------- Figures 15 and 16
def experiment_fig15(scale: dict | None = None) -> list[dict]:
    """Figure 15: JAA versus ``k`` on the real-data substitutes."""
    scale = _scale(scale)
    rows = []
    for name in ("HOTEL", "HOUSE", "NBA"):
        data = real_dataset(
            name,
            cardinality=scale.get("real_cardinality", scale["cardinality"]),
            seed=scale["seed"],
        )
        for k in scale.get("real_k_values", scale["k_values"]):
            workload = query_workload(
                data.dimensionality,
                k,
                scale.get("real_sigma", scale["sigma"]),
                scale["queries"],
                seed=scale["seed"],
            )
            times, sets = [], []
            for spec in workload:
                jaa = measure_query("JAA", data.values, spec.region, k)
                times.append(jaa.elapsed_seconds)
                sets.append(jaa.output_size)
            rows.append(
                {"dataset": name, "k": k, "jaa_seconds": mean(times), "utk2_sets": mean(sets)}
            )
    return rows


def experiment_fig16(scale: dict | None = None) -> list[dict]:
    """Figure 16: JAA versus the region size on the real-data substitutes."""
    scale = _scale(scale)
    rows = []
    for name in ("HOTEL", "HOUSE", "NBA"):
        data = real_dataset(
            name,
            cardinality=scale.get("real_cardinality", scale["cardinality"]),
            seed=scale["seed"],
        )
        for sigma in scale.get("real_sigma_values", scale["sigma_values"]):
            workload = query_workload(
                data.dimensionality,
                max(scale.get("real_k_values", [scale["k"]])),
                sigma,
                scale["queries"],
                seed=scale["seed"],
            )
            times, sets = [], []
            for spec in workload:
                jaa = measure_query("JAA", data.values, spec.region, spec.k)
                times.append(jaa.elapsed_seconds)
                sets.append(jaa.output_size)
            rows.append({"dataset": name, "sigma": sigma,
                         "jaa_seconds": mean(times), "utk2_sets": mean(sets)})
    return rows


# ------------------------------------------------------------------ Ablations
def experiment_ablation_rsa(scale: dict | None = None) -> list[dict]:
    """Ablation of RSA's design choices: drill, Lemma-1 pruning, candidate order."""
    scale = _scale(scale)
    data = synthetic_dataset(
        "IND", scale["cardinality"], scale["dimensionality"], seed=scale["seed"]
    )
    workload = query_workload(
        scale["dimensionality"], scale["k"], scale["sigma"], scale["queries"], seed=scale["seed"]
    )
    configurations = [
        ("full", {}),
        ("no_drill", {"use_drill": False}),
        ("no_lemma1", {"use_lemma1": False}),
        ("order_asc", {"candidate_order": "count_asc"}),
        ("order_index", {"candidate_order": "index"}),
    ]
    rows = []
    for label, options in configurations:
        times, sizes = [], []
        for spec in workload:
            import time as _time
            started = _time.perf_counter()
            result = RSA(data.values, spec.region, spec.k, **options).run()
            times.append(_time.perf_counter() - started)
            sizes.append(len(result))
        rows.append({"configuration": label, "seconds": mean(times), "utk1_records": mean(sizes)})
    return rows


def experiment_ablation_jaa(scale: dict | None = None) -> list[dict]:
    """Ablation of JAA: effect of disabling Lemma-1 pruning."""
    scale = _scale(scale)
    data = synthetic_dataset(
        "IND", scale["cardinality"], scale["dimensionality"], seed=scale["seed"]
    )
    workload = query_workload(
        scale["dimensionality"], scale["k"], scale["sigma"], scale["queries"], seed=scale["seed"]
    )
    rows = []
    for label, options in (("full", {}), ("no_lemma1", {"use_lemma1": False})):
        times, sets = [], []
        for spec in workload:
            import time as _time
            started = _time.perf_counter()
            result = JAA(data.values, spec.region, spec.k, **options).run()
            times.append(_time.perf_counter() - started)
            sets.append(len(result))
        rows.append({"configuration": label, "seconds": mean(times), "utk2_sets": mean(sets)})
    return rows
