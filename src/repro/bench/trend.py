"""Cross-run trend comparison of scenario-matrix benchmarks.

Compares the current ``BENCH_matrix.json`` against a reference snapshot —
the committed ``benchmarks/baselines/`` file in CI, or the previous
nightly's artifact in the trend job — and fails when any *gated* cell's
throughput regressed by more than the threshold (default 20%).

Ungated cells, cells that appear only on one side, and oracle-skipped cells
never fail the comparison: scenario/backend additions and removals are
routine, and flagging them as regressions would make the gate untouchable.
They are still reported, so a silently vanished cell is visible in the
markdown summary CI posts to ``$GITHUB_STEP_SUMMARY``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.schema import SchemaError, validate_bench_file, validate_bench_payload

#: Relative throughput loss that fails a gated cell (0.2 = 20% slower).
DEFAULT_THRESHOLD = 0.2


@dataclass
class TrendReport:
    """Outcome of one baseline-vs-current comparison."""

    threshold: float
    entries: list[dict] = field(default_factory=list)

    @property
    def regressions(self) -> list[dict]:
        return [entry for entry in self.entries if entry["status"] == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def markdown(self) -> str:
        """GitHub-flavoured summary (the ``$GITHUB_STEP_SUMMARY`` payload)."""
        lines = ["## Benchmark trend", ""]
        verdict = (
            "no gated regressions"
            if self.ok
            else f"**{len(self.regressions)} gated regression(s)**"
        )
        lines.append(
            f"Gate: gated cells must stay within "
            f"{self.threshold:.0%} of baseline throughput — {verdict}."
        )
        lines.append("")
        lines.append("| cell | baseline q/s | current q/s | change | status |")
        lines.append("|---|---|---|---|---|")
        for entry in self.entries:
            baseline = "—" if entry["baseline_qps"] is None else f"{entry['baseline_qps']:.1f}"
            current = "—" if entry["current_qps"] is None else f"{entry['current_qps']:.1f}"
            change = "—" if entry["ratio"] is None else f"{entry['ratio'] - 1.0:+.1%}"
            status = entry["status"]
            if status == "regression":
                status = f"**{status}**"
            lines.append(
                f"| {entry['cell']} | {baseline} | {current} | {change} | {status} |"
            )
        return "\n".join(lines) + "\n"

    def text(self) -> str:
        lines = [
            f"trend vs baseline (threshold {self.threshold:.0%}):",
        ]
        for entry in self.entries:
            change = "—" if entry["ratio"] is None else f"{entry['ratio'] - 1.0:+.1%}"
            lines.append(f"  {entry['cell']}: {change} ({entry['status']})")
        lines.append("PASS" if self.ok else f"FAIL: {len(self.regressions)} regression(s)")
        return "\n".join(lines)


def _cells(payload: dict) -> dict[str, dict]:
    cells = {}
    for row in payload.get("rows", []):
        if "scenario" in row and "backend" in row and "qps" in row:
            cells[f"{row['scenario']}/{row['backend']}"] = row
    return cells


def compare(
    current: dict, baseline: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> TrendReport:
    """Compare two ``BENCH_matrix.json`` payloads (validated first)."""
    validate_bench_payload(current)
    validate_bench_payload(baseline)
    current_smoke = current.get("meta", {}).get("smoke")
    baseline_smoke = baseline.get("meta", {}).get("smoke")
    if current_smoke is not None and baseline_smoke is not None:
        if bool(current_smoke) != bool(baseline_smoke):
            raise SchemaError(
                "cannot compare a smoke matrix against a full-workload baseline "
                f"(current smoke={current_smoke}, baseline smoke={baseline_smoke}); "
                "pick the matching benchmarks/baselines/ snapshot"
            )
    report = TrendReport(threshold=float(threshold))
    current_cells = _cells(current)
    baseline_cells = _cells(baseline)
    for cell in sorted(set(current_cells) | set(baseline_cells)):
        now, then = current_cells.get(cell), baseline_cells.get(cell)
        entry = {
            "cell": cell,
            "gated": bool((now or then).get("gated", False)),
            "baseline_qps": None if then is None else float(then["qps"]),
            "current_qps": None if now is None else float(now["qps"]),
            "ratio": None,
        }
        if now is None:
            entry["status"] = "missing"
        elif then is None:
            entry["status"] = "new"
        elif entry["baseline_qps"] <= 0:
            entry["status"] = "no-baseline"
        else:
            entry["ratio"] = entry["current_qps"] / entry["baseline_qps"]
            regressed = entry["ratio"] < 1.0 - report.threshold
            if regressed and entry["gated"] and now.get("oracle") != "skipped":
                entry["status"] = "regression"
            elif entry["ratio"] > 1.0 + report.threshold:
                entry["status"] = "improved"
            else:
                entry["status"] = "ok" if not regressed else "regressed-ungated"
        report.entries.append(entry)
    return report


def compare_files(
    current_path, baseline_path, *, threshold: float = DEFAULT_THRESHOLD
) -> TrendReport:
    """Load, validate and compare two ``BENCH_*.json`` files."""
    return compare(
        validate_bench_file(current_path),
        validate_bench_file(baseline_path),
        threshold=threshold,
    )
