"""Reporting helpers for the benchmark harness.

Every benchmark prints the same rows/series the corresponding paper figure
plots; these helpers format them as aligned text tables so the shape of the
result (who wins, by what factor, where trends bend) is readable directly
from the benchmark output.  :func:`write_bench_json` additionally persists
rows (plus gate outcomes, provenance and environment metadata) as a
``BENCH_*.json`` artifact, which is what CI uploads and what makes every
PR's speed claim checkable after the fact.  :func:`write_bench_metrics`
snapshots the observability registry as a sibling ``METRICS_*.jsonl``
artifact, so a benchmark run's internal counters (cache events, geometry
calls, phase timings) ride along with its headline numbers.
"""

from __future__ import annotations

import json
import platform
import time
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.obs.metrics import REGISTRY
from repro.obs.provenance import provenance as _provenance


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> str:
    """Format rows as an aligned text table."""
    rendered_rows = [[_render(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for position, value in enumerate(row):
            widths[position] = max(widths[position], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def print_rows(title: str, rows: Sequence[Mapping]) -> None:
    """Print experiment rows as the aligned table the figure would plot."""
    if not rows:
        print(f"\n{title}: no rows")
        return
    headers = list(rows[0].keys())
    print(format_table(headers, [[row[h] for h in headers] for row in rows], title=f"\n{title}"))


def format_series(series: Mapping[str, Mapping], x_label: str, *, title: str | None = None) -> str:
    """Format ``{series name: {x value: y value}}`` as a table with one column per series.

    This mirrors how the paper's line plots are read: one row per x-axis
    value, one column per method.
    """
    x_values = sorted({x for values in series.values() for x in values})
    headers = [x_label] + list(series)
    rows = []
    for x in x_values:
        row = [x] + [series[name].get(x, "") for name in series]
        rows.append(row)
    return format_table(headers, rows, title=title)


def write_bench_json(
    path,
    benchmark: str,
    rows: Sequence[Mapping],
    *,
    gates: Mapping | None = None,
    meta: Mapping | None = None,
) -> dict:
    """Write benchmark ``rows`` as a ``BENCH_*.json`` artifact and return the payload.

    Parameters
    ----------
    path:
        Output file path (conventionally ``BENCH_<name>.json``).
    benchmark:
        Benchmark identifier stored in the payload.
    rows:
        The measurement rows, one mapping per table row.
    gates:
        Optional pass/fail gate outcomes (e.g. required speedup factors and
        whether they were met).
    meta:
        Optional run metadata (workload mode, sizes, ...).
    """
    from repro.bench.schema import SCHEMA_VERSION, validate_bench_payload

    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "provenance": _provenance(),
        "meta": dict(meta or {}),
        "gates": dict(gates or {}),
        "rows": [dict(row) for row in rows],
    }
    # Round-trip through JSON before validating, so what we check is exactly
    # what readers will see (NumPy scalars coerced, tuples listified).
    payload = json.loads(json.dumps(payload, default=_json_default))
    validate_bench_payload(payload)
    text = json.dumps(payload, indent=2, default=_json_default)
    Path(path).write_text(text + "\n", encoding="utf-8")
    return payload


def write_bench_metrics(path, benchmark: str, *, meta: Mapping | None = None) -> str:
    """Snapshot the observability registry as a ``METRICS_*.jsonl`` artifact.

    The header line carries the benchmark name, run metadata and provenance;
    each following line is one metric record (see
    :meth:`repro.obs.metrics.MetricsRegistry.write_jsonl`).  Returns ``path``
    so callers can log where the artifact went.  The snapshot reflects
    whatever the registry accumulated — benchmarks that want a clean capture
    reset the registry and enable observability around the measured section.
    """
    from repro.bench.schema import SCHEMA_VERSION

    header = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **_provenance(),
        "meta": dict(meta or {}),
    }
    REGISTRY.write_jsonl(path, header=header)
    return str(path)


def _json_default(value):
    """Coerce NumPy scalars/arrays (and other oddballs) into JSON-able types."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


def _render(value) -> str:
    """Human-friendly rendering of one table value."""
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)
