"""Experiment runner: timed, instrumented UTK query execution.

``measure_query`` runs one algorithm (RSA, JAA, or one of the SK/ON
baselines) on one query and records response time, peak memory and output
size; ``run_workload`` aggregates a workload of queries the way the paper
does (averaging over repetitions of randomly placed regions).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from statistics import mean

import numpy as np

from repro.core.jaa import JAA
from repro.core.region import Region
from repro.core.rsa import RSA
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree
from repro.queries.baselines import baseline_utk1, baseline_utk2

#: Algorithm identifiers accepted by the harness.
ALGORITHMS = ("RSA", "JAA", "SK1", "ON1", "SK2", "ON2")


@dataclass
class QueryMeasurement:
    """Outcome of one measured query execution."""

    algorithm: str
    elapsed_seconds: float
    output_size: int
    peak_memory_bytes: int = 0
    details: dict = field(default_factory=dict)


@dataclass
class WorkloadMeasurement:
    """Aggregated measurements over a workload (mean over queries)."""

    algorithm: str
    queries: int
    mean_seconds: float
    mean_output_size: float
    mean_peak_memory_bytes: float
    per_query: list[QueryMeasurement] = field(default_factory=list)


def _run_algorithm(algorithm: str, values: np.ndarray, region: Region, k: int, tree: RTree | None):
    """Execute one algorithm and return ``(output_size, details)``."""
    if algorithm == "RSA":
        result = RSA(values, region, k, tree=tree).run()
        return len(result), {"indices": list(result.indices), **result.stats}
    if algorithm == "JAA":
        result = JAA(values, region, k, tree=tree).run()
        return len(result.distinct_top_k_sets), {
            "records": result.result_records, "partitions": len(result), **result.stats
        }
    if algorithm in ("SK1", "ON1"):
        variant = "skyband" if algorithm.startswith("SK") else "onion"
        outcome = baseline_utk1(values, region, k, variant=variant, tree=tree)
        return len(outcome.result_indices), {"candidates": outcome.candidate_count}
    if algorithm in ("SK2", "ON2"):
        variant = "skyband" if algorithm.startswith("SK") else "onion"
        outcome = baseline_utk2(values, region, k, variant=variant, tree=tree)
        cells = sum(len(res.cells) for res in outcome.per_candidate.values())
        return cells, {"candidates": outcome.candidate_count}
    raise InvalidQueryError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


def measure_query(
    algorithm: str,
    values,
    region: Region,
    k: int,
    *,
    tree: RTree | None = None,
    track_memory: bool = False,
) -> QueryMeasurement:
    """Run one algorithm on one query and measure time / memory / output size."""
    values = np.asarray(values, dtype=float)
    if track_memory:
        tracemalloc.start()
    started = time.perf_counter()
    output_size, details = _run_algorithm(algorithm, values, region, k, tree)
    elapsed = time.perf_counter() - started
    peak = 0
    if track_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return QueryMeasurement(
        algorithm=algorithm,
        elapsed_seconds=elapsed,
        output_size=output_size,
        peak_memory_bytes=peak,
        details=details,
    )


def run_workload(
    algorithm: str, values, queries, *, tree: RTree | None = None, track_memory: bool = False
) -> WorkloadMeasurement:
    """Run an algorithm over a workload of :class:`~repro.bench.workloads.QuerySpec`."""
    measurements = [measure_query(algorithm, values, spec.region, spec.k,
                                  tree=tree, track_memory=track_memory)
                    for spec in queries]
    if not measurements:
        raise InvalidQueryError("workload contains no queries")
    return WorkloadMeasurement(
        algorithm=algorithm,
        queries=len(measurements),
        mean_seconds=mean(m.elapsed_seconds for m in measurements),
        mean_output_size=mean(m.output_size for m in measurements),
        mean_peak_memory_bytes=mean(m.peak_memory_bytes for m in measurements),
        per_query=measurements,
    )
