"""Schema checks for the benchmark artifacts (``BENCH_*.json`` / ``METRICS_*.jsonl``).

The trend comparison (:mod:`repro.bench.trend`) and the nightly dashboards
read artifacts produced by *older* commits, so format drift must fail CI
loudly instead of silently breaking cross-run comparison.  Every artifact
carries a ``schema_version``; these validators check it together with the
structural shape.

The validator is a deliberately small, dependency-free subset of JSON
Schema (``type``, ``required``, ``properties``, ``items``, ``enum``) — the
container has no ``jsonschema`` package, and the artifact shapes need
nothing more.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ReproError

#: Version stamped into every artifact this library writes.  Bump it (and
#: extend the validators) whenever the payload shape changes incompatibly.
SCHEMA_VERSION = 1


class SchemaError(ReproError):
    """An artifact does not match the expected schema."""


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def check(instance, schema: dict, path: str = "$") -> None:
    """Validate ``instance`` against a JSON-Schema subset; raise :class:`SchemaError`.

    Supports ``type``, ``required``, ``properties``, ``items`` and ``enum`` —
    enough to pin the artifact shapes without an external dependency.
    """
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        if not isinstance(instance, python_type) or (
            expected in ("number", "integer") and isinstance(instance, bool)
        ):
            raise SchemaError(f"{path}: expected {expected}, got {type(instance).__name__}")
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(f"{path}: {instance!r} not in {schema['enum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise SchemaError(f"{path}: missing required key {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                check(instance[name], subschema, f"{path}.{name}")
    if isinstance(instance, list) and "items" in schema:
        for position, item in enumerate(instance):
            check(item, schema["items"], f"{path}[{position}]")


#: Shape of a ``BENCH_*.json`` payload (what :func:`write_bench_json` emits).
BENCH_SCHEMA = {
    "type": "object",
    "required": [
        "schema_version",
        "benchmark",
        "created_at",
        "python",
        "platform",
        "provenance",
        "meta",
        "gates",
        "rows",
    ],
    "properties": {
        "schema_version": {"type": "integer"},
        "benchmark": {"type": "string"},
        "created_at": {"type": "string"},
        "python": {"type": "string"},
        "platform": {"type": "string"},
        "provenance": {"type": "object"},
        "meta": {"type": "object"},
        "gates": {"type": "object"},
        "rows": {"type": "array", "items": {"type": "object"}},
    },
}

#: Shape of the ``METRICS_*.jsonl`` header line.
METRICS_HEADER_SCHEMA = {
    "type": "object",
    "required": ["record", "schema_version", "benchmark", "created_at"],
    "properties": {
        "record": {"enum": ["header"]},
        "schema_version": {"type": "integer"},
        "benchmark": {"type": "string"},
        "created_at": {"type": "string"},
        "meta": {"type": "object"},
    },
}

#: Shape of one ``METRICS_*.jsonl`` metric line (see
#: :meth:`repro.obs.metrics.MetricsRegistry.write_jsonl`).
METRICS_RECORD_SCHEMA = {
    "type": "object",
    "required": ["record", "name", "kind", "samples"],
    "properties": {
        "record": {"enum": ["metric"]},
        "name": {"type": "string"},
        "kind": {"enum": ["counter", "gauge", "histogram"]},
        "samples": {"type": "array", "items": {"type": "object", "required": ["labels"]}},
    },
}


def validate_bench_payload(payload: dict) -> dict:
    """Check a BENCH payload (shape + supported ``schema_version``); return it."""
    check(payload, BENCH_SCHEMA)
    if payload["schema_version"] > SCHEMA_VERSION:
        raise SchemaError(
            f"BENCH schema_version {payload['schema_version']} is newer than the "
            f"supported {SCHEMA_VERSION}; upgrade the library reading it"
        )
    return payload


def validate_bench_file(path) -> dict:
    """Load and validate one ``BENCH_*.json`` file; return the payload."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SchemaError(f"{path} is not valid JSON: {error}") from error
    try:
        return validate_bench_payload(payload)
    except SchemaError as error:
        raise SchemaError(f"{path}: {error}") from error


def validate_metrics_lines(lines) -> int:
    """Validate decoded METRICS JSONL records; return the metric-line count."""
    records = list(lines)
    if not records:
        raise SchemaError("METRICS stream is empty (expected a header line)")
    check(records[0], METRICS_HEADER_SCHEMA, "$[0]")
    for position, record in enumerate(records[1:], start=1):
        check(record, METRICS_RECORD_SCHEMA, f"$[{position}]")
    return len(records) - 1


def validate_metrics_file(path) -> int:
    """Load and validate one ``METRICS_*.jsonl`` file; return the metric count."""
    decoded = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                decoded.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise SchemaError(f"{path}:{number} is not valid JSON: {error}") from error
    try:
        return validate_metrics_lines(decoded)
    except SchemaError as error:
        raise SchemaError(f"{path}: {error}") from error
