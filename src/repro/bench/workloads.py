"""Query-workload generation for the benchmark experiments.

The paper evaluates every setting over 50 UTK queries whose regions are
axis-parallel hyper-cubes of side length ``sigma`` (a percentage of the axis
length), placed at random in the preference domain.  This module reproduces
that workload generator and records both the paper's parameter grid (Table 1)
and the scaled-down defaults used by the pure-Python harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.region import Region, hyperrectangle
from repro.exceptions import InvalidQueryError

#: Parameter grid of the paper's Table 1 (defaults in the middle of each list).
PAPER_PARAMETERS = {
    "cardinality": [100_000, 200_000, 400_000, 800_000, 1_600_000],
    "cardinality_default": 400_000,
    "dimensionality": [2, 3, 4, 5, 6, 7],
    "dimensionality_default": 4,
    "k": [1, 5, 10, 20, 50, 100],
    "k_default": 10,
    "sigma": [0.001, 0.005, 0.01, 0.05, 0.10],
    "sigma_default": 0.01,
    "queries_per_setting": 50,
}

#: Scaled-down defaults for the pure-Python harness (same shape, smaller n).
DEFAULT_PARAMETERS = {
    "cardinality": [1_000, 2_000, 4_000, 8_000, 16_000],
    "cardinality_default": 4_000,
    "dimensionality": [2, 3, 4, 5],
    "dimensionality_default": 4,
    "k": [1, 2, 5, 10, 20],
    "k_default": 5,
    "sigma": [0.001, 0.005, 0.01, 0.05, 0.10],
    "sigma_default": 0.01,
    "queries_per_setting": 3,
}


def random_region(
    data_dimensionality: int, sigma: float, rng: np.random.Generator | None = None
) -> Region:
    """A random axis-parallel hyper-cube region of side length ``sigma``.

    ``sigma`` is expressed as a fraction of the preference-domain axis length
    (the paper's percentage ``sigma``).  The cube is placed uniformly at
    random such that it stays inside the valid simplex
    ``{u >= 0, sum(u) <= 1}``.
    """
    rng = np.random.default_rng() if rng is None else rng
    return hyperrectangle(*_random_cube(data_dimensionality - 1, sigma, rng))


def _random_cube(dim: int, sigma: float, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Corner pair of a random hyper-cube region inside the valid simplex."""
    if not 0.0 < sigma < 1.0:
        raise InvalidQueryError("sigma must be in (0, 1)")
    if dim < 1:
        raise InvalidQueryError("data dimensionality must be at least 2")
    for _ in range(1_000):
        lower = rng.uniform(0.0, 1.0 - sigma, size=dim)
        upper = lower + sigma
        if upper.sum() <= 1.0 - 1e-9:
            return lower, upper
    # Fall back to a corner placement near the origin; the side length is
    # capped so that dim * (margin + side) stays below 1 for every dim/sigma
    # combination (large sigmas can make the random placement unsatisfiable).
    margin = 1e-3
    side = min(sigma, (1.0 - 1e-6) / dim - 2.0 * margin)
    if side <= 0.0:
        raise InvalidQueryError(f"no valid cube of side {sigma} fits the {dim}-dimensional simplex")
    lower = np.full(dim, margin)
    return lower, lower + side


@dataclass(frozen=True)
class QuerySpec:
    """One UTK query of a workload: its region, ``k`` and identifying seed."""

    region: Region
    k: int
    seed: int


def query_workload(data_dimensionality: int, k: int, sigma: float,
                   count: int, seed: int = 0) -> list[QuerySpec]:
    """A reproducible workload of ``count`` random UTK queries."""
    rng = np.random.default_rng(seed)
    specs = []
    for position in range(count):
        region = random_region(data_dimensionality, sigma, rng)
        specs.append(QuerySpec(region=region, k=k, seed=seed * 1_000 + position))
    return specs


# --------------------------------------------------------------- query streams
def zipfian_k(k_choices, exponent: float, rng: np.random.Generator) -> int:
    """Draw ``k`` from ``k_choices`` with Zipf-distributed rank popularity.

    The first choice is the most popular (probability proportional to
    ``1 / rank ** exponent``), mimicking real serving traffic where small
    ``k`` dominates.
    """
    k_choices = list(k_choices)
    if not k_choices:
        raise InvalidQueryError("k_choices must be non-empty")
    ranks = np.arange(1, len(k_choices) + 1, dtype=float)
    weights = ranks ** (-float(exponent))
    probabilities = weights / weights.sum()
    return int(k_choices[int(rng.choice(len(k_choices), p=probabilities))])


def _subcube(lower: np.ndarray, upper: np.ndarray, rng: np.random.Generator) -> tuple[
    np.ndarray, np.ndarray
]:
    """A random sub-rectangle strictly inside ``[lower, upper]``."""
    span = upper - lower
    shrink = rng.uniform(0.35, 0.75)
    new_span = span * shrink
    offset = rng.uniform(0.0, 1.0, size=lower.shape) * (span - new_span)
    new_lower = lower + offset
    return new_lower, new_lower + new_span


def engine_query_stream(data_dimensionality: int, count: int, *,
                        k_choices=(1, 2, 5, 10),
                        zipf_exponent: float = 1.2,
                        sigma: float = 0.08,
                        parents: int = 4,
                        repeat_prob: float = 0.3,
                        subregion_prob: float = 0.45,
                        drill_k_prob: float = 0.7,
                        seed: int = 0) -> list[QuerySpec]:
    """A serving-style query stream exercising the engine's reuse paths.

    The stream mimics interactive traffic against one dataset: a handful of
    ``parents`` hot regions appear first, after which each query is — with
    the given probabilities — an exact *repeat* of an earlier query (result
    cache), a *sub-region* of a hot region (containment reuse), or a fresh
    random region (cold path).  ``k`` values follow a Zipf distribution over
    ``k_choices`` (small ``k`` dominates, as in real serving traffic), except
    that a sub-region query keeps its anchor's ``k`` with probability
    ``drill_k_prob`` — the drill-down pattern of interactive sensitivity
    analysis, where the user narrows the region while ``k`` stays fixed.
    """
    if count < 0:
        raise InvalidQueryError("count must be non-negative")
    if not 0.0 <= repeat_prob + subregion_prob <= 1.0:
        raise InvalidQueryError("repeat_prob + subregion_prob must be in [0, 1]")
    dim = data_dimensionality - 1
    if dim < 1:
        raise InvalidQueryError("data dimensionality must be at least 2")
    rng = np.random.default_rng(seed)
    parent_corners = [_random_cube(dim, sigma, rng) for _ in range(max(parents, 1))]
    stream: list[QuerySpec] = []
    for position in range(count):
        if position < len(parent_corners):
            # Hot-region anchor queries: broadest k, so every later drill-down
            # (smaller region and/or smaller k) can reuse their filtering.
            lower, upper = parent_corners[position]
            stream.append(QuerySpec(region=hyperrectangle(lower, upper),
                                    k=int(max(k_choices)),
                                    seed=seed * 1_000 + position))
            continue
        roll = rng.random()
        if roll < repeat_prob and stream:
            earlier = stream[int(rng.integers(len(stream)))]
            stream.append(
                QuerySpec(region=earlier.region, k=earlier.k, seed=seed * 1_000 + position)
            )
            continue
        if roll < repeat_prob + subregion_prob:
            lower, upper = parent_corners[int(rng.integers(len(parent_corners)))]
            region = hyperrectangle(*_subcube(lower, upper, rng))
            if rng.random() < drill_k_prob:
                k = int(max(k_choices))
            else:
                k = zipfian_k(k_choices, zipf_exponent, rng)
        else:
            region = hyperrectangle(*_random_cube(dim, sigma, rng))
            k = zipfian_k(k_choices, zipf_exponent, rng)
        stream.append(QuerySpec(region=region, k=k, seed=seed * 1_000 + position))
    return stream
