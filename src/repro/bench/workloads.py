"""Query-workload generation for the benchmark experiments.

The paper evaluates every setting over 50 UTK queries whose regions are
axis-parallel hyper-cubes of side length ``sigma`` (a percentage of the axis
length), placed at random in the preference domain.  This module reproduces
that workload generator and records both the paper's parameter grid (Table 1)
and the scaled-down defaults used by the pure-Python harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.region import Region, hyperrectangle
from repro.exceptions import InvalidQueryError

#: Parameter grid of the paper's Table 1 (defaults in the middle of each list).
PAPER_PARAMETERS = {
    "cardinality": [100_000, 200_000, 400_000, 800_000, 1_600_000],
    "cardinality_default": 400_000,
    "dimensionality": [2, 3, 4, 5, 6, 7],
    "dimensionality_default": 4,
    "k": [1, 5, 10, 20, 50, 100],
    "k_default": 10,
    "sigma": [0.001, 0.005, 0.01, 0.05, 0.10],
    "sigma_default": 0.01,
    "queries_per_setting": 50,
}

#: Scaled-down defaults for the pure-Python harness (same shape, smaller n).
DEFAULT_PARAMETERS = {
    "cardinality": [1_000, 2_000, 4_000, 8_000, 16_000],
    "cardinality_default": 4_000,
    "dimensionality": [2, 3, 4, 5],
    "dimensionality_default": 4,
    "k": [1, 2, 5, 10, 20],
    "k_default": 5,
    "sigma": [0.001, 0.005, 0.01, 0.05, 0.10],
    "sigma_default": 0.01,
    "queries_per_setting": 3,
}


def random_region(data_dimensionality: int, sigma: float,
                  rng: np.random.Generator | None = None) -> Region:
    """A random axis-parallel hyper-cube region of side length ``sigma``.

    ``sigma`` is expressed as a fraction of the preference-domain axis length
    (the paper's percentage ``sigma``).  The cube is placed uniformly at
    random such that it stays inside the valid simplex
    ``{u >= 0, sum(u) <= 1}``.
    """
    if not 0.0 < sigma < 1.0:
        raise InvalidQueryError("sigma must be in (0, 1)")
    dim = data_dimensionality - 1
    if dim < 1:
        raise InvalidQueryError("data dimensionality must be at least 2")
    rng = np.random.default_rng() if rng is None else rng
    side = sigma
    for _ in range(1_000):
        lower = rng.uniform(0.0, 1.0 - side, size=dim)
        upper = lower + side
        if upper.sum() <= 1.0 - 1e-9:
            return hyperrectangle(lower, upper)
    # Fall back to a corner placement near the origin, always valid since
    # side * dim < 1 is enforced by the retry bound in practice.
    lower = np.full(dim, 1e-3)
    upper = lower + min(side, (1.0 - 2e-3) / dim)
    return hyperrectangle(lower, upper)


@dataclass(frozen=True)
class QuerySpec:
    """One UTK query of a workload: its region, ``k`` and identifying seed."""

    region: Region
    k: int
    seed: int


def query_workload(data_dimensionality: int, k: int, sigma: float,
                   count: int, seed: int = 0) -> list[QuerySpec]:
    """A reproducible workload of ``count`` random UTK queries."""
    rng = np.random.default_rng(seed)
    specs = []
    for position in range(count):
        region = random_region(data_dimensionality, sigma, rng)
        specs.append(QuerySpec(region=region, k=k, seed=seed * 1_000 + position))
    return specs
