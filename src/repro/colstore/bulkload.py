"""Streaming STR bulk load: build a :class:`PagedRTree` without holding the
dataset in memory.

The in-memory :meth:`RTree.bulk_load` materializes the full point matrix and
argsorts it wholesale.  At 10M+ records the colstore path must not: this
loader reproduces the exact STR recursion (near-even slabs per axis, leaves
cut to ``max_entries``, parents packed by MBB-centre lexsort) over an id
**order file** in a scratch directory, touching at most ``budget_rows``
record coordinates at a time:

* ranges that fit the budget sort in memory (a stable argsort of one gathered
  key column);
* larger ranges run an external sample-splitter bucket sort — sample the key
  column for quantile splitters, count bucket occupancy in one chunked pass,
  scatter ids into a second scratch file in a second pass, then stable-sort
  each bucket in memory.  Ties across bucket boundaries keep the original
  order (buckets partition by key value and the scatter is stable), so the
  result matches a single stable argsort;
* leaf MBBs come from chunked gathers reduced with ``minimum.reduceat`` —
  leaves are contiguous spans of the order file, so one gather serves many
  leaves;
* the upper levels are O(n / fanout) nodes and build in memory, then
  everything streams top-down into the page file via
  :func:`~repro.colstore.pages.write_pages` (leaf entry ids live in a third
  scratch memmap, never in RAM at once).

Peak resident memory is O(budget_rows + n / fanout), independent of ``n``.
"""

from __future__ import annotations

import math
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.colstore.pages import DEFAULT_FANOUT, write_pages
from repro.dynamic.store import RecordStore
from repro.exceptions import InvalidDatasetError

#: Default number of record coordinates a single sort/gather pass may touch.
DEFAULT_BUDGET_ROWS = 1 << 20

#: Rows per streaming chunk for liveness scans and scatter passes.
_CHUNK_ROWS = 1 << 18


class _Source:
    """Uniform chunked access to a :class:`RecordStore` or an ``(n, d)`` array."""

    def __init__(self, source):
        if isinstance(source, RecordStore):
            self.high_water = source.high_water
            self.d = source.dimensionality
            self.column = source.column
            self.active_mask = source.active_mask
            self.n_active = len(source)
        else:
            values = np.asarray(source, dtype=float)
            if values.ndim != 2:
                raise InvalidDatasetError("bulk load expects an (n, d) matrix")
            self.high_water = values.shape[0]
            self.d = values.shape[1]
            self.column = lambda axis: values[:, axis]
            self.active_mask = lambda start, stop: np.ones(stop - start, dtype=bool)
            self.n_active = values.shape[0]


def _write_active_order(source: _Source, order: np.memmap) -> None:
    """Fill the order file with the active ids, ascending, chunk by chunk."""
    filled = 0
    for start in range(0, source.high_water, _CHUNK_ROWS):
        stop = min(start + _CHUNK_ROWS, source.high_water)
        ids = np.flatnonzero(source.active_mask(start, stop)) + start
        order[filled:filled + ids.shape[0]] = ids
        filled += ids.shape[0]


def _external_sort(order, aux, col, lo: int, hi: int, budget: int) -> None:
    """Stable-sort ``order[lo:hi]`` by ``col`` without gathering it at once."""
    m = hi - lo
    n_buckets = min(4096, max(2, 2 * math.ceil(m / budget)))
    # Quantile splitters from a strided sample of the keys.
    step = max(1, m // min(m, n_buckets * 64))
    sample = np.sort(col[np.asarray(order[lo:hi:step])])
    cuts = (np.arange(1, n_buckets) * sample.shape[0]) // n_buckets
    splitters = sample[cuts]
    # Pass 1: bucket occupancy.
    counts = np.zeros(n_buckets, dtype=np.int64)
    for start in range(lo, hi, budget):
        ids = np.asarray(order[start:min(start + budget, hi)])
        buckets = np.searchsorted(splitters, col[ids], side="right")
        counts += np.bincount(buckets, minlength=n_buckets)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    cursors = offsets[:-1].copy()
    # Pass 2: stable scatter into the aux file.
    for start in range(lo, hi, budget):
        ids = np.asarray(order[start:min(start + budget, hi)])
        buckets = np.searchsorted(splitters, col[ids], side="right")
        by_bucket = np.argsort(buckets, kind="stable")
        ids, buckets = ids[by_bucket], buckets[by_bucket]
        present, first, runs = np.unique(buckets, return_index=True, return_counts=True)
        for bucket, begin, run in zip(present, first, runs):
            at = lo + cursors[bucket]
            aux[at:at + run] = ids[begin:begin + run]
            cursors[bucket] += run
    # Pass 3: each bucket now fits in memory (equal-key pileups may exceed the
    # budget, but they are already in stable order and sort as a no-op).
    for bucket in range(n_buckets):
        begin, end = lo + offsets[bucket], lo + offsets[bucket + 1]
        if end <= begin:
            continue
        ids = np.asarray(aux[begin:end])
        order[begin:end] = ids[np.argsort(col[ids], kind="stable")]


class _Builder:
    def __init__(self, source: _Source, scratch: Path, *, max_entries: int, budget_rows: int):
        self.source = source
        self.capacity = max_entries
        self.budget = max(max_entries, int(budget_rows))
        n = source.n_active
        self.order = np.memmap(scratch / "order.bin", dtype=np.int64, mode="w+",
                               shape=(max(n, 1),))
        self._aux: np.memmap | None = None
        self._scratch = scratch
        self.bounds: list[tuple[int, int]] = []
        _write_active_order(source, self.order)

    def _sort_range(self, lo: int, hi: int, axis: int) -> None:
        col = self.source.column(axis)
        if hi - lo <= self.budget:
            ids = np.asarray(self.order[lo:hi])
            self.order[lo:hi] = ids[np.argsort(col[ids], kind="stable")]
            return
        if self._aux is None:
            self._aux = np.memmap(self._scratch / "aux.bin", dtype=np.int64,
                                  mode="w+", shape=self.order.shape)
        _external_sort(self.order, self._aux, col, lo, hi, self.budget)

    def tile(self, lo: int, hi: int, axis: int) -> None:
        """Mirror of :meth:`RTree._str_partition` over the order file."""
        capacity, d = self.capacity, self.source.d
        count = hi - lo
        if count <= capacity:
            self.bounds.append((lo, hi))
            return
        self._sort_range(lo, hi, axis)
        leaf_count = math.ceil(count / capacity)
        slabs = math.ceil(leaf_count ** (1.0 / (d - axis))) if axis < d - 1 else leaf_count
        start = lo
        for size in _even_sizes(count, slabs):
            begin, end = start, start + size
            start = end
            if axis + 1 < d and end - begin > capacity:
                self.tile(begin, end, axis + 1)
            else:
                inner = begin
                for piece in _even_sizes(end - begin, math.ceil((end - begin) / capacity)):
                    self.bounds.append((inner, inner + piece))
                    inner += piece

    def leaf_mbbs(self) -> tuple[np.ndarray, np.ndarray]:
        """MBBs of the tiled leaves via chunked gather + segmented reduce."""
        starts = np.array([lo for lo, _ in self.bounds], dtype=np.int64)
        ends = np.array([hi for _, hi in self.bounds], dtype=np.int64)
        n_leaves, d = starts.shape[0], self.source.d
        lower = np.empty((n_leaves, d))
        upper = np.empty((n_leaves, d))
        leaves_per_pass = max(1, self.budget // self.capacity)
        for first in range(0, n_leaves, leaves_per_pass):
            last = min(first + leaves_per_pass, n_leaves)
            span = np.asarray(self.order[starts[first]:ends[last - 1]])
            cuts = starts[first:last] - starts[first]
            for axis in range(d):
                keys = self.source.column(axis)[span]
                lower[first:last, axis] = np.minimum.reduceat(keys, cuts)
                upper[first:last, axis] = np.maximum.reduceat(keys, cuts)
        return lower, upper


def _even_sizes(count: int, parts: int) -> list[int]:
    base, remainder = divmod(count, parts)
    return [base + 1] * remainder + [base] * (parts - remainder)


def _centre_order(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    centres = (lower + upper) / 2.0
    return np.lexsort(tuple(centres[:, axis] for axis in reversed(range(centres.shape[1]))))


def _pack_levels(leaf_lower, leaf_upper, leaf_starts, leaf_counts, capacity: int):
    """Build all tree levels bottom-up; returns them root-first.

    Each level dict holds the node MBBs plus either scratch-file spans
    (leaves) or a contiguous child slice into the next level down (internal
    nodes).  Every level is stored in its *written* order: children are
    lexsorted by MBB centre before grouping (as :meth:`RTree._pack_upwards`
    does), so a parent's children occupy a contiguous run of page ids.
    """
    levels = [{
        "is_leaf": True,
        "lower": leaf_lower,
        "upper": leaf_upper,
        "starts": leaf_starts,
        "counts": leaf_counts,
    }]
    while levels[-1]["lower"].shape[0] > 1:
        nodes = levels[-1]
        m = nodes["lower"].shape[0]
        perm = _centre_order(nodes["lower"], nodes["upper"])
        for key in ("lower", "upper", "starts", "counts", "child_start", "child_count"):
            if key in nodes:
                nodes[key] = nodes[key][perm]
        sizes = np.array(_even_sizes(m, math.ceil(m / capacity)), dtype=np.int64)
        cuts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        levels.append({
            "is_leaf": False,
            "lower": np.minimum.reduceat(nodes["lower"], cuts, axis=0),
            "upper": np.maximum.reduceat(nodes["upper"], cuts, axis=0),
            "child_start": cuts,
            "child_count": sizes,
        })
    levels.reverse()
    return levels


def build_paged_rtree(
    source,
    path,
    *,
    max_entries: int = DEFAULT_FANOUT,
    budget_rows: int = DEFAULT_BUDGET_ROWS,
    page_size: int | None = None,
    scratch_dir=None,
) -> dict:
    """Bulk-load the active records of ``source`` into a page file at ``path``.

    ``source`` is any :class:`RecordStore` (tombstoned rows are skipped; leaf
    entries carry stable ids) or a plain ``(n, d)`` array.  ``budget_rows``
    bounds the coordinates touched per pass; scratch files live under
    ``scratch_dir`` (a temp directory by default) and are removed on return.
    Returns the page-file meta mapping.
    """
    source = _Source(source)
    d = source.d
    n = source.n_active
    if n == 0:
        empty = np.zeros((1, max(d, 1)))
        return write_pages(path, {
            "dimension": d,
            "size": 0,
            "node_lower": np.full_like(empty, np.nan),
            "node_upper": np.full_like(empty, np.nan),
            "node_is_leaf": np.ones(1, dtype=bool),
            "node_first": np.zeros(1, dtype=np.int64),
            "node_count": np.zeros(1, dtype=np.int64),
            "child_nodes": np.empty(0, dtype=np.int64),
            "entry_ids": np.empty(0, dtype=np.int64),
        }, fanout=max_entries, page_size=page_size)
    scratch = Path(tempfile.mkdtemp(prefix="colstore-str-", dir=scratch_dir))
    try:
        builder = _Builder(source, scratch, max_entries=max_entries,
                           budget_rows=budget_rows)
        builder.tile(0, n, axis=0)
        leaf_lower, leaf_upper = builder.leaf_mbbs()
        starts = np.array([lo for lo, _ in builder.bounds], dtype=np.int64)
        counts = np.array([hi - lo for lo, hi in builder.bounds], dtype=np.int64)
        levels = _pack_levels(leaf_lower, leaf_upper, starts, counts, max_entries)
        flat = _flatten_levels(levels, builder.order, scratch, d, n)
        return write_pages(path, flat, fanout=max_entries, page_size=page_size)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _flatten_levels(levels, order, scratch: Path, d: int, n: int) -> dict:
    """Concatenate root-first levels into the :func:`write_pages` layout.

    Node-level arrays are O(n / fanout) and live in memory; the leaf entry
    ids are gathered from the order file into a scratch memmap chunk by
    chunk, so the flattened entry list never materializes in RAM.
    """
    offsets = np.cumsum([0] + [level["lower"].shape[0] for level in levels])
    node_lower = np.concatenate([level["lower"] for level in levels])
    node_upper = np.concatenate([level["upper"] for level in levels])
    node_is_leaf = np.concatenate([
        np.full(level["lower"].shape[0], level["is_leaf"], dtype=bool) for level in levels
    ])
    node_first = np.zeros(node_lower.shape[0], dtype=np.int64)
    node_count = np.zeros(node_lower.shape[0], dtype=np.int64)
    child_chunks: list[np.ndarray] = []
    child_filled = 0
    entry_ids = np.memmap(scratch / "entries.bin", dtype=np.int64, mode="w+",
                          shape=(max(n, 1),))
    entry_filled = 0
    for depth, level in enumerate(levels):
        at = offsets[depth]
        m = level["lower"].shape[0]
        if level["is_leaf"]:
            counts = level["counts"]
            node_count[at:at + m] = counts
            node_first[at:at + m] = entry_filled + np.cumsum(counts) - counts
            for j in range(m):
                lo = int(level["starts"][j])
                run = int(counts[j])
                entry_ids[entry_filled:entry_filled + run] = order[lo:lo + run]
                entry_filled += run
        else:
            counts = level["child_count"]
            node_count[at:at + m] = counts
            node_first[at:at + m] = child_filled + np.cumsum(counts) - counts
            # Children of this level occupy a contiguous run of the next
            # level's page ids: expand each node's (child_start, count) span.
            total = int(counts.sum())
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            child_chunks.append(
                offsets[depth + 1] + np.repeat(level["child_start"], counts) + within
            )
            child_filled += total
    return {
        "dimension": d,
        "size": n,
        "node_lower": node_lower,
        "node_upper": node_upper,
        "node_is_leaf": node_is_leaf,
        "node_first": node_first,
        "node_count": node_count,
        "child_nodes": (np.concatenate(child_chunks) if child_chunks
                        else np.empty(0, dtype=np.int64)),
        "entry_ids": entry_ids,
    }
