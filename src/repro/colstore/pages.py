"""Paged on-disk R-tree nodes with a pinning LRU buffer pool.

The serve tier traverses :class:`~repro.serve.packed.PackedRTree` over flat
arrays in shared memory; at 10M+ records those arrays should live on disk.
This module stores one R-tree node per fixed-size **page** in a single file:

* :func:`page_dtype` defines the page layout — a small header (leaf flag,
  entry/child count), the node MBB, then ``fanout`` child page ids (internal
  nodes) or record ids (leaves), padded to a power-of-two page size;
* :func:`write_pages` serializes any :meth:`RTree.flatten`-shaped mapping
  (BFS order, page id = node position, root = page 0) in streaming chunks,
  so the arrays may be memmaps far larger than RAM;
* :class:`BufferPool` owns the resident page set: bounded capacity, LRU
  eviction of unpinned frames, pin/unpin accounting, and hit/miss/eviction
  stats published as ``repro_bufferpool_events_total`` and
  ``repro_bufferpool_resident_pages`` while observability is enabled.
  Pinned pages are never evicted; requesting a page while every frame is
  pinned raises :class:`~repro.exceptions.StorageError`;
* :class:`PagedRTree` satisfies the exact traversal contract of
  ``PackedRTree`` (``dimension``/``root``/``count_access`` on the tree;
  ``is_leaf``/``mbb``/``children``/``entries`` on node proxies), so BBS and
  the skyband layers run unchanged over a tree that is read page by page
  through the pool.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.exceptions import StorageError
from repro.index.mbb import MBB
from repro.index.rtree import ACCESS_OPS
from repro.obs import runtime as _obs

#: On-disk page-file schema version (bump on incompatible layout changes).
PAGE_SCHEMA = 1

#: Default fanout of pages written from a streaming bulk load.  Larger than
#: the in-memory tree's 16 on purpose: a page is one I/O unit, so filling it
#: lowers tree height (10M records, d=3 → height 4).
DEFAULT_FANOUT = 64

#: Default resident-set bound of a :class:`BufferPool`, in pages.
DEFAULT_POOL_PAGES = 1024

META_SUFFIX = ".meta.json"


def page_dtype(d: int, fanout: int, page_size: int | None = None):
    """The structured dtype of one page and the padded page size in bytes.

    Layout: ``u8`` header (leaf flag, pad, ``u16`` count, pad), ``2*d`` f64
    MBB corners, ``fanout`` i64 ids, zero-padded to ``page_size`` (default:
    the next power of two ≥ the payload, at least 256 bytes).
    """
    d = max(int(d), 1)
    fields = [
        ("is_leaf", "u1"),
        ("_pad0", "u1"),
        ("count", "<u2"),
        ("_pad1", "<u4"),
        ("lower", "<f8", (d,)),
        ("upper", "<f8", (d,)),
        ("ids", "<i8", (int(fanout),)),
    ]
    payload = np.dtype(fields).itemsize
    if page_size is None:
        page_size = 1 << max(8, (payload - 1).bit_length())
    page_size = int(page_size)
    if page_size < payload:
        raise StorageError(
            f"page_size {page_size} cannot hold d={d}, fanout={fanout} ({payload} bytes)"
        )
    if page_size > payload:
        fields.append(("_tail", f"V{page_size - payload}"))
    return np.dtype(fields), page_size


def _tree_height(flat: dict) -> int:
    position, height = 0, 1
    while not bool(flat["node_is_leaf"][position]):
        position = int(flat["child_nodes"][int(flat["node_first"][position])])
        height += 1
    return height


def write_pages(
    path,
    flat: dict,
    *,
    fanout: int | None = None,
    page_size: int | None = None,
    chunk_pages: int = 8192,
) -> dict:
    """Write a :meth:`RTree.flatten`-shaped mapping as a page file + meta.

    ``flat`` arrays may be memmaps: pages are assembled and written in
    chunks of ``chunk_pages``, so peak memory is O(chunk), never O(tree).
    Returns the meta mapping, also persisted as ``<path>.meta.json``.
    """
    path = Path(path)
    node_count = np.asarray(flat["node_count"])
    node_first = np.asarray(flat["node_first"])
    node_is_leaf = np.asarray(flat["node_is_leaf"])
    m = node_count.shape[0]
    max_count = int(node_count.max()) if m else 0
    fanout = int(fanout) if fanout is not None else max(max_count, 2)
    if max_count > fanout:
        raise StorageError(f"node with {max_count} entries exceeds fanout {fanout}")
    dtype, page_size = page_dtype(flat["dimension"], fanout, page_size)
    child_nodes = flat["child_nodes"]
    entry_ids = flat["entry_ids"]
    n_leaves = 0
    with open(path, "wb") as handle:
        for start in range(0, m, chunk_pages):
            stop = min(start + chunk_pages, m)
            chunk = np.zeros(stop - start, dtype=dtype)
            chunk["is_leaf"] = node_is_leaf[start:stop]
            chunk["count"] = node_count[start:stop]
            chunk["lower"] = flat["node_lower"][start:stop]
            chunk["upper"] = flat["node_upper"][start:stop]
            chunk["ids"].fill(-1)
            counts = node_count[start:stop]
            total = int(counts.sum())
            if total:
                rows = np.repeat(np.arange(stop - start), counts)
                offsets = np.cumsum(counts) - counts
                within = np.arange(total) - np.repeat(offsets, counts)
                source = np.repeat(node_first[start:stop], counts) + within
                leaf_rows = node_is_leaf[start:stop][rows]
                if leaf_rows.any():
                    chunk["ids"][rows[leaf_rows], within[leaf_rows]] = np.asarray(
                        entry_ids[source[leaf_rows]]
                    )
                inner = ~leaf_rows
                if inner.any():
                    chunk["ids"][rows[inner], within[inner]] = np.asarray(
                        child_nodes[source[inner]]
                    )
            n_leaves += int(np.count_nonzero(node_is_leaf[start:stop]))
            chunk.tofile(handle)
    meta = {
        "schema": PAGE_SCHEMA,
        "dimension": int(flat["dimension"]),
        "size": int(flat["size"]),
        "fanout": fanout,
        "page_size": page_size,
        "n_pages": int(m),
        "n_leaves": n_leaves,
        "height": _tree_height(flat) if m else 0,
    }
    meta_path = Path(str(path) + META_SUFFIX)
    temp = meta_path.with_suffix(".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2)
        handle.write("\n")
    os.replace(temp, meta_path)
    return meta


def read_meta(path) -> dict:
    """Load and validate the sidecar meta of a page file."""
    meta_path = Path(str(path) + META_SUFFIX)
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
    except FileNotFoundError as exc:
        raise StorageError(f"{path} has no page meta ({meta_path.name} missing)") from exc
    if int(meta.get("schema", -1)) != PAGE_SCHEMA:
        raise StorageError(
            f"unsupported page schema {meta.get('schema')!r} "
            f"(this build reads schema {PAGE_SCHEMA})"
        )
    return meta


class _PageRecord:
    """One parsed node, owned by its pool frame (copied out of the mapping,
    so an evicted page's data really leaves the resident set)."""

    __slots__ = ("is_leaf", "count", "lower", "upper", "ids")

    def __init__(self, raw):
        self.is_leaf = bool(raw["is_leaf"])
        self.count = int(raw["count"])
        self.lower = np.array(raw["lower"])
        self.upper = np.array(raw["upper"])
        self.ids = np.array(raw["ids"][: self.count])


class _Frame:
    __slots__ = ("node", "pins")

    def __init__(self, node: _PageRecord):
        self.node = node
        self.pins = 0


class BufferPool:
    """Bounded resident set of parsed pages with pinning and LRU eviction.

    Invariants (covered by the buffer-pool tests):

    * a frame with ``pins > 0`` is never evicted;
    * ``hits + misses`` equals the number of lookups, ``misses`` equals the
      pages loaded, and ``resident() == loads - evictions``;
    * the resident set never exceeds ``capacity``; when every frame is
      pinned and a new page must be loaded, :class:`StorageError` is raised
      rather than silently over-committing.
    """

    def __init__(self, pages, *, capacity: int = DEFAULT_POOL_PAGES):
        self._pages = pages
        self.capacity = max(1, int(capacity))
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "evictions": 0}

    def resident(self) -> int:
        """Number of pages currently resident."""
        return len(self._frames)

    def pinned(self) -> int:
        """Number of resident pages with at least one pin."""
        return sum(1 for frame in self._frames.values() if frame.pins)

    def _event(self, event: str, n: int = 1) -> None:
        self.stats[event] += n
        if _obs._ENABLED:
            from repro.obs.names import BUFFERPOOL_EVENTS

            BUFFERPOOL_EVENTS.inc(n, event=event.rstrip("s"))

    def _publish_resident(self) -> None:
        if _obs._ENABLED:
            from repro.obs.names import BUFFERPOOL_RESIDENT

            BUFFERPOOL_RESIDENT.set(len(self._frames))

    def _frame(self, page_id: int) -> _Frame:
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            self._event("hits")
            return frame
        self._event("misses")
        while len(self._frames) >= self.capacity:
            victim = next(
                (key for key, cand in self._frames.items() if cand.pins == 0), None
            )
            if victim is None:
                raise StorageError(
                    f"buffer pool exhausted: all {self.capacity} frames pinned"
                )
            del self._frames[victim]
            self._event("evictions")
        frame = _Frame(_PageRecord(self._pages[int(page_id)]))
        self._frames[page_id] = frame
        self._publish_resident()
        return frame

    def get(self, page_id: int) -> _PageRecord:
        """The parsed node of ``page_id`` (loaded through the pool)."""
        return self._frame(page_id).node

    def pin(self, page_id: int) -> _PageRecord:
        """Load (if needed) and pin a page; it cannot be evicted until every
        :meth:`unpin` balanced every pin."""
        frame = self._frame(page_id)
        frame.pins += 1
        return frame.node

    def unpin(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None or frame.pins <= 0:
            raise StorageError(f"page {page_id} is not pinned")
        frame.pins -= 1

    @contextmanager
    def pinned_page(self, page_id: int):
        node = self.pin(page_id)
        try:
            yield node
        finally:
            self.unpin(page_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool(resident={len(self._frames)}/{self.capacity}, "
            f"stats={self.stats})"
        )


class _PagedNode:
    """Lazy proxy for one page of a :class:`PagedRTree`.

    Mirrors :class:`repro.serve.packed._PackedNode`; every attribute access
    goes through the tree's buffer pool, and the page stays pinned while its
    children/entries are being read out.
    """

    __slots__ = ("_tree", "_page")

    def __init__(self, tree: "PagedRTree", page: int):
        self._tree = tree
        self._page = page

    @property
    def is_leaf(self) -> bool:
        return self._tree.pool.get(self._page).is_leaf

    @property
    def mbb(self) -> MBB | None:
        node = self._tree.pool.get(self._page)
        if np.isnan(node.lower[0]):
            return None
        return MBB(node.lower, node.upper)

    @property
    def children(self) -> list["_PagedNode"]:
        with self._tree.pool.pinned_page(self._page) as node:
            return [_PagedNode(self._tree, int(child)) for child in node.ids]

    @property
    def entries(self) -> list[tuple[int, np.ndarray]]:
        values = self._tree.values
        with self._tree.pool.pinned_page(self._page) as node:
            return [(int(rid), values[int(rid)]) for rid in node.ids]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"_PagedNode({kind}, page={self._page})"


class PagedRTree:
    """Read-only R-tree traversed page by page through a buffer pool.

    Parameters
    ----------
    path:
        The page file written by :func:`write_pages` (its ``.meta.json``
        sidecar must be present).
    values:
        Record buffer prefix; leaf entry ids index into it (for a colstore
        this is :attr:`ColumnarRecordStore.matrix` — a zero-copy mmap view).
    pool_pages:
        Resident-set bound of the buffer pool.
    """

    def __init__(self, path, values, *, pool_pages: int = DEFAULT_POOL_PAGES):
        self.path = Path(path)
        meta = read_meta(self.path)
        self.meta = meta
        self.dimension = int(meta["dimension"]) or None
        self.size = int(meta["size"])
        self.fanout = int(meta["fanout"])
        dtype, _ = page_dtype(meta["dimension"], self.fanout, meta["page_size"])
        self._pages = np.memmap(self.path, dtype=dtype, mode="r")
        if self._pages.shape[0] != int(meta["n_pages"]):
            raise StorageError(
                f"{path}: file holds {self._pages.shape[0]} pages, "
                f"meta says {meta['n_pages']}"
            )
        self.pool = BufferPool(self._pages, capacity=pool_pages)
        self.values = values
        self.access_counts: dict[str, int] = dict.fromkeys(ACCESS_OPS, 0)

    @property
    def root(self) -> _PagedNode:
        return _PagedNode(self, 0)

    def count_access(self, op: str, n: int = 1) -> None:
        """Same tally contract as :meth:`RTree.count_access`."""
        if not n:
            return
        self.access_counts[op] += n
        if _obs._ENABLED:
            from repro.obs.names import RTREE_NODE_ACCESSES

            RTREE_NODE_ACCESSES.inc(n, op=op)

    def height(self) -> int:
        """Number of levels (a single leaf root has height 1)."""
        return int(self.meta["height"])

    def fill_factor(self) -> float:
        """Mean leaf occupancy relative to the fanout."""
        n_leaves = int(self.meta["n_leaves"])
        if not n_leaves:
            return 0.0
        return self.size / (n_leaves * self.fanout)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PagedRTree(size={self.size}, pages={self.meta['n_pages']}, "
            f"fanout={self.fanout}, height={self.meta['height']})"
        )
