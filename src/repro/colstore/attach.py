"""Binding colstore directories to query engines.

Two entry points:

* :func:`materialize` builds a fresh store (and its paged R-tree) from an
  ``(n, d)`` matrix under a directory;
* :func:`attach_engine_inputs` resolves ``make_engine(store="colstore")``:
  either materialize the supplied data, or re-attach a persisted directory
  read-only (building the index file on demand if it is missing).

The conventional index file name inside a store directory is
:data:`INDEX_NAME`; the serve tier uses its own per-generation names.
"""

from __future__ import annotations

from pathlib import Path

from repro.colstore.bulkload import DEFAULT_BUDGET_ROWS, build_paged_rtree
from repro.colstore.pages import DEFAULT_FANOUT, PagedRTree
from repro.colstore.store import ColumnarRecordStore
from repro.exceptions import StorageError

#: Page-file name of the store-resident index built by :func:`materialize`.
INDEX_NAME = "rtree.pages"


def materialize(
    data,
    directory,
    *,
    max_entries: int = DEFAULT_FANOUT,
    budget_rows: int = DEFAULT_BUDGET_ROWS,
    build_index: bool = True,
) -> ColumnarRecordStore:
    """Create a colstore at ``directory`` holding ``data`` (plus its index)."""
    store = ColumnarRecordStore(data, directory=directory)
    if build_index:
        build_paged_rtree(
            store,
            Path(directory) / INDEX_NAME,
            max_entries=max_entries,
            budget_rows=budget_rows,
        )
    store.sync()
    return store


def attach_engine_inputs(data, store_dir, *, pool_pages: int | None = None):
    """``(values, tree)`` for an engine over the colstore backend.

    With ``data`` given, materializes it at ``store_dir`` first; otherwise
    attaches the persisted store there read-only.  The returned values are
    the store's zero-copy mmap view and the tree is a :class:`PagedRTree`
    whose leaf ids index that view (tombstoned rows are unreachable through
    the index, mirroring the dynamic engine's tombstone story).
    """
    if store_dir is None:
        raise StorageError("the colstore backend needs store_dir=<directory>")
    directory = Path(store_dir)
    if data is not None:
        store = materialize(data, directory)
    else:
        store = ColumnarRecordStore.open(directory, mode="r")
    index_path = directory / INDEX_NAME
    if not index_path.exists():
        # The loader only reads the store, so building from a read-only
        # attachment is fine — the page file lands next to the manifest.
        build_paged_rtree(store, index_path)
    options = {} if pool_pages is None else {"pool_pages": pool_pages}
    tree = PagedRTree(index_path, store.matrix, **options)
    return store.matrix, tree
