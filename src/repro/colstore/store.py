"""Memory-mapped columnar record storage: :class:`ColumnarRecordStore`.

The in-memory :class:`~repro.dynamic.store.RecordStore` caps dataset size at
RAM and makes every worker spawn pay full materialization.  This backend
keeps the same contract — stable ids, tombstoned deletes, geometric growth —
but backs the buffer with **memory-mapped column files** on disk:

* each capacity generation is one ``columns.g<N>.bin`` file laid out
  column-major (``(d, capacity)`` C-order), so every column is a contiguous
  on-disk segment.  The :class:`RecordStore`-facing ``(capacity, d)`` buffer
  is the zero-copy transposed view of that mapping — the dominance/halfspace
  kernels run on it directly, and :meth:`column` hands columnar scans a
  contiguous 1-D view, all without a single copy;
* liveness flags live in a parallel ``active.g<N>.bin`` mapping;
* a ``manifest.json`` records the schema version, current generation,
  count/active totals and file names, so :meth:`open` re-attaches a
  persisted directory and :meth:`attach` lets read-only query workers map
  the files directly (no shared-memory segments, no pickling);
* growth allocates the next generation's files and unlinks the retired
  ones — existing mappings in other processes stay valid (POSIX), while a
  stale descriptor's re-attach fails with :class:`FileNotFoundError` and
  triggers the serve tier's refresh-and-retry protocol, exactly like
  retired shm segments.

Optional compressed-at-rest import/export (Parquet) lives in
:mod:`repro.colstore.parquet` behind the ``[parquet]`` extra.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.dynamic.store import RecordStore
from repro.exceptions import StorageError

#: On-disk manifest schema version (bump on incompatible layout changes).
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "manifest.json"


def _columns_name(generation: int) -> str:
    return f"columns.g{generation}.bin"


def _active_name(generation: int) -> str:
    return f"active.g{generation}.bin"


def _map_columns(path: Path, d: int, capacity: int, mode: str) -> np.memmap:
    return np.memmap(path, dtype=np.float64, mode=mode, shape=(d, capacity))


def _map_active(path: Path, capacity: int, mode: str) -> np.memmap:
    return np.memmap(path, dtype=np.bool_, mode=mode, shape=(capacity,))


class ColumnarRecordStore(RecordStore):
    """A :class:`RecordStore` over memory-mapped per-column files.

    Parameters
    ----------
    values:
        Initial ``(n, d)`` matrix; record ``i`` receives id ``i``.
    directory:
        Directory holding the manifest and the column/liveness files
        (created if missing).  An existing store there is overwritten —
        use :meth:`open` to re-attach one instead.
    capacity:
        Optional initial capacity (grows geometrically when exceeded).
    """

    def __init__(self, values, *, directory, capacity: int | None = None):
        # _allocate runs inside super().__init__ and needs this state first
        # (the SharedRecordStore pattern).
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._generation = -1
        self._mode = "w+"
        self._columns: np.memmap | None = None
        self._active_map: np.memmap | None = None
        self._closed = False
        super().__init__(values, capacity=capacity)
        self.sync()

    # -------------------------------------------------------- backend hooks
    def _allocate(self, size: int, d: int) -> tuple[np.ndarray, np.ndarray]:
        """Map the next generation's column/liveness files (zero-filled)."""
        generation = self._generation + 1
        columns = _map_columns(self._directory / _columns_name(generation), d, size, "w+")
        active = _map_active(self._directory / _active_name(generation), size, "w+")
        self._generation = generation
        self._columns = columns
        self._active_map = active
        # The transposed view is the (capacity, d) buffer the base class
        # mutates; each logical column stays contiguous on disk.
        return columns.T, active

    def _discard(self, buffer: np.ndarray, active: np.ndarray) -> None:
        """Unlink the retired generation's files (mappings stay valid)."""
        retired = self._generation - 1
        if retired < 0:
            return
        for name in (_columns_name(retired), _active_name(retired)):
            try:
                os.unlink(self._directory / name)
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------- open/attach
    @classmethod
    def from_chunks(cls, chunks, directory, *,
                    capacity: int | None = None) -> "ColumnarRecordStore":
        """Build a store by streaming ``(m, d)`` chunks into the files.

        Peak memory is one chunk (plus the mmap page cache); growth is
        geometric, so ``n`` total rows relink the files O(log n) times.
        """
        iterator = iter(chunks)
        try:
            first = next(iterator)
        except StopIteration:
            raise StorageError("from_chunks needs at least one chunk") from None
        store = cls(first, directory=directory, capacity=capacity)
        for chunk in iterator:
            store.extend(chunk)
        store.sync()
        return store

    @classmethod
    def open(cls, directory, *, mode: str = "r+") -> "ColumnarRecordStore":
        """Re-attach a persisted store directory.

        ``mode="r+"`` opens read-write (inserts/deletes allowed);
        ``mode="r"`` maps read-only for query-only consumers.
        """
        directory = Path(directory)
        manifest = read_manifest(directory)
        store = cls.__new__(cls)
        store._directory = directory
        store._generation = int(manifest["generation"])
        store._mode = mode
        store._closed = False
        d, capacity = int(manifest["dimensionality"]), int(manifest["capacity"])
        store._columns = _map_columns(
            directory / manifest["columns_file"], d, capacity, mode
        )
        store._active_map = _map_active(directory / manifest["active_file"], capacity, mode)
        store._buffer = store._columns.T
        store._active = store._active_map
        store._count = int(manifest["count"])
        store._n_active = int(np.count_nonzero(store._active[: store._count]))
        return store

    def insert(self, row) -> int:
        if self._mode == "r":
            raise StorageError("store was opened read-only; re-open with mode='r+'")
        return super().insert(row)

    def extend(self, rows) -> np.ndarray:
        if self._mode == "r":
            raise StorageError("store was opened read-only; re-open with mode='r+'")
        return super().extend(rows)

    def delete(self, record_id: int) -> np.ndarray:
        if self._mode == "r":
            raise StorageError("store was opened read-only; re-open with mode='r+'")
        return super().delete(record_id)

    # --------------------------------------------------------------- columnar
    @property
    def directory(self) -> Path:
        """The directory holding the manifest and column files."""
        return self._directory

    @property
    def generation(self) -> int:
        """Capacity generation (bumps once per grow; names the files)."""
        return self._generation

    def column(self, axis: int) -> np.ndarray:
        """Contiguous zero-copy view of one attribute column (live prefix)."""
        d = self._columns.shape[0]
        if not 0 <= axis < d:
            raise IndexError(f"column {axis} out of range for d={d}")
        return self._columns[axis][: self._count]

    def column_dtypes(self) -> list[str]:
        """Dtype name per column (one homogeneous file per generation)."""
        return [str(self._columns.dtype)] * self._columns.shape[0]

    # ------------------------------------------------------------ persistence
    def manifest(self) -> dict:
        """The manifest payload describing the current on-disk state."""
        return {
            "schema": MANIFEST_SCHEMA,
            "kind": "colstore",
            "generation": self._generation,
            "dimensionality": int(self._columns.shape[0]),
            "capacity": int(self._columns.shape[1]),
            "count": int(self._count),
            "n_active": int(self._n_active),
            "dtype": str(self._columns.dtype),
            "columns_file": _columns_name(self._generation),
            "active_file": _active_name(self._generation),
        }

    def sync(self) -> None:
        """Flush the mappings and rewrite the manifest (crash-consistent:
        the manifest is replaced atomically after the data hit the files)."""
        if self._mode == "r" or self._closed:
            return
        self._columns.flush()
        self._active_map.flush()
        write_manifest(self._directory, self.manifest())

    def close(self) -> None:
        """Flush and drop the mappings; the directory stays attachable."""
        if self._closed:
            return
        self.sync()
        self._closed = True
        self._columns = None
        self._active_map = None

    # ------------------------------------------------------ serve-tier duties
    def mmap_location(self) -> dict:
        """Attachment descriptor for query workers mapping the files directly
        (the colstore analogue of ``SharedRecordStore.shared_location``)."""
        return {
            "kind": "colstore",
            "directory": str(self._directory),
            "columns_file": _columns_name(self._generation),
            "dimensionality": int(self._columns.shape[0]),
            "capacity": int(self._columns.shape[1]),
        }

    def segment_names(self) -> list[str]:
        """No shared-memory segments: file-backed stores leak nothing in
        ``/dev/shm`` (kept for :meth:`ServeEngine.shm_segment_names`)."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarRecordStore(active={self._n_active}, high_water={self._count}, "
            f"d={self.dimensionality}, generation={self._generation}, "
            f"directory={str(self._directory)!r})"
        )


def attach_columns(location: dict, count: int) -> np.ndarray:
    """Map a :meth:`ColumnarRecordStore.mmap_location` descriptor read-only.

    Returns the ``(count, d)`` zero-copy values view.  Raises
    :class:`FileNotFoundError` when the generation was retired (the caller
    refreshes its descriptor and retries, as with stale shm segments).
    """
    path = Path(location["directory"]) / location["columns_file"]
    columns = _map_columns(
        path, int(location["dimensionality"]), int(location["capacity"]), "r"
    )
    return columns.T[: int(count)]


def read_manifest(directory) -> dict:
    """Load and validate a colstore directory manifest."""
    path = Path(directory) / MANIFEST_NAME
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError as exc:
        raise StorageError(f"{directory} is not a colstore directory (no manifest)") from exc
    if manifest.get("kind") != "colstore":
        raise StorageError(f"{path} is not a colstore manifest")
    if int(manifest.get("schema", -1)) != MANIFEST_SCHEMA:
        raise StorageError(
            f"unsupported colstore manifest schema {manifest.get('schema')!r} "
            f"(this build reads schema {MANIFEST_SCHEMA})"
        )
    return manifest


def write_manifest(directory, manifest: dict) -> None:
    """Atomically replace the manifest (write-new + rename)."""
    path = Path(directory) / MANIFEST_NAME
    temp = path.with_suffix(".json.tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    os.replace(temp, path)
