"""Optional compressed-at-rest Parquet import/export for the colstore.

The live format stays raw memory-mapped columns (zero-copy query path);
Parquet is the interchange/archive format.  ``pyarrow`` is an optional
dependency behind the ``[parquet]`` extra — importing this module is always
safe, the dependency is resolved lazily at call time.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import StorageError

PARQUET_AVAILABLE: bool
try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow  # noqa: F401

    PARQUET_AVAILABLE = True
except ImportError:
    PARQUET_AVAILABLE = False


def _require_pyarrow():
    if not PARQUET_AVAILABLE:
        raise StorageError(
            "Parquet import/export needs pyarrow; install the optional extra: "
            "pip install 'repro-utk[parquet]'"
        )
    import pyarrow as pa
    import pyarrow.parquet as pq

    return pa, pq


def export_parquet(store, path, *, batch_rows: int = 1 << 18) -> int:
    """Write the active records of ``store`` to a Parquet file.

    Emits ``id`` plus one ``a<axis>`` column per attribute, streamed in
    batches of ``batch_rows`` active rows.  Returns the rows written.
    """
    pa, pq = _require_pyarrow()
    d = store.dimensionality
    schema = pa.schema([("id", pa.int64())] + [(f"a{j}", pa.float64()) for j in range(d)])
    ids = store.active_ids()
    written = 0
    with pq.ParquetWriter(str(Path(path)), schema) as writer:
        for start in range(0, ids.shape[0], batch_rows):
            batch_ids = ids[start:start + batch_rows]
            rows = store.matrix[batch_ids]
            arrays = [pa.array(batch_ids)] + [
                pa.array(np.ascontiguousarray(rows[:, j])) for j in range(d)
            ]
            writer.write_batch(pa.record_batch(arrays, schema=schema))
            written += batch_ids.shape[0]
    return written


def import_parquet(path, directory, *, batch_rows: int = 1 << 18):
    """Load a Parquet file into a fresh :class:`ColumnarRecordStore`.

    Records are appended in file order and receive fresh dense ids (Parquet
    archives active records only, so original tombstone gaps collapse).
    """
    from repro.colstore.store import ColumnarRecordStore

    pa, pq = _require_pyarrow()
    handle = pq.ParquetFile(str(Path(path)))
    value_names = [name for name in handle.schema_arrow.names if name != "id"]
    if not value_names:
        raise StorageError(f"{path} has no attribute columns")
    store: ColumnarRecordStore | None = None
    for batch in handle.iter_batches(batch_size=batch_rows, columns=value_names):
        rows = np.column_stack([
            np.asarray(batch.column(name), dtype=float) for name in value_names
        ])
        if store is None:
            store = ColumnarRecordStore(rows, directory=directory)
        else:
            for row in rows:
                store.insert(row)
    if store is None:
        store = ColumnarRecordStore(
            np.empty((0, len(value_names))), directory=directory
        )
    store.sync()
    return store
