"""repro.colstore — memory-mapped columnar storage with a paged R-tree.

Scales the UTK stack past RAM: records live in mmap'ed column files
(:class:`ColumnarRecordStore`), the index lives in a paged on-disk node file
traversed through a pinning LRU buffer pool (:class:`PagedRTree` /
:class:`BufferPool`), and :func:`build_paged_rtree` bulk-loads it with
external chunked STR passes that never materialize the dataset.
"""

from repro.colstore.attach import INDEX_NAME, attach_engine_inputs, materialize
from repro.colstore.bulkload import build_paged_rtree
from repro.colstore.pages import BufferPool, PagedRTree, read_meta, write_pages
from repro.colstore.parquet import PARQUET_AVAILABLE, export_parquet, import_parquet
from repro.colstore.store import (
    ColumnarRecordStore,
    attach_columns,
    read_manifest,
    write_manifest,
)

__all__ = [
    "BufferPool",
    "ColumnarRecordStore",
    "INDEX_NAME",
    "PARQUET_AVAILABLE",
    "PagedRTree",
    "attach_columns",
    "attach_engine_inputs",
    "materialize",
    "build_paged_rtree",
    "export_parquet",
    "import_parquet",
    "read_manifest",
    "read_meta",
    "write_manifest",
    "write_pages",
]
