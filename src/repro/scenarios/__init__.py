"""repro.scenarios — the declarative scenario-matrix subsystem.

Crosses workload scenarios (data distribution × traffic shape,
:mod:`~repro.scenarios.spec`) with execution backends
(:mod:`~repro.scenarios.backends`), validates every cell against the SQL
pushdown oracle (:mod:`~repro.scenarios.sql`) and emits the
schema-versioned artifacts CI tracks across runs
(:mod:`~repro.scenarios.matrix`, :mod:`~repro.bench.trend`).
"""

from repro.scenarios.backends import (
    BACKENDS,
    CellOutcome,
    register_backend,
    select_backends,
)
from repro.scenarios.gates import BENCH_GATES, run_gates
from repro.scenarios.matrix import MatrixResult, run_matrix
from repro.scenarios.report import markdown_report, text_report
from repro.scenarios.spec import (
    SCENARIOS,
    TRAFFIC_SHAPES,
    Scenario,
    register_scenario,
    select_scenarios,
)
from repro.scenarios.sql import SQLOracle, available_backends, resolve_backend

__all__ = [
    "BACKENDS",
    "BENCH_GATES",
    "CellOutcome",
    "MatrixResult",
    "SCENARIOS",
    "SQLOracle",
    "Scenario",
    "TRAFFIC_SHAPES",
    "available_backends",
    "markdown_report",
    "register_backend",
    "register_scenario",
    "resolve_backend",
    "run_gates",
    "run_matrix",
    "select_backends",
    "select_scenarios",
    "text_report",
]
