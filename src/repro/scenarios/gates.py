"""The consolidated benchmark gate runner (``repro matrix --gates``).

CI used to list every ``benchmarks/bench_*.py`` smoke gate as its own
workflow step; this module is the single invocation that replaces them.
Each gate keeps its own name, description and BENCH artifact so a failure
stays attributable to one benchmark, and gates run as subprocesses so a
crash (or a gate calling ``sys.exit``) cannot take the matrix down with it.
"""

from __future__ import annotations

import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class BenchGate:
    """One benchmark smoke gate: a script plus its artifact name."""

    name: str
    script: str
    output: str
    description: str

    def command(self, *, smoke: bool = True) -> list[str]:
        command = [sys.executable, self.script]
        if smoke:
            command.append("--smoke")
        command += ["--output", self.output]
        return command


#: The benchmark gates CI runs, in execution order.  Adding a benchmark =
#: one entry here (see CONTRIBUTING).
BENCH_GATES = (
    BenchGate(
        "kernels",
        "benchmarks/bench_kernels.py",
        "BENCH_kernels.json",
        "vectorized kernels must beat the loop path, identical outputs",
    ),
    BenchGate(
        "cell_geometry",
        "benchmarks/bench_cell_geometry.py",
        "BENCH_cell_geometry.json",
        "vertex clips >=3x vs LPs at depth >=8, zero scipy fallbacks",
    ),
    BenchGate(
        "parallel",
        "benchmarks/bench_parallel_scaling.py",
        "BENCH_parallel.json",
        "identical answers, >=1.5x at 4 workers",
    ),
    BenchGate(
        "dynamic",
        "benchmarks/bench_dynamic.py",
        "BENCH_dynamic.json",
        "identical answers to rebuild, >=5x on a low-churn stream",
    ),
    BenchGate(
        "engine_throughput",
        "benchmarks/bench_engine_throughput.py",
        "BENCH_engine_throughput.json",
        "engine serving smoke benchmark",
    ),
    BenchGate(
        "obs_overhead",
        "benchmarks/bench_obs_overhead.py",
        "BENCH_obs_overhead.json",
        "dormant instrumentation <=3% overhead",
    ),
    BenchGate(
        "serve",
        "benchmarks/bench_serve.py",
        "BENCH_serve.json",
        "workers attach shared memory >=3x faster than per-spawn rebuild, "
        "identical answers",
    ),
    BenchGate(
        "colstore",
        "benchmarks/bench_colstore.py",
        "BENCH_colstore.json",
        "streaming STR bulk-load under the RSS cap, colstore answers "
        "bit-identical to the in-memory store",
    ),
)


def run_gates(
    *,
    smoke: bool = True,
    cwd=None,
    progress=None,
    gates=BENCH_GATES,
) -> dict:
    """Run every benchmark gate; return ``{gate name: outcome dict}``.

    Each outcome records the command, exit code, duration and pass/fail.
    Gate stdout/stderr stream through unmodified (prefixed by a banner line)
    so CI logs keep per-gate attribution inside the single step.
    """
    emit = progress or print
    results: dict[str, dict] = {}
    root = Path(cwd) if cwd is not None else Path.cwd()
    for gate in gates:
        command = gate.command(smoke=smoke)
        emit(f"::group-like:: gate {gate.name}: {gate.description}")
        emit(f"$ {' '.join(command)}")
        started = time.perf_counter()
        completed = subprocess.run(command, cwd=root)
        elapsed = time.perf_counter() - started
        passed = completed.returncode == 0
        results[gate.name] = {
            "passed": passed,
            "returncode": completed.returncode,
            "seconds": round(elapsed, 3),
            "output": gate.output,
            "description": gate.description,
        }
        emit(f"gate {gate.name}: {'PASS' if passed else 'FAIL'} in {elapsed:.1f}s")
    return results
