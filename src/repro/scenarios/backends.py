"""Execution backends of the scenario matrix.

Every backend replays the same scenario event list (queries, inserts,
deletes) and reports its query answers in the *stable id space* — record ids
that survive churn, assigned the way :class:`repro.dynamic.DynamicUTKEngine`
assigns them (initial records ``0..n-1``, inserts take the next id, ids are
never reused).  That shared contract is what makes answers comparable across
backends and checkable against the SQL oracle:

* ``serial`` — the one-shot baseline: every query pays filtering plus
  refinement on the current dataset state, no caches;
* ``engine`` — a persistent :class:`~repro.engine.engine.UTKEngine`; updates
  discard it (rebuild-per-update), queries enjoy result/skyband reuse;
* ``parallel`` — the engine with the region-partitioned process pool
  enabled and a low routing threshold, so heavy queries fan out;
* ``dynamic`` — a :class:`~repro.dynamic.engine.DynamicUTKEngine` absorbing
  updates in place with surgical cache repair;
* ``serve`` — the serving tier end to end: a
  :class:`~repro.serve.engine.ServeEngine` behind the asyncio JSONL socket
  protocol, every event a real client round trip (striped caches, seqlock
  cache guard and shared-memory store all on the hot path);
* ``sql`` — the cold-dataset offload path: r-skyband candidate filtering is
  pushed down as window-function SQL (:mod:`repro.scenarios.sql`) and only
  the returned candidates are refined in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.jaa import JAA
from repro.core.records import Dataset
from repro.core.rsa import RSA
from repro.core.rskyband import skyband_from_candidates
from repro.exceptions import InvalidQueryError
from repro.scenarios.sql import SQLOracle

#: Registry of backend names, in presentation order.
BACKENDS: dict[str, type] = {}


def register_backend(cls):
    """Class decorator adding an execution backend to the registry."""
    if cls.name in BACKENDS:
        raise InvalidQueryError(f"backend {cls.name!r} is already registered")
    BACKENDS[cls.name] = cls
    return cls


def select_backends(names=None) -> list[type]:
    """Resolve a backend name list (``None`` = all registered, in order)."""
    if names is None:
        return list(BACKENDS.values())
    missing = [name for name in names if name not in BACKENDS]
    if missing:
        raise InvalidQueryError(f"unknown backend(s) {missing}; registered: {sorted(BACKENDS)}")
    return [BACKENDS[name] for name in names]


@dataclass
class CellOutcome:
    """What one backend produced for one scenario's event list."""

    #: Per query event (in stream order): ``{"event", "version", "utk1",
    #: "utk2"}`` with ids/sets in the stable id space (``None`` for the
    #: problem version the query did not ask for).
    answers: list[dict] = field(default_factory=list)
    #: Backend-specific counters (engine cache stats, maintenance counters).
    stats: dict = field(default_factory=dict)

    def fingerprint(self) -> tuple:
        """Order-insensitive answer summary for cross-backend agreement."""
        parts = []
        for answer in self.answers:
            utk1 = tuple(sorted(answer["utk1"])) if answer["utk1"] is not None else None
            utk2 = (
                tuple(sorted(tuple(sorted(s)) for s in answer["utk2"]))
                if answer["utk2"] is not None
                else None
            )
            parts.append((answer["event"], answer["version"], utk1, utk2))
        return tuple(parts)


class _StateTracker:
    """Stable-id bookkeeping shared by the rebuild-style backends.

    Mirrors the id-assignment convention of the dynamic engine so answers
    from rebuilt matrices can be mapped back into the stable id space:
    ``ids`` stays sorted ascending (inserts append the next fresh id), which
    also keeps positional tie-breaks aligned with id order.
    """

    def __init__(self, data: Dataset):
        values = data.values
        self.ids: list[int] = list(range(values.shape[0]))
        self.rows: dict[int, np.ndarray] = {i: values[i] for i in self.ids}
        self.next_id = len(self.ids)
        self.dirty = False

    def apply(self, event: dict) -> None:
        if event["op"] == "insert":
            self.rows[self.next_id] = np.asarray(event["values"], dtype=float)
            self.ids.append(self.next_id)
            self.next_id += 1
        elif event["op"] == "delete":
            self.ids.remove(int(event["id"]))
            self.rows.pop(int(event["id"]))
        else:
            raise InvalidQueryError(f"unknown update op {event['op']!r}")
        self.dirty = True

    def matrix(self) -> np.ndarray:
        self.dirty = False
        return np.vstack([self.rows[i] for i in self.ids])


def _answer(event_index: int, version: str, ids: list[int], utk1, utk2) -> dict:
    """One stable-id answer record (``ids`` maps positions to stable ids)."""
    record: dict = {"event": event_index, "version": version, "utk1": None, "utk2": None}
    if utk1 is not None:
        record["utk1"] = sorted(int(ids[p]) for p in utk1.indices)
    if utk2 is not None:
        record["utk2"] = sorted(
            sorted(int(ids[p]) for p in top) for top in utk2.distinct_top_k_sets
        )
    return record


def _split_versions(version: str) -> tuple[bool, bool]:
    if version not in ("utk1", "utk2", "both"):
        raise InvalidQueryError(f"unknown problem version {version!r}")
    return version in ("utk1", "both"), version in ("utk2", "both")


@register_backend
class SerialBackend:
    """One-shot RSA/JAA per query on the current dataset state (no caches)."""

    name = "serial"
    description = "one-shot RSA/JAA per query, no caches"

    def run(self, data: Dataset, events: list[dict]) -> CellOutcome:
        tracker = _StateTracker(data)
        matrix = tracker.matrix()
        outcome = CellOutcome()
        for index, event in enumerate(events):
            if event["op"] != "query":
                tracker.apply(event)
                continue
            if tracker.dirty:
                matrix = tracker.matrix()
            want1, want2 = _split_versions(event["version"])
            region, k = event["region"], int(event["k"])
            first = second = None
            if want1 and want2:
                first = RSA(matrix, region, k).run()
                second = JAA(matrix, region, k, skyband=None).run()
            elif want1:
                first = RSA(matrix, region, k).run()
            else:
                second = JAA(matrix, region, k).run()
            outcome.answers.append(_answer(index, event["version"], tracker.ids, first, second))
        return outcome


@register_backend
class EngineBackend:
    """Persistent :class:`UTKEngine` with rebuild-per-update on churn."""

    name = "engine"
    description = "cached UTKEngine, rebuilt on every update"

    def _make_engine(self, matrix: np.ndarray):
        from repro.engine import UTKEngine

        return UTKEngine(matrix)

    def run(self, data: Dataset, events: list[dict]) -> CellOutcome:
        tracker = _StateTracker(data)
        engine = self._make_engine(tracker.matrix())
        outcome = CellOutcome()
        try:
            for index, event in enumerate(events):
                if event["op"] != "query":
                    tracker.apply(event)
                    continue
                if tracker.dirty:
                    engine.close()
                    engine = self._make_engine(tracker.matrix())
                want1, want2 = _split_versions(event["version"])
                region, k = event["region"], int(event["k"])
                first = engine.utk1(region, k) if want1 else None
                second = engine.utk2(region, k) if want2 else None
                outcome.answers.append(
                    _answer(index, event["version"], tracker.ids, first, second)
                )
            outcome.stats = engine.statistics()
        finally:
            engine.close()
        return outcome


@register_backend
class ParallelBackend(EngineBackend):
    """Engine routing heavy queries to the region-partitioned process pool."""

    name = "parallel"
    description = "UTKEngine with a 2-worker region-partitioned process pool"
    workers = 2
    min_candidates = 16

    def _make_engine(self, matrix: np.ndarray):
        from repro.engine import UTKEngine

        return UTKEngine(
            matrix,
            parallel_workers=self.workers,
            parallel_min_candidates=self.min_candidates,
        )


@register_backend
class DynamicBackend:
    """Update-aware engine: in-place maintenance, surgical cache repair."""

    name = "dynamic"
    description = "DynamicUTKEngine with incremental r-skyband repair"

    def _make_engine(self, data: Dataset):
        from repro.dynamic import DynamicUTKEngine

        return DynamicUTKEngine(data)

    def _cleanup(self) -> None:
        """Release backend resources after the engine closed (hook)."""

    def run(self, data: Dataset, events: list[dict]) -> CellOutcome:
        from repro.dynamic import serve_events

        engine = self._make_engine(data)
        outcome = CellOutcome()
        try:
            reports = serve_events(engine, events)
            for index, report in enumerate(reports):
                if report["op"] != "query":
                    continue
                record = {
                    "event": index,
                    "version": report["version"],
                    "utk1": None,
                    "utk2": None,
                }
                if "utk1" in report:
                    record["utk1"] = sorted(int(i) for i in report["utk1"]["records"])
                if "utk2" in report:
                    record["utk2"] = sorted(
                        sorted(int(i) for i in s) for s in report["utk2"]["distinct_top_k_sets"]
                    )
                outcome.answers.append(record)
            outcome.stats = engine.statistics()
        finally:
            engine.close()
            self._cleanup()
        return outcome


@register_backend
class ColstoreBackend(DynamicBackend):
    """The dynamic engine over memory-mapped columnar storage.

    Identical event semantics to ``dynamic`` — only the record bytes move
    from RAM into a :class:`~repro.colstore.store.ColumnarRecordStore` under
    a per-cell temp directory — so the SQL oracle checks that the storage
    backend swap changes no answer.
    """

    name = "colstore"
    description = "DynamicUTKEngine over a ColumnarRecordStore (mmap column files)"

    def _make_engine(self, data: Dataset):
        import tempfile

        from repro.colstore.store import ColumnarRecordStore
        from repro.dynamic import DynamicUTKEngine

        self._tempdir = tempfile.mkdtemp(prefix="repro-matrix-colstore-")
        return DynamicUTKEngine(
            data,
            store_factory=lambda values: ColumnarRecordStore(
                values, directory=self._tempdir
            ),
        )

    def _cleanup(self) -> None:
        import shutil

        tempdir = getattr(self, "_tempdir", None)
        if tempdir is not None:
            self._tempdir = None
            shutil.rmtree(tempdir, ignore_errors=True)


@register_backend
class ServeBackend:
    """The socket serving tier, replayed sequentially so answers are exact.

    Each event is one JSONL round trip through a live
    :class:`~repro.serve.server.UTKServer` on a background thread; the
    oracle check therefore covers the whole serving stack — protocol,
    striped caches, seqlock write guard, shared-memory record store —
    not just the engine.  (Concurrent-client staleness is the soak lane's
    job; here the oracle needs deterministic per-event answers.)
    """

    name = "serve"
    description = "ServeEngine behind the JSONL socket protocol, one client"

    def run(self, data: Dataset, events: list[dict]) -> CellOutcome:
        from repro.resilience.retry import RetryPolicy
        from repro.serve import ServeEngine
        from repro.serve.client import ServeClient
        from repro.serve.server import ServerThread

        engine = ServeEngine(data)
        thread = ServerThread(engine, query_threads=2)
        outcome = CellOutcome()
        try:
            host, port = thread.start()
            # A bounded deadline + a couple of retries: a wedged server
            # fails the cell with a ServeTimeout instead of hanging CI.
            with ServeClient(host, port, timeout=60.0,
                             retry=RetryPolicy(max_attempts=3)) as client:
                for index, event in enumerate(events):
                    if event["op"] != "query":
                        client.send_event(
                            {key: value for key, value in event.items()
                             if key != "region"}
                        )
                        continue
                    response = client.query(
                        event["lower"], event["upper"], event["k"], event["version"]
                    )
                    record = {
                        "event": index,
                        "version": event["version"],
                        "utk1": None,
                        "utk2": None,
                    }
                    if "utk1" in response:
                        record["utk1"] = sorted(
                            int(i) for i in response["utk1"]["records"]
                        )
                    if "utk2" in response:
                        record["utk2"] = sorted(
                            sorted(int(i) for i in s)
                            for s in response["utk2"]["distinct_top_k_sets"]
                        )
                    outcome.answers.append(record)
                outcome.stats = client.stats()
        finally:
            thread.stop()
            engine.close()
        return outcome


@register_backend
class SQLBackend:
    """Cold-dataset offload: SQL-pushdown filtering, Python refinement.

    The r-skyband is computed by the embedded SQL engine
    (:class:`~repro.scenarios.sql.SQLOracle`); RSA/JAA then refine only the
    returned candidates, so Python never scans the full dataset.  Updates
    re-register the table (the offload path targets cold, mostly-static
    datasets; churn-heavy cells measure exactly that cost).
    """

    name = "sql"
    description = "window-function SQL candidate filtering + Python refinement"

    def __init__(self, sql_backend: str = "auto"):
        self.sql_backend = sql_backend

    def run(self, data: Dataset, events: list[dict]) -> CellOutcome:
        tracker = _StateTracker(data)
        outcome = CellOutcome()
        oracle = matrix = positions = None
        pushed_candidates = 0
        try:
            for index, event in enumerate(events):
                if event["op"] != "query":
                    tracker.apply(event)
                    continue
                if oracle is None or tracker.dirty:
                    if oracle is not None:
                        oracle.close()
                    matrix = tracker.matrix()
                    oracle = SQLOracle(
                        matrix, ids=np.asarray(tracker.ids), backend=self.sql_backend
                    )
                    positions = {record_id: pos for pos, record_id in enumerate(tracker.ids)}
                want1, want2 = _split_versions(event["version"])
                region, k = event["region"], int(event["k"])
                member_ids = oracle.r_skyband(region, k)
                member_positions = np.asarray([positions[i] for i in member_ids], dtype=int)
                pushed_candidates += int(member_positions.shape[0])
                skyband = skyband_from_candidates(
                    member_positions, matrix[member_positions], region, k
                )
                first = RSA(matrix, region, k, skyband=skyband).run() if want1 else None
                second = JAA(matrix, region, k, skyband=skyband).run() if want2 else None
                outcome.answers.append(
                    _answer(index, event["version"], tracker.ids, first, second)
                )
            outcome.stats = {
                "sql_backend": oracle.backend if oracle is not None else self.sql_backend,
                "pushed_candidates": pushed_candidates,
            }
        finally:
            if oracle is not None:
                oracle.close()
        return outcome
