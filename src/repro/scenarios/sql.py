"""SQL pushdown of k-skyband / r-skyband candidate filtering.

The filtering step of every UTK query — "records (r-)dominated by fewer than
``k`` others" — is relational: scores are affine expressions over the record
columns, dominance is a conjunctive self-join predicate, and the skyband
membership test is an aggregate over that join.  This module renders the
whole step as window-function SQL and pushes it down to an embedded engine
(DuckDB when installed, stdlib ``sqlite3`` otherwise — both speak the same
dialect subset used here), the relational-encoding move DMR-XPath applies to
XPath axes.

Two roles, one implementation:

* **Correctness oracle** — an independent execution of the paper's
  Definition 1 that shares *no code* with the numpy kernels: every scenario
  -matrix cell cross-checks its answers against it
  (:mod:`repro.scenarios.matrix`), and hypothesis drives it against
  :func:`repro.core.rskyband.compute_r_skyband` over random datasets.
* **Offload path** — the ``sql`` execution backend
  (:mod:`repro.scenarios.backends`) serves cold datasets by pushing the
  filtering into SQL and refining only the returned candidates in Python.

The pushdown itself is two-phase.  A window pass computes, per region
vertex ``v``, how many records score at least ``s_v(q) - tol`` (a
``COUNT(*) OVER (ORDER BY s_v RANGE BETWEEN tol PRECEDING AND UNBOUNDED
FOLLOWING)`` frame); because every r-dominator of ``q`` is counted at every
vertex, ``min_v count_v`` bounds the r-dominance count from above, and any
record with a vertex count below ``k`` is accepted without ever joining.
Only the undecided remainder pays the exact dominance self-join.
"""

from __future__ import annotations

import numpy as np

from repro.core.region import Region
from repro.exceptions import InvalidQueryError, InvalidRegionError
from repro.kernels.dominance import DOMINANCE_TOL

#: Preference order of the embedded engines (first importable wins).
SQL_BACKENDS = ("duckdb", "sqlite")


def available_backends() -> tuple[str, ...]:
    """The embedded SQL engines importable in this environment.

    ``sqlite`` (stdlib) is always available; ``duckdb`` only when the
    optional dependency is installed (``pip install repro-utk[sql]``).
    """
    names = []
    try:
        import duckdb  # noqa: F401

        names.append("duckdb")
    except ImportError:
        pass
    names.append("sqlite")
    return tuple(names)


def resolve_backend(backend: str = "auto") -> str:
    """Map ``auto``/explicit backend names onto an importable engine."""
    if backend == "auto":
        return available_backends()[0]
    if backend not in SQL_BACKENDS:
        raise InvalidQueryError(
            f"unknown SQL backend {backend!r}; expected one of {SQL_BACKENDS} or 'auto'"
        )
    if backend not in available_backends():
        raise InvalidQueryError(f"SQL backend {backend!r} is not installed")
    return backend


def _literal(value: float) -> str:
    """A float literal that round-trips exactly (``repr`` is shortest-exact)."""
    return repr(float(value))


class SQLOracle:
    """One dataset registered in an embedded SQL engine.

    Parameters
    ----------
    values:
        ``(n, d)`` attribute matrix (already score-transformed, as every
        consumer of the filtering step expects).
    ids:
        Optional stable record ids aligned with ``values`` (defaults to
        ``0..n-1``).  Ids must be unique; ascending ids reproduce the
        library's positional tie-breaks.
    backend:
        ``"duckdb"``, ``"sqlite"`` or ``"auto"`` (first available).
    """

    def __init__(self, values: np.ndarray, *, ids=None, backend: str = "auto"):
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] < 2:
            raise InvalidQueryError("oracle data must be an (n, d) matrix with d >= 2")
        self.backend = resolve_backend(backend)
        self._n, self._d = values.shape
        if ids is None:
            ids = np.arange(self._n, dtype=int)
        ids = np.asarray(ids, dtype=int)
        if ids.shape != (self._n,) or len(set(ids.tolist())) != self._n:
            raise InvalidQueryError("ids must be unique and aligned with the value rows")
        columns = ", ".join(f"a{j} DOUBLE" for j in range(self._d))
        if self.backend == "duckdb":
            import duckdb

            self._conn = duckdb.connect(":memory:")
        else:
            import sqlite3

            self._conn = sqlite3.connect(":memory:")
        self._conn.execute(f"CREATE TABLE records (id BIGINT PRIMARY KEY, {columns})")
        placeholders = ", ".join("?" for _ in range(self._d + 1))
        rows = [(int(i), *map(float, row)) for i, row in zip(ids, values)]
        self._conn.executemany(f"INSERT INTO records VALUES ({placeholders})", rows)

    # ------------------------------------------------------------------ plumbing
    def close(self) -> None:
        """Release the embedded connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SQLOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ids(self, sql: str) -> np.ndarray:
        rows = self._conn.execute(sql).fetchall()
        return np.asarray([int(row[0]) for row in rows], dtype=int)

    # ------------------------------------------------------------- score algebra
    def _score_expression(self, point) -> str:
        """SQL for ``S(x; u) = a_{d-1} + sum_j (a_j - a_{d-1}) * u_j``.

        Term order matches :func:`repro.kernels.halfspace.score_decomposition`
        so the two executions evaluate the same left-to-right sum.
        """
        point = np.asarray(point, dtype=float).reshape(-1)
        if point.shape[0] != self._d - 1:
            raise InvalidQueryError(
                f"weight vector has {point.shape[0]} components for {self._d}-d data"
            )
        last = f"a{self._d - 1}"
        terms = [last]
        for j, weight in enumerate(point):
            terms.append(f"(a{j} - {last}) * {_literal(weight)}")
        return " + ".join(terms)

    def _region_vertices(self, region: Region) -> np.ndarray:
        if region.dimension != self._d - 1:
            raise InvalidQueryError(
                f"region dimension {region.dimension} does not match {self._d}-dimensional data"
            )
        if region.vertices is None:
            raise InvalidRegionError("SQL pushdown needs a region with a vertex representation")
        return region.vertices

    # ----------------------------------------------------------------- skybands
    def _skyband_sql(self, exprs: list[str], k: int, tol: float) -> str:
        """The two-phase skyband query over per-record score expressions.

        ``exprs[i]`` scores a record under comparison axis ``i`` (a raw
        attribute for traditional dominance, the score at region vertex ``i``
        for r-dominance).  Dominance is "``>= -tol`` on every axis, ``> tol``
        on at least one" — exactly the kernel semantics of
        :func:`repro.kernels.halfspace.r_dominance_matrix`.
        """
        t = _literal(tol)
        scored = ", ".join(f"{expr} AS s{i}" for i, expr in enumerate(exprs))
        axes = range(len(exprs))
        windows = ", ".join(
            f"COUNT(*) OVER (ORDER BY s{i} RANGE BETWEEN {t} PRECEDING "
            f"AND UNBOUNDED FOLLOWING) - 1 AS c{i}"
            for i in axes
        )
        fast_accept = " OR ".join(f"c{i} < {int(k)}" for i in axes)
        undecided = " AND ".join(f"q.c{i} >= {int(k)}" for i in axes)
        weak = " AND ".join(f"p.s{i} >= q.s{i} - {t}" for i in axes)
        strict = " OR ".join(f"p.s{i} > q.s{i} + {t}" for i in axes)
        return f"""
            WITH scored AS (
                SELECT id, {scored} FROM records
            ), bounded AS (
                SELECT *, {windows} FROM scored
            )
            SELECT id FROM bounded WHERE {fast_accept}
            UNION
            SELECT q.id
            FROM bounded q LEFT JOIN scored p
              ON p.id <> q.id AND {weak} AND ({strict})
            WHERE {undecided}
            GROUP BY q.id
            HAVING COUNT(p.id) < {int(k)}
            ORDER BY id
        """

    def k_skyband(self, k: int, *, tol: float = DOMINANCE_TOL) -> np.ndarray:
        """Ids of the traditional k-skyband (dominance on the raw attributes)."""
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        exprs = [f"a{j}" for j in range(self._d)]
        return self._ids(self._skyband_sql(exprs, k, tol))

    def r_skyband(self, region: Region, k: int, *, tol: float = DOMINANCE_TOL) -> np.ndarray:
        """Ids of the r-skyband: records r-dominated (w.r.t. ``region``) by < ``k``.

        One score expression per region vertex; r-dominance reduces to the
        per-vertex sign tests of Definition 1.
        """
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        vertices = self._region_vertices(region)
        exprs = [self._score_expression(vertex) for vertex in vertices]
        return self._ids(self._skyband_sql(exprs, k, tol))

    # -------------------------------------------------------------------- top-k
    def top_k(self, reduced_weights, k: int) -> np.ndarray:
        """Ids of the ``k`` best records at one reduced weight vector.

        Ties break by ascending id, matching the positional tie-break of
        :func:`repro.core.preference.top_k_at` when ids are ascending.
        """
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        expr = self._score_expression(reduced_weights)
        return self._ids(
            f"""
            SELECT id FROM (
                SELECT id, row_number() OVER (ORDER BY {expr} DESC, id ASC) AS rn
                FROM records
            ) ranked WHERE rn <= {int(k)} ORDER BY rn
            """
        )
