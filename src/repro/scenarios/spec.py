"""Declarative scenario specifications: data distribution × traffic shape.

A :class:`Scenario` names one workload cell axis of the matrix: which
synthetic distribution the dataset is drawn from (IND / COR / ANTI / CLUS)
and which *traffic shape* drives the queries:

* ``cold`` — every query is a fresh random region (no reuse to exploit);
* ``hot-storm`` — a handful of hot regions hammered with repeats and
  drill-down sub-regions (the cache-friendly serving pattern of
  :func:`repro.bench.workloads.engine_query_stream`);
* ``zipf-churn`` — interleaved insert/delete/query events with
  recency-skewed key churn (:func:`repro.datasets.synthetic.update_stream`);
* ``adversarial`` — a k·sigma sweep pinned to the expensive corner of the
  paper's parameter grid: large regions and large ``k`` maximize r-skyband
  sizes and arrangement depth.

``Scenario.build`` materializes the dataset and a reproducible event list in
the shape :func:`repro.dynamic.serve_events` consumes (queries carry a
prebuilt interned ``region``); every execution backend replays the same
events, which is what makes the matrix cells comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.workloads import _random_cube, engine_query_stream, zipfian_k
from repro.core.records import Dataset
from repro.core.region import hyperrectangle
from repro.datasets.synthetic import synthetic_dataset, update_stream
from repro.exceptions import InvalidQueryError

#: Traffic shapes accepted by :class:`Scenario`.
TRAFFIC_SHAPES = ("cold", "hot-storm", "zipf-churn", "adversarial")


@dataclass(frozen=True)
class Scenario:
    """One workload scenario of the matrix (distribution × traffic shape)."""

    name: str
    distribution: str
    traffic: str
    description: str
    cardinality: int
    events: int
    smoke_cardinality: int
    smoke_events: int
    dimensionality: int = 3
    seed: int = 7
    #: Gated scenarios participate in the trend comparison
    #: (:mod:`repro.bench.trend`): a >20% throughput regression in any of
    #: their cells fails the trend job.
    gated: bool = True

    def __post_init__(self):
        if self.traffic not in TRAFFIC_SHAPES:
            raise InvalidQueryError(
                f"unknown traffic shape {self.traffic!r}; expected one of {TRAFFIC_SHAPES}"
            )

    def build(self, smoke: bool = False) -> tuple[Dataset, list[dict]]:
        """Materialize the dataset and the reproducible event list."""
        cardinality = self.smoke_cardinality if smoke else self.cardinality
        count = self.smoke_events if smoke else self.events
        data = synthetic_dataset(self.distribution, cardinality, self.dimensionality, self.seed)
        events = _TRAFFIC_BUILDERS[self.traffic](data, count, self.seed)
        _attach_regions(events)
        return data, events


def _attach_regions(events: list[dict]) -> None:
    """Intern a prebuilt ``Region`` on every query event (hot streams repeat)."""
    memo: dict[tuple, object] = {}
    for event in events:
        if event.get("op") != "query" or "region" in event:
            continue
        key = (tuple(event["lower"]), tuple(event["upper"]))
        if key not in memo:
            memo[key] = hyperrectangle(event["lower"], event["upper"])
        event["region"] = memo[key]


def _query_event(lower, upper, k: int, version: str) -> dict:
    return {
        "op": "query",
        "lower": [float(v) for v in lower],
        "upper": [float(v) for v in upper],
        "k": int(k),
        "version": version,
    }


def _cold_traffic(data: Dataset, count: int, seed: int) -> list[dict]:
    """Fresh random regions, Zipf-popular small ``k`` — no reuse to exploit."""
    rng = np.random.default_rng(seed)
    dim = data.dimensionality - 1
    events = []
    for _ in range(count):
        lower, upper = _random_cube(dim, float(rng.uniform(0.04, 0.12)), rng)
        events.append(_query_event(lower, upper, zipfian_k((2, 3, 5), 1.2, rng), "both"))
    return events


def _storm_traffic(data: Dataset, count: int, seed: int) -> list[dict]:
    """Hot-region storm: repeats and drill-downs of a few anchor regions."""
    stream = engine_query_stream(
        data.dimensionality,
        count,
        k_choices=(2, 3, 5),
        sigma=0.08,
        parents=3,
        repeat_prob=0.35,
        subregion_prob=0.45,
        seed=seed,
    )
    events = []
    for spec in stream:
        event = {"op": "query", "region": spec.region, "k": spec.k, "version": "both"}
        lower = [spec.region.linear_min(row) for row in np.eye(spec.region.dimension)]
        upper = [spec.region.linear_max(row) for row in np.eye(spec.region.dimension)]
        event["lower"], event["upper"] = lower, upper
        events.append(event)
    return events


def _churn_traffic(data: Dataset, count: int, seed: int) -> list[dict]:
    """Zipf-churn update stream: inserts/deletes interleaved with hot queries."""
    return update_stream(
        data,
        count,
        insert_prob=0.18,
        delete_prob=0.12,
        k_choices=(2, 3),
        sigma=0.08,
        hot_regions=3,
        hot_prob=0.7,
        seed=seed,
    )


def _adversarial_traffic(data: Dataset, count: int, seed: int) -> list[dict]:
    """k·sigma sweep pinned to the expensive corner of the parameter grid."""
    rng = np.random.default_rng(seed)
    dim = data.dimensionality - 1
    k_values = (3, 5)
    sigma_values = (0.10, 0.16)
    events = []
    for position in range(count):
        k = k_values[position % len(k_values)]
        sigma = sigma_values[(position // len(k_values)) % len(sigma_values)]
        lower, upper = _random_cube(dim, sigma, rng)
        events.append(_query_event(lower, upper, k, "both"))
    return events


_TRAFFIC_BUILDERS = {
    "cold": _cold_traffic,
    "hot-storm": _storm_traffic,
    "zipf-churn": _churn_traffic,
    "adversarial": _adversarial_traffic,
}


#: Registry of named scenarios, in presentation order.
SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (name collisions are an error)."""
    if scenario.name in SCENARIOS:
        raise InvalidQueryError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


register_scenario(
    Scenario(
        name="ind-cold",
        distribution="IND",
        traffic="cold",
        description="independent data, fresh random regions (no cache reuse)",
        cardinality=2500,
        events=24,
        smoke_cardinality=500,
        smoke_events=8,
        dimensionality=4,
        seed=101,
    )
)
register_scenario(
    Scenario(
        name="cor-storm",
        distribution="COR",
        traffic="hot-storm",
        description="correlated data, hot-region query storm (repeat + drill-down)",
        cardinality=2500,
        events=30,
        smoke_cardinality=600,
        smoke_events=10,
        seed=102,
    )
)
register_scenario(
    Scenario(
        name="anti-adversarial",
        distribution="ANTI",
        traffic="adversarial",
        description="anticorrelated data, adversarial k·sigma sweep (max skybands)",
        cardinality=1800,
        events=16,
        smoke_cardinality=400,
        smoke_events=6,
        seed=103,
    )
)
register_scenario(
    Scenario(
        name="clus-churn",
        distribution="CLUS",
        traffic="zipf-churn",
        description="clustered data, zipf-churn update stream with hot queries",
        cardinality=2000,
        events=40,
        smoke_cardinality=500,
        smoke_events=16,
        seed=104,
    )
)


def select_scenarios(names=None) -> list[Scenario]:
    """Resolve a name list (``None`` = all registered, in order)."""
    if names is None:
        return list(SCENARIOS.values())
    missing = [name for name in names if name not in SCENARIOS]
    if missing:
        raise InvalidQueryError(
            f"unknown scenario(s) {missing}; registered: {sorted(SCENARIOS)}"
        )
    return [SCENARIOS[name] for name in names]
