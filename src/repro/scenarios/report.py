"""Markdown/text rendering of a scenario-matrix run.

The markdown form is what ``repro matrix --report md`` prints and what CI
posts to ``$GITHUB_STEP_SUMMARY``; the README's "Scenario matrix" section
shows a sample.  The table pivots the flat row list into one row per
scenario and one throughput column per backend, because "which backend wins
on which workload shape" is the question the matrix exists to answer.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bench.reporting import format_table


def _pivot(rows: Sequence[Mapping]) -> tuple[list[str], list[str], dict]:
    scenarios: list[str] = []
    backends: list[str] = []
    cells: dict[tuple[str, str], Mapping] = {}
    for row in rows:
        if row["scenario"] not in scenarios:
            scenarios.append(row["scenario"])
        if row["backend"] not in backends:
            backends.append(row["backend"])
        cells[(row["scenario"], row["backend"])] = row
    return scenarios, backends, cells


def _cell_text(row: Mapping | None) -> str:
    if row is None:
        return "—"
    verdict = row.get("oracle")
    mark = "✓" if verdict == "ok" else ("·" if verdict == "skipped" else "✗")
    return f"{row['qps']:.1f} q/s {mark}"


def markdown_report(payload: Mapping) -> str:
    """Render a ``BENCH_matrix.json`` payload as a GitHub-flavoured table."""
    rows = payload.get("rows", [])
    gates = payload.get("gates", {})
    meta = payload.get("meta", {})
    scenarios, backends, cells = _pivot(rows)
    lines = ["## Scenario matrix", ""]
    mode = "smoke" if meta.get("smoke") else "full"
    checked = "oracle-checked" if gates.get("oracle_checked") else "oracle off"
    lines.append(
        f"{len(scenarios)} scenarios × {len(backends)} backends ({mode}, {checked}; "
        f"✓ = cell agrees with the SQL pushdown oracle)."
    )
    lines.append("")
    header = "| scenario | traffic | " + " | ".join(backends) + " |"
    rule = "|" + "---|" * (len(backends) + 2)
    lines.extend([header, rule])
    for scenario in scenarios:
        first = next(row for row in rows if row["scenario"] == scenario)
        rendered = [
            _cell_text(cells.get((scenario, backend))) for backend in backends
        ]
        lines.append(
            f"| {scenario} | {first['distribution']}/{first['traffic']} | "
            + " | ".join(rendered)
            + " |"
        )
    failed = sorted(
        name for name, passed in gates.items() if name.startswith("oracle:") and not passed
    )
    lines.append("")
    if failed:
        lines.append(f"**Oracle failures:** {', '.join(failed)}")
    elif gates.get("oracle_checked"):
        lines.append("All cells agree with the SQL oracle.")
    return "\n".join(lines) + "\n"


def text_report(payload: Mapping) -> str:
    """Render the payload as the aligned text table benches print."""
    rows = payload.get("rows", [])
    if not rows:
        return "scenario matrix: no rows"
    headers = ["scenario", "backend", "traffic", "queries", "seconds", "qps", "oracle"]
    table_rows = [[row.get(header, "") for header in headers] for row in rows]
    return format_table(headers, table_rows, title="Scenario matrix")
