"""The scenario-matrix runner: scenarios × backends, oracle-checked.

:func:`run_matrix` crosses the registered workload scenarios
(:mod:`repro.scenarios.spec`) with the execution backends
(:mod:`repro.scenarios.backends`).  Each cell replays one scenario's event
list through one backend under the :mod:`repro.obs` metrics registry and is
validated two ways against the SQL pushdown (:mod:`repro.scenarios.sql`):

* **full-answer agreement** — the cell's complete answer fingerprint must
  equal the SQL-filtered reference replay's (shared refinement, independent
  filtering);
* **pure-SQL vertex spot checks** — for every query, the top-k set the SQL
  engine computes at each region vertex (no numpy involved at all) must be
  one of the cell's reported UTK2 sets and a subset of its UTK1 answer.

The run emits one schema-versioned ``BENCH_matrix.json`` (rows + per-cell
oracle gates) plus one ``METRICS_matrix_<scenario>_<backend>.jsonl`` snapshot
per cell, the artifacts CI uploads and :mod:`repro.bench.trend` compares
across runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.bench.reporting import write_bench_json, write_bench_metrics
from repro.obs import names
from repro.obs.metrics import REGISTRY
from repro.scenarios.backends import CellOutcome, SQLBackend, _StateTracker, select_backends
from repro.scenarios.spec import select_scenarios
from repro.scenarios.sql import SQLOracle, available_backends


@dataclass
class MatrixResult:
    """Everything one :func:`run_matrix` invocation produced."""

    rows: list[dict] = field(default_factory=list)
    gates: dict = field(default_factory=dict)
    #: ``(scenario, backend) -> CellOutcome`` for callers that want answers.
    outcomes: dict = field(default_factory=dict)
    #: The ``BENCH_matrix.json`` payload (also written to disk when asked).
    payload: dict = field(default_factory=dict)
    artifacts: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.gates.get("passed"))


def _canonical_map(ids, matrix) -> dict[int, int]:
    """Map each id onto the smallest id whose row is *exactly* equal.

    UTK answers are only defined up to tie-breaking among identical records
    (clipped synthetic data saturates several rows at the domain corners),
    so the oracle compares answers modulo exact-duplicate classes: any
    implementation may report either twin.
    """
    classes: dict[bytes, int] = {}
    mapping: dict[int, int] = {}
    for record_id, row in zip(ids, matrix):
        mapping[record_id] = classes.setdefault(row.tobytes(), record_id)
    return mapping


def _canonical_fingerprint(outcome: CellOutcome, canon: dict) -> tuple:
    """Answer fingerprint with every id collapsed onto its duplicate class."""
    parts = []
    for answer in outcome.answers:
        mapping = canon.get(answer["event"], {})
        utk1 = utk2 = None
        if answer["utk1"] is not None:
            utk1 = tuple(sorted({mapping.get(i, i) for i in answer["utk1"]}))
        if answer["utk2"] is not None:
            utk2 = tuple(
                sorted({tuple(sorted({mapping.get(i, i) for i in s})) for s in answer["utk2"]})
            )
        parts.append((answer["event"], answer["version"], utk1, utk2))
    return tuple(parts)


def _check_cell(
    outcome: CellOutcome, reference: CellOutcome, vertex_sets: dict, canon: dict
) -> str:
    """Oracle verdict for one cell: ``"ok"`` or a short mismatch label."""
    if _canonical_fingerprint(outcome, canon) != _canonical_fingerprint(reference, canon):
        return "answer-mismatch"
    for answer in outcome.answers:
        mapping = canon.get(answer["event"], {})
        for vertex_set in vertex_sets.get(answer["event"], ()):
            canonical_vertex = {mapping.get(i, i) for i in vertex_set}
            if answer["utk1"] is not None:
                utk1 = {mapping.get(i, i) for i in answer["utk1"]}
                if not canonical_vertex.issubset(utk1):
                    return "utk1-missing-vertex-top-k"
            if answer["utk2"] is not None:
                reported = {frozenset(mapping.get(i, i) for i in s) for s in answer["utk2"]}
                if frozenset(canonical_vertex) not in reported:
                    return "utk2-missing-vertex-top-k"
    return "ok"


def run_matrix(
    scenario_names=None,
    backend_names=None,
    *,
    smoke: bool = False,
    oracle: bool = True,
    sql_backend: str = "auto",
    output_dir=None,
    bench_name: str = "BENCH_matrix.json",
    progress=None,
) -> MatrixResult:
    """Run the scenario × backend matrix and (optionally) write its artifacts.

    Parameters
    ----------
    scenario_names, backend_names:
        Cell selection; ``None`` means every registered scenario/backend.
    smoke:
        Use each scenario's reduced smoke sizing (the CI configuration).
    oracle:
        Cross-check every cell against the SQL pushdown.  The reference
        replay is shared per scenario, so the oracle cost is amortized over
        all of that scenario's backends.
    sql_backend:
        Embedded engine for the oracle and the ``sql`` backend
        (``duckdb``/``sqlite``/``auto``).
    output_dir:
        Where to write ``BENCH_matrix.json`` and the per-cell
        ``METRICS_*.jsonl`` files; ``None`` skips artifacts entirely.
    progress:
        Optional ``callable(str)`` receiving one line per finished cell.
    """
    scenarios = select_scenarios(scenario_names)
    backends = select_backends(backend_names)
    emit = progress or (lambda line: None)
    result = MatrixResult()
    output_path = None if output_dir is None else Path(output_dir)
    if output_path is not None:
        output_path.mkdir(parents=True, exist_ok=True)

    for scenario in scenarios:
        data, events = scenario.build(smoke=smoke)
        queries = sum(1 for event in events if event["op"] == "query")
        reference = vertex_sets = canon = None
        if oracle:
            reference = SQLBackend(sql_backend).run(data, events)
            vertex_sets, canon = _vertex_sets_for(data, events, sql_backend)
        for backend_cls in backends:
            REGISTRY.reset()
            cell = f"{scenario.name}/{backend_cls.name}"
            with obs.activated():
                started = time.perf_counter()
                outcome = backend_cls().run(data, events)
                elapsed = time.perf_counter() - started
                verdict = "skipped"
                if oracle:
                    verdict = _check_cell(outcome, reference, vertex_sets, canon)
                names.MATRIX_CELLS.inc(
                    scenario=scenario.name, backend=backend_cls.name, oracle=verdict
                )
                names.MATRIX_CELL_SECONDS.observe(
                    elapsed, scenario=scenario.name, backend=backend_cls.name
                )
            result.outcomes[(scenario.name, backend_cls.name)] = outcome
            row = {
                "scenario": scenario.name,
                "backend": backend_cls.name,
                "distribution": scenario.distribution,
                "traffic": scenario.traffic,
                "events": len(events),
                "queries": queries,
                "seconds": round(elapsed, 6),
                "qps": round(queries / elapsed, 3) if elapsed > 0 else 0.0,
                "oracle": verdict,
                "gated": scenario.gated,
            }
            result.rows.append(row)
            if oracle:
                result.gates[f"oracle:{cell}"] = verdict == "ok"
            if output_path is not None:
                metrics_file = output_path / (
                    f"METRICS_matrix_{scenario.name}_{backend_cls.name}.jsonl"
                )
                write_bench_metrics(
                    metrics_file,
                    "matrix",
                    meta={"scenario": scenario.name, "backend": backend_cls.name,
                          "smoke": smoke},
                )
                result.artifacts.append(str(metrics_file))
            emit(
                f"{cell}: {queries} queries in {elapsed:.2f}s "
                f"({row['qps']:.1f} q/s), oracle {verdict}"
            )

    result.gates["oracle_checked"] = oracle
    result.gates["passed"] = all(
        passed for name, passed in result.gates.items() if name.startswith("oracle:")
    )
    meta = {
        "smoke": smoke,
        "scenarios": [s.name for s in scenarios],
        "backends": [b.name for b in backends],
        "sql_backends_available": list(available_backends()),
        "sql_backend": sql_backend,
    }
    if output_path is not None:
        bench_file = output_path / bench_name
        result.payload = write_bench_json(
            bench_file, "matrix", result.rows, gates=result.gates, meta=meta
        )
        result.artifacts.append(str(bench_file))
    else:
        result.payload = {
            "benchmark": "matrix",
            "meta": meta,
            "gates": dict(result.gates),
            "rows": list(result.rows),
        }
    return result


def _vertex_sets_for(data, events, sql_backend: str) -> tuple[dict, dict]:
    """Pure-SQL per-query reference data, replaying the event stream.

    Returns ``(vertex_sets, canon)``: per query-event index, the top-k id
    set the SQL engine computes at each region vertex, and the
    exact-duplicate canonicalization map of the dataset state the query saw.
    """
    tracker = _StateTracker(data)
    oracle = None
    sets: dict[int, list[frozenset]] = {}
    canon: dict[int, dict[int, int]] = {}
    mapping: dict[int, int] = {}
    try:
        for index, event in enumerate(events):
            if event["op"] != "query":
                tracker.apply(event)
                continue
            if oracle is None or tracker.dirty:
                if oracle is not None:
                    oracle.close()
                matrix = tracker.matrix()
                oracle = SQLOracle(matrix, ids=np.asarray(tracker.ids), backend=sql_backend)
                mapping = _canonical_map(tracker.ids, matrix)
            sets[index] = [
                frozenset(int(i) for i in oracle.top_k(vertex, int(event["k"])))
                for vertex in event["region"].vertices
            ]
            canon[index] = mapping
    finally:
        if oracle is not None:
            oracle.close()
    return sets, canon
