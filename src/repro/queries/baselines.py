"""Baseline UTK algorithms (Section 3.3 of the paper).

The baselines combine a traditional filtering operator with the kSPR
building block:

* **SK** — filter with the traditional k-skyband;
* **ON** — filter with the first ``k`` onion layers (a subset of the
  k-skyband, computed off it).

Each retained candidate is then verified with a constrained monochromatic
reverse top-k query.  For UTK1 the kSPR call may terminate early; for UTK2 it
runs to completion so all qualifying sub-regions are produced (an output that
is semantically equivalent to, though shaped differently from, JAA's common
global arrangement).

These baselines exist for the paper's comparative experiments (Figures 10 and
11) and as an independent correctness cross-check for RSA / JAA.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.region import Region
from repro.core.result import UTK1Result
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree
from repro.queries.kspr import KSPRResult, constrained_reverse_topk
from repro.skyline.skyband import k_skyband, onion_candidates

_VARIANTS = ("skyband", "onion")


@dataclass
class BaselineUTK:
    """Detailed output of a baseline UTK run.

    ``per_candidate`` maps every *filtered* candidate to its kSPR outcome;
    ``result_indices`` are the candidates that qualified (the UTK1 answer).
    """

    variant: str
    k: int
    region: Region
    candidates: list[int]
    per_candidate: dict[int, KSPRResult] = field(default_factory=dict)
    elapsed_filter: float = 0.0
    elapsed_refine: float = 0.0

    @property
    def result_indices(self) -> list[int]:
        """Sorted indices of the qualifying records (the UTK1 answer)."""
        return sorted(index for index, outcome in self.per_candidate.items() if outcome.qualifies)

    @property
    def candidate_count(self) -> int:
        """Number of candidates retained by the filtering step."""
        return len(self.candidates)

    def to_utk1(self) -> UTK1Result:
        """View the baseline outcome as a :class:`~repro.core.result.UTK1Result`."""
        witnesses = {}
        for index in self.result_indices:
            witness = self.per_candidate[index].witness()
            if witness is not None:
                witnesses[index] = witness
        stats = {
            "variant": self.variant,
            "candidates": self.candidate_count,
            "elapsed_filter": self.elapsed_filter,
            "elapsed_refine": self.elapsed_refine,
        }
        return UTK1Result(
            indices=self.result_indices,
            witnesses=witnesses,
            region=self.region,
            k=self.k,
            stats=stats,
        )


def _filter_candidates(values: np.ndarray, k: int, variant: str, tree: RTree | None) -> list[int]:
    """Run the SK / ON filtering step and return candidate indices."""
    if variant == "skyband":
        return [int(i) for i in k_skyband(values, k, tree=tree)]
    return [int(i) for i in onion_candidates(values, k, tree=tree)]


def _run_baseline(
    values, region: Region, k: int, variant: str, tree: RTree | None, early_terminate: bool
) -> BaselineUTK:
    if variant not in _VARIANTS:
        raise InvalidQueryError(f"unknown baseline variant: {variant!r}")
    values = np.asarray(values, dtype=float)
    started = time.perf_counter()
    candidates = _filter_candidates(values, k, variant, tree)
    filtered_at = time.perf_counter()
    outcome = BaselineUTK(variant=variant, k=k, region=region, candidates=candidates)
    for candidate in candidates:
        outcome.per_candidate[candidate] = constrained_reverse_topk(
            values, candidate, region, k, competitors=candidates, early_terminate=early_terminate
        )
    outcome.elapsed_filter = filtered_at - started
    outcome.elapsed_refine = time.perf_counter() - filtered_at
    return outcome


def baseline_utk1(
    values, region: Region, k: int, *, variant: str = "skyband", tree: RTree | None = None
) -> BaselineUTK:
    """UTK1 baseline: k-skyband / onion filter followed by per-candidate kSPR.

    The kSPR calls stop as soon as the candidate's membership is decided.
    """
    return _run_baseline(values, region, k, variant, tree, early_terminate=True)


def baseline_utk2(
    values, region: Region, k: int, *, variant: str = "skyband", tree: RTree | None = None
) -> BaselineUTK:
    """UTK2 baseline: as UTK1 but every kSPR call runs to completion.

    The per-candidate qualifying cells collectively describe, for every
    candidate, where in the region it belongs to the top-k set.
    """
    return _run_baseline(values, region, k, variant, tree, early_terminate=False)
