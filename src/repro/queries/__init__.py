"""Query operators: plain top-k, the kSPR building block, and the UTK baselines.

These modules implement the traditional operators UTK is compared against in
the paper — regular/incremental top-k queries, the constrained monochromatic
reverse top-k (kSPR) building block, and the SK / ON baselines of Section 3.3.
"""

from repro.queries.topk import (
    top_k,
    top_k_indices,
    top_k_rtree,
    incremental_top_k_until,
)
from repro.queries.kspr import constrained_reverse_topk, KSPRResult
from repro.queries.baselines import BaselineUTK, baseline_utk1, baseline_utk2

__all__ = [
    "top_k",
    "top_k_indices",
    "top_k_rtree",
    "incremental_top_k_until",
    "constrained_reverse_topk",
    "KSPRResult",
    "BaselineUTK",
    "baseline_utk1",
    "baseline_utk2",
]
