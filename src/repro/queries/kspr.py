"""Constrained monochromatic reverse top-k (the kSPR building block).

Given a focal record ``p``, a preference region ``R`` and a value ``k``, the
monochromatic reverse top-k query reports the parts of ``R`` where ``p``
belongs to the top-k set.  The paper's baselines answer UTK by running this
query (the kSPR methodology of Tang et al. [45], constrained to ``R``) for
every candidate produced by a k-skyband or onion filter.

The implementation follows the half-space counting formulation: every
competitor ``q`` contributes the half-space ``S(q) >= S(p)``; cells of the
arrangement covered by fewer than ``k`` half-spaces form the answer.  Two
standard optimizations are applied:

* competitors are inserted in decreasing order of their score at the region's
  pivot, so that strong competitors push cell counts to ``k`` early, and
* cells whose count reaches ``k`` are *frozen* — they are never split again
  (the count can only grow), which is the essential pruning of the LP-CTA
  variant used in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.arrangement import Arrangement, ArrangementLeaf
from repro.core.cell import Cell
from repro.core.halfspace import halfspaces_against
from repro.core.preference import scores
from repro.core.region import Region
from repro.exceptions import InvalidQueryError


@dataclass
class KSPRResult:
    """Outcome of a constrained reverse top-k query for one focal record.

    Attributes
    ----------
    focal:
        Index of the focal record.
    cells:
        Arrangement leaves (with their covering sets) where the focal record
        is inside the top-k.  Empty when the record never enters the top-k
        within the region.
    halfspaces_inserted, leaves_examined:
        Work counters used by the benchmark harness.
    """

    focal: int
    cells: list[ArrangementLeaf] = field(default_factory=list)
    halfspaces_inserted: int = 0
    leaves_examined: int = 0

    @property
    def qualifies(self) -> bool:
        """Whether the focal record belongs to the UTK1 answer."""
        return bool(self.cells)

    def witness(self) -> np.ndarray | None:
        """An interior point of one qualifying cell (a UTK1 witness)."""
        for leaf in self.cells:
            point = leaf.cell.interior_point
            if point is not None:
                return point
        return None


def constrained_reverse_topk(
    values: np.ndarray,
    focal: int,
    region: Region,
    k: int,
    *,
    competitors=None,
    early_terminate: bool = False,
) -> KSPRResult:
    """Regions of ``region`` where record ``focal`` ranks within the top ``k``.

    Parameters
    ----------
    values:
        ``(n, d)`` dataset matrix.
    focal:
        Index of the focal record within ``values``.
    region:
        Preference region to constrain the search to.
    k:
        Top-k parameter.
    competitors:
        Indices of the competitors to consider.  Must be a superset of every
        record that can enter a top-k set within the region (e.g. the
        k-skyband); defaults to all records.
    early_terminate:
        Stop as soon as it is known whether any qualifying cell survives
        (i.e. once every leaf is frozen); the qualifying cells returned are
        then those of the partial arrangement.  Used by the UTK1 baseline.
    """
    values = np.asarray(values, dtype=float)
    if not 0 <= focal < values.shape[0]:
        raise InvalidQueryError("focal index out of range")
    if k <= 0:
        raise InvalidQueryError("k must be positive")
    if competitors is None:
        competitors = [i for i in range(values.shape[0]) if i != focal]
    else:
        competitors = [int(i) for i in competitors if int(i) != focal]

    pivot = region.pivot
    competitor_scores = scores(values[competitors], pivot) if competitors else np.zeros(0)
    order = np.argsort(-competitor_scores, kind="stable")

    arrangement = Arrangement(Cell(region))
    result = KSPRResult(focal=int(focal))
    ordered = [competitors[int(position)] for position in order]
    # All competitor half-spaces come from one kernel broadcast; insertion
    # order (decreasing pivot score) is preserved.
    halfspaces = halfspaces_against(values[focal], values[ordered], ordered) \
        if ordered else []
    for halfspace in halfspaces:
        arrangement.insert(halfspace, freeze_at=k)
        result.halfspaces_inserted += 1
        if early_terminate and all(leaf.frozen for leaf in arrangement.leaves):
            result.leaves_examined = len(arrangement.leaves)
            return result
    result.leaves_examined = len(arrangement.leaves)
    result.cells = [leaf for leaf in arrangement.partitions() if leaf.count < k]
    return result
