"""Plain top-k query processing.

Provides the traditional operator the paper contrasts UTK with:

* a vectorized full-scan top-k,
* a branch-and-bound top-k over the R-tree (score of an MBB's top corner is
  an upper bound for every record underneath it, for monotone scoring), and
* the *incremental* top-k probe used by the Figure 10(b) study: keep
  enlarging ``k`` until the result covers a target set of records.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.core.preference import scores
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree


def top_k_indices(values: np.ndarray, weights, k: int) -> list[int]:
    """Indices of the ``k`` highest-scoring records (full scan, ties by index)."""
    if k <= 0:
        raise InvalidQueryError("k must be positive")
    all_scores = scores(np.asarray(values, dtype=float), weights)
    order = np.lexsort((np.arange(all_scores.shape[0]), -all_scores))
    return [int(i) for i in order[:min(k, order.shape[0])]]


def top_k(values: np.ndarray, weights, k: int) -> list[tuple[int, float]]:
    """``(index, score)`` pairs of the top-k records, best first."""
    all_scores = scores(np.asarray(values, dtype=float), weights)
    return [(index, float(all_scores[index])) for index in top_k_indices(values, weights, k)]


def top_k_rtree(tree: RTree, weights, k: int) -> list[tuple[int, float]]:
    """Branch-and-bound top-k over an R-tree.

    Nodes are visited best-first by the score of their MBB top corner, which
    upper-bounds the score of every record underneath (weights and attributes
    are non-negative); the search stops once ``k`` records have been popped
    whose scores dominate all remaining upper bounds.
    """
    if k <= 0:
        raise InvalidQueryError("k must be positive")
    if tree.root.mbb is None:
        return []
    weights = np.asarray(weights, dtype=float).reshape(-1)

    def score_of(point: np.ndarray) -> float:
        return float(scores(point.reshape(1, -1), weights)[0])

    counter = itertools.count()
    heap: list[tuple[float, int, int, object]] = []
    heapq.heappush(heap, (-score_of(tree.root.mbb.top_corner), next(counter), 0, tree.root))
    result: list[tuple[int, float]] = []
    while heap and len(result) < k:
        negative_key, _, kind, payload = heapq.heappop(heap)
        if kind == 1:
            index, point = payload
            result.append((int(index), -negative_key))
            continue
        node = payload
        if node.is_leaf:
            for index, point in node.entries:
                heapq.heappush(heap, (-score_of(point), next(counter), 1, (index, point)))
        else:
            for child in node.children:
                if child.mbb is not None:
                    heapq.heappush(heap, (-score_of(child.mbb.top_corner), next(counter), 0, child))
    return result


def incremental_top_k_until(values: np.ndarray, weights, k: int,
                            target: set[int], *, max_k: int | None = None
                            ) -> tuple[int, list[int]]:
    """Grow ``k`` until the top-k result covers ``target`` (Figure 10(b) study).

    Returns the required ``k`` and the corresponding top-k index list.  The
    paper uses this probe to show that a plain top-k query with an enlarged
    ``k`` is a poor substitute for UTK1: the required ``k`` is 40-460 times
    the original one.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    limit = n if max_k is None else min(max_k, n)
    all_scores = scores(values, weights)
    order = np.lexsort((np.arange(n), -all_scores))
    target = {int(t) for t in target}
    covered: set[int] = set()
    for position, index in enumerate(order[:limit], start=1):
        covered.add(int(index))
        if position >= k and target.issubset(covered):
            return position, [int(i) for i in order[:position]]
    return limit, [int(i) for i in order[:limit]]
