"""MRV-style contention-striped LRU caching.

The engine's :class:`~repro.engine.cache.LRUCache` is a single ordered dict;
every lookup, insertion and maintenance sweep of the serving engine used to
take the *same* engine lock, so a hot-region writer serialized queries that
never touch its region.  :class:`StripedCache` splits one logical cache into
``stripes`` independently locked :class:`LRUCache` stripes, keyed by a stable
hash of the cache key (the region signature) — the randomized splitting of
hotspot values that MRVs (SIGMOD'23) apply to numeric aggregates, applied
here to cache bookkeeping:

* queries touching different stripes never contend;
* a maintenance sweep (:meth:`evict_where`, the dynamic engine's repair pass)
  locks one stripe at a time, so it only ever blocks the queries whose
  regions share a stripe with the entry it is currently repairing;
* each stripe carries an **epoch**, bumped when an update's sweep changed
  something in that stripe — the per-stripe replacement for the engine-wide
  generation counter.  Epoch histories make write skew observable per
  region-hash class (:meth:`stats` exports them, the serve snapshot carries
  them as ``repro_stripe_epoch``).

Semantics relative to a single ``LRUCache`` of the same total capacity:
``get``/``put``/``replace``/``touch`` behave identically as long as no stripe
overflows (capacity is divided evenly, so any working set of at most
``maxsize // stripes`` distinct keys is exactly equivalent — the property the
hypothesis suite checks); under overflow, eviction is least-recently-used
*within the stripe* rather than globally.  Predicate eviction
(:meth:`evict_where`) is exactly equivalent: the evicted key set depends only
on cache contents, never on stripe placement.

Lock acquisition time is measured and published to the
``repro_stripe_lock_wait_seconds{cache=...,stripe=...}`` histogram while
observability is enabled, which is how the serve soak lane sees contention.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import Iterator

from repro.engine.cache import LRUCache
from repro.obs import runtime as _obs

#: Default stripe count; 8 keeps label cardinality low while removing most
#: same-lock collisions for the serving thread pools this repo configures.
DEFAULT_STRIPES = 8


def stripe_index(key, stripes: int) -> int:
    """Stable stripe assignment for a cache key.

    ``hash()`` is salted per process for strings, so the region-signature
    keys would land on different stripes in the owner and in a worker that
    recomputes the mapping; CRC32 of the key's ``repr`` is stable across
    processes and runs, which keeps stripe placement reproducible in tests
    and epoch exports comparable across snapshots.
    """
    return zlib.crc32(repr(key).encode("utf-8", "surrogatepass")) % stripes


class _Stripe:
    """One independently locked stripe: an LRU shard plus its epoch."""

    __slots__ = ("lock", "cache", "epoch")

    def __init__(self, maxsize: int, name: str | None):
        self.lock = threading.Lock()
        self.cache = LRUCache(maxsize, name=name)
        self.epoch = 0


class StripedCache:
    """A bounded key/value store striped over independently locked shards.

    Drop-in for :class:`~repro.engine.cache.LRUCache` in the engine: the full
    bookkeeping API (``get``/``put``/``touch``/``replace``/``scan``/
    ``evict_where``/``clear``/``stats``) is provided, each call locking only
    the stripe(s) it touches.  ``name`` labels both the shared
    ``repro_cache_events_total`` series (stripes aggregate under one cache
    name) and the per-stripe lock-wait histogram.
    """

    def __init__(self, maxsize: int, *, stripes: int = DEFAULT_STRIPES,
                 name: str | None = None):
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        if stripes <= 0:
            raise ValueError("stripe count must be positive")
        self.maxsize = int(maxsize)
        self.name = name
        self.stripes = int(stripes)
        per_stripe = max(1, -(-self.maxsize // self.stripes))  # ceil division
        self._stripes = [_Stripe(per_stripe, name) for _ in range(self.stripes)]

    # ------------------------------------------------------------- stripe ops
    def stripe_of(self, key) -> int:
        """The stripe index ``key`` maps to."""
        return stripe_index(key, self.stripes)

    def _acquire(self, stripe: _Stripe) -> None:
        """Take a stripe lock, publishing the wait when observability is on.

        The fast path (lock free, observability off) is one ``acquire``;
        waits are only timed when the uncontended grab fails.
        """
        if stripe.lock.acquire(blocking=False):
            return
        started = time.perf_counter()
        stripe.lock.acquire()
        if self.name is not None and _obs._ENABLED:
            from repro.obs.names import STRIPE_LOCK_WAIT_SECONDS
            STRIPE_LOCK_WAIT_SECONDS.observe(
                time.perf_counter() - started,
                cache=self.name,
                stripe=str(self._stripes.index(stripe)),
            )

    def epoch_of(self, key) -> int:
        """Current epoch of the stripe holding ``key`` (no lock needed: reads
        of a Python int are atomic, and callers re-check under the stripe
        lock before acting on it)."""
        return self._stripes[self.stripe_of(key)].epoch

    def bump_epoch(self, index: int) -> int:
        """Advance one stripe's epoch (an update's sweep changed the stripe)."""
        stripe = self._stripes[index]
        self._acquire(stripe)
        try:
            stripe.epoch += 1
            return stripe.epoch
        finally:
            stripe.lock.release()

    def epochs(self) -> list[int]:
        """Per-stripe epoch snapshot, by stripe index."""
        return [stripe.epoch for stripe in self._stripes]

    # ---------------------------------------------------------- LRUCache API
    def __len__(self) -> int:
        return sum(len(stripe.cache) for stripe in self._stripes)

    def __contains__(self, key) -> bool:
        stripe = self._stripes[self.stripe_of(key)]
        self._acquire(stripe)
        try:
            return key in stripe.cache
        finally:
            stripe.lock.release()

    def get(self, key, default=None):
        """Value for ``key`` (refreshing stripe recency), or ``default``."""
        stripe = self._stripes[self.stripe_of(key)]
        self._acquire(stripe)
        try:
            return stripe.cache.get(key, default)
        finally:
            stripe.lock.release()

    def put(self, key, value) -> None:
        """Insert or refresh ``key``; evict the stripe's least-recent beyond
        its share of the capacity."""
        stripe = self._stripes[self.stripe_of(key)]
        self._acquire(stripe)
        try:
            stripe.cache.put(key, value)
        finally:
            stripe.lock.release()

    def put_at_epoch(self, key, value, epoch: int) -> bool:
        """Insert ``key`` only if its stripe's epoch still equals ``epoch``.

        This is the per-stripe replacement for the engine's generation-guarded
        cache write: a query captures the stripe epoch at lookup time and the
        write is dropped when an update's sweep moved the stripe on in
        between — the check and the insert are atomic under the stripe lock,
        so a sweep can never run between them.  Returns whether the value was
        stored.
        """
        stripe = self._stripes[self.stripe_of(key)]
        self._acquire(stripe)
        try:
            if stripe.epoch != epoch:
                return False
            stripe.cache.put(key, value)
            return True
        finally:
            stripe.lock.release()

    def put_if(self, key, value, predicate) -> bool:
        """Insert ``key`` only if ``predicate()`` holds under the stripe lock.

        The check and the insert are atomic with respect to every other
        operation on the stripe — in particular an update's
        :meth:`evict_where` sweep, which is what makes the serve engine's
        seqlock guard sound: a sweep can never slip between a passing check
        and the put.  Returns whether the value was stored.
        """
        stripe = self._stripes[self.stripe_of(key)]
        self._acquire(stripe)
        try:
            if not predicate():
                return False
            stripe.cache.put(key, value)
            return True
        finally:
            stripe.lock.release()

    def touch(self, key) -> None:
        """Refresh stripe recency without affecting hit/miss counters."""
        stripe = self._stripes[self.stripe_of(key)]
        self._acquire(stripe)
        try:
            stripe.cache.touch(key)
        finally:
            stripe.lock.release()

    def replace(self, key, value) -> bool:
        """Swap the value of an existing key; recency and counters untouched."""
        stripe = self._stripes[self.stripe_of(key)]
        self._acquire(stripe)
        try:
            return stripe.cache.replace(key, value)
        finally:
            stripe.lock.release()

    def scan(self) -> Iterator[tuple]:
        """Iterate ``(key, value)`` pairs, most recent first *per stripe*.

        Each stripe is snapshotted under its own lock, one at a time, so a
        scan never blocks the whole cache.  Recency order is exact within a
        stripe and interleaved across stripes; the engine's containment
        lookups only need "recently used entries early", which per-stripe
        order preserves.
        """
        snapshots = []
        for stripe in self._stripes:
            self._acquire(stripe)
            try:
                snapshots.append(list(stripe.cache.scan()))
            finally:
                stripe.lock.release()
        # Round-robin merge: the most recent entry of every stripe comes
        # before any stripe's second-most-recent.
        merged: list[tuple] = []
        for position in range(max((len(s) for s in snapshots), default=0)):
            for snapshot in snapshots:
                if position < len(snapshot):
                    merged.append(snapshot[position])
        return iter(merged)

    def evict_where(self, predicate) -> int:
        """Drop every entry matching ``predicate``, one stripe at a time.

        The evicted key set is exactly what a single-lock cache would drop;
        only the blocking granularity differs (queries to other stripes
        proceed while one stripe is swept).  A stripe whose contents changed
        gets its epoch bumped, so concurrently captured epochs for that
        stripe invalidate pending cache writes.
        """
        removed = 0
        for stripe in self._stripes:
            self._acquire(stripe)
            try:
                count = stripe.cache.evict_where(predicate)
                if count:
                    stripe.epoch += 1
                removed += count
            finally:
                stripe.lock.release()
        return removed

    def clear(self) -> None:
        """Drop every entry (counters are preserved, epochs advance)."""
        for stripe in self._stripes:
            self._acquire(stripe)
            try:
                if len(stripe.cache):
                    stripe.epoch += 1
                stripe.cache.clear()
            finally:
                stripe.lock.release()

    # ---------------------------------------------------------------- stats
    @property
    def hits(self) -> int:
        return sum(stripe.cache.hits for stripe in self._stripes)

    @property
    def misses(self) -> int:
        return sum(stripe.cache.misses for stripe in self._stripes)

    @property
    def evictions(self) -> int:
        return sum(stripe.cache.evictions for stripe in self._stripes)

    def stats(self) -> dict:
        """Aggregate counters plus the per-stripe size/epoch breakdown."""
        return {
            "size": len(self),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stripes": self.stripes,
            "stripe_sizes": [len(stripe.cache) for stripe in self._stripes],
            "stripe_epochs": self.epochs(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StripedCache(size={len(self)}/{self.maxsize}, "
                f"stripes={self.stripes}, hits={self.hits}, misses={self.misses})")
