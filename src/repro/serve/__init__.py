"""The serving tier: shared-memory dataset, striped caches, socket front-end.

One process owns the dataset (a :class:`~repro.serve.engine.ServeEngine`
wrapping shared-memory record buffers and a packable R-tree); query workers
attach the shared segments zero-copy instead of rebuilding per spawn; an
asyncio JSONL server (``repro serve``) multiplexes concurrent query and
update clients over it.  See the README's "Serving" section for the
protocol and knobs.
"""

from repro.serve.engine import ServeEngine
from repro.serve.packed import PackedRTree
from repro.serve.shm import (
    AttachedSegment,
    OwnedSegment,
    SharedRecordStore,
    attach_arrays,
    pack_arrays,
)
from repro.serve.stripes import DEFAULT_STRIPES, StripedCache, stripe_index

__all__ = [
    "AttachedSegment",
    "DEFAULT_STRIPES",
    "OwnedSegment",
    "PackedRTree",
    "ServeEngine",
    "SharedRecordStore",
    "StripedCache",
    "attach_arrays",
    "pack_arrays",
    "stripe_index",
]
