"""Shared-memory segment lifecycle and the shared record store.

The serving tier keeps exactly one copy of the dataset per machine: the
record buffer and the packed R-tree node arrays live in
``multiprocessing.shared_memory`` segments, and query workers map them
zero-copy instead of rebuilding shard state on spawn.  Python's
:class:`~multiprocessing.shared_memory.SharedMemory` has two well-known
lifecycle traps this module owns centrally:

* **attacher-side tracker interference** — on POSIX every
  ``SharedMemory.__init__`` (attach included) registers the segment with a
  ``resource_tracker``.  A standalone attacher process would then *unlink*
  the owner's segment via its own tracker when it exits (and print "leaked
  shared_memory" warnings); a pool worker sharing the owner's tracker
  would instead clash with the owner's bookkeeping if it tried to
  unregister on detach.  :class:`AttachedSegment` therefore suppresses the
  registration during attach — correct in every topology — so workers can
  die, including ``SIGKILL`` mid-query, without touching the owner's
  segments;
* **owner-side unlink on interpreter exit** — :class:`OwnedSegment` carries
  a ``weakref.finalize`` (which also runs at interpreter shutdown) that
  unlinks the segment, so no ``/dev/shm`` entry outlives the serving
  process even when :meth:`close` was never called.  ``unlink`` itself
  deregisters from the tracker, so a clean exit prints no warnings either.

Unlinking is decoupled from unmapping: on POSIX, removing the name leaves
existing mappings valid, so the owner may retire a segment (e.g. after the
record buffer doubled) while late workers still read their old mapping.
"""

from __future__ import annotations

import threading
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.dynamic.store import RecordStore

#: Byte alignment of arrays packed into one segment (numpy SIMD-friendly).
_ALIGN = 64

#: Serializes SharedMemory construction against the register patch below, so
#: an OwnedSegment created concurrently with an attach still gets tracked.
_TRACKER_MUTEX = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach by name without a resource-tracker registration.

    Python < 3.13 has no ``track=False``: ``SharedMemory.__init__``
    unconditionally registers, attach included.  An attacher must not be
    registered anywhere — its own tracker would unlink the owner's segment
    at exit, and a shared (inherited) tracker holds the *owner's* entry,
    which a detach-time unregister would clobber.  Suppressing the
    registration for the duration of the attach is correct in every
    topology; the window is serialized so concurrent owned creations in
    this process still register.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return shared_memory.SharedMemory(name=name)
    with _TRACKER_MUTEX:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _finalize_owned(shm: shared_memory.SharedMemory) -> None:
    """Unlink (and best-effort close) an owned segment at GC/interpreter exit."""
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass
    try:
        shm.close()
    except BufferError:
        # numpy views of the mapping are still alive; the mapping dies with
        # the process, and the name is already gone.
        pass


class OwnedSegment:
    """A shared-memory segment this process created and must unlink."""

    def __init__(self, nbytes: int):
        with _TRACKER_MUTEX:
            self.shm = shared_memory.SharedMemory(
                create=True, size=max(int(nbytes), 1)
            )
        self._finalizer = weakref.finalize(self, _finalize_owned, self.shm)

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self):
        return self.shm.buf

    def unlink(self) -> None:
        """Remove the segment's name now; existing mappings stay valid."""
        try:
            self.shm.unlink()
        except (FileNotFoundError, OSError):
            pass

    def close(self) -> None:
        """Unlink and release the mapping (tolerates live numpy views)."""
        self._finalizer.detach()
        _finalize_owned(self.shm)


class AttachedSegment:
    """A segment mapped by name, never registered so no tracker unlinks it."""

    def __init__(self, name: str):
        self.shm = _attach_untracked(name)
        self._finalizer = weakref.finalize(self, _close_attached, self.shm)

    @property
    def buf(self):
        return self.shm.buf

    def close(self) -> None:
        self._finalizer.detach()
        _close_attached(self.shm)


def _close_attached(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:
        pass


def unlink_segment(name: str) -> bool:
    """Unlink a segment by name (orphan cleanup after a ``SIGKILL``).

    A killed owner never ran its finalizers, so its segments outlive it in
    ``/dev/shm``; crash recovery calls this for every name recorded in the
    shm manifest.  Returns ``True`` when a segment was actually removed.
    """
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        return False
    finally:
        _close_attached(shm)
    return True


def pack_arrays(arrays: dict[str, np.ndarray], *, meta: dict | None = None
                ) -> tuple[OwnedSegment, dict]:
    """Copy named arrays into one owned segment; returns it plus a manifest.

    The manifest is a plain JSON-able mapping — ``{"segment": name,
    "meta": {...}, "fields": {key: {"dtype", "shape", "offset"}}}`` — that
    :func:`attach_arrays` resolves in any process.
    """
    offset = 0
    fields: dict[str, dict] = {}
    for key, array in arrays.items():
        offset = -(-offset // _ALIGN) * _ALIGN
        fields[key] = {
            "dtype": array.dtype.str,
            "shape": [int(s) for s in array.shape],
            "offset": offset,
        }
        offset += array.nbytes
    segment = OwnedSegment(offset)
    for key, array in arrays.items():
        spec = fields[key]
        view = np.ndarray(
            tuple(spec["shape"]), dtype=spec["dtype"], buffer=segment.buf,
            offset=spec["offset"],
        )
        view[...] = array
    manifest = {"segment": segment.name, "meta": dict(meta or {}), "fields": fields}
    return segment, manifest


def attach_arrays(manifest: dict) -> tuple[AttachedSegment, dict[str, np.ndarray]]:
    """Map a :func:`pack_arrays` manifest; the segment handle keeps views valid.

    Raises :class:`FileNotFoundError` when the owner already retired the
    segment (callers refresh their descriptor and retry).
    """
    segment = AttachedSegment(manifest["segment"])
    arrays = {
        key: np.ndarray(
            tuple(spec["shape"]), dtype=spec["dtype"], buffer=segment.buf,
            offset=spec["offset"],
        )
        for key, spec in manifest["fields"].items()
    }
    return segment, arrays


class SharedRecordStore(RecordStore):
    """A :class:`RecordStore` whose buffers live in shared memory.

    Behaviour (stable ids, tombstones, amortized doubling) is inherited
    unchanged; only the allocation hooks differ.  On growth the replaced
    segments are *unlinked* immediately (no ``/dev/shm`` leak) but their
    mappings are retired rather than force-closed, because the engine and
    in-flight queries may still hold numpy views of the old buffer — those
    views stay valid until the last reference dies.
    """

    def __init__(self, values, *, capacity: int | None = None):
        # Set before super().__init__, which calls _allocate.
        self._segments: list[tuple[OwnedSegment, OwnedSegment]] = []
        self._retired: list[tuple[OwnedSegment, OwnedSegment]] = []
        super().__init__(values, capacity=capacity)

    def _allocate(self, size: int, d: int) -> tuple[np.ndarray, np.ndarray]:
        values_segment = OwnedSegment(size * d * np.dtype(np.float64).itemsize)
        active_segment = OwnedSegment(size * np.dtype(np.bool_).itemsize)
        buffer = np.ndarray((size, d), dtype=np.float64, buffer=values_segment.buf)
        active = np.ndarray((size,), dtype=np.bool_, buffer=active_segment.buf)
        buffer[...] = 0.0
        active[...] = False
        self._segments.append((values_segment, active_segment))
        return buffer, active

    def _discard(self, buffer: np.ndarray, active: np.ndarray) -> None:
        # _grow replaces the oldest live pair (there are at most two: the
        # one being retired and the one _allocate just appended).
        pair = self._segments.pop(0)
        for segment in pair:
            segment.unlink()
        self._retired.append(pair)

    def segment_names(self) -> list[str]:
        """Names of every *live* segment (retired mappings are unlinked)."""
        return [segment.name for pair in self._segments for segment in pair]

    def shared_location(self) -> dict:
        """Where the *current* value buffer lives: segment name plus shape."""
        values_segment, _ = self._segments[-1]
        return {
            "segment": values_segment.name,
            "shape": [int(s) for s in self._buffer.shape],
        }

    def close(self) -> None:
        """Unlink every segment this store ever created (idempotent)."""
        for pair in self._segments + self._retired:
            for segment in pair:
                segment.close()
        self._segments = []
        self._retired = []
