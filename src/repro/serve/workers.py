"""Spawn-side query evaluation against shared-memory dataset segments.

:func:`worker_query` is the function a serving process ships to its query
worker pool.  Instead of pickling the record matrix and rebuilding an R-tree
per spawn (the ``repro.parallel`` cold-start cost), a worker *attaches* the
segments named by the engine's :meth:`~repro.serve.engine.ServeEngine.\
shared_descriptor` — O(1) regardless of dataset size — and traverses the
packed tree in place.  Attachments are memoized per process and keyed by the
descriptor's generation, so a long-lived worker re-attaches only when the
dataset actually changed.

Staleness is handled by name removal: when the owner retires a segment the
attach raises :class:`FileNotFoundError` and the worker reports
``{"stale": True}``; the caller fetches a fresh descriptor and retries.

:func:`worker_query_rebuild` is the control arm for the attach-vs-rebuild
benchmark: identical query evaluation, but the dataset arrives by pickle and
the R-tree is rebuilt in the worker.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.jaa import JAA
from repro.core.region import Region, hyperrectangle
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband
from repro.serve.packed import PackedRTree
from repro.serve.shm import AttachedSegment, attach_arrays

#: Per-process attachment memo: descriptor key -> (segments, values, tree).
_ATTACHMENTS: dict[tuple, tuple] = {}

#: Per-process Region memo (constructing one runs a Chebyshev LP).
_REGIONS: dict[tuple, Region] = {}

#: Per-process rebuild memo for the benchmark control arm.
_REBUILT: dict[int, tuple] = {}


def reset_worker_state() -> None:
    """Drop every per-process memo (attached segments close via GC)."""
    for segments, _values, _tree in _ATTACHMENTS.values():
        for segment in segments:
            segment.close()
    _ATTACHMENTS.clear()
    _REGIONS.clear()
    _REBUILT.clear()


def _descriptor_key(descriptor: dict) -> tuple:
    if descriptor.get("kind") == "colstore":
        return (
            "colstore",
            int(descriptor["generation"]),
            descriptor["buffer"]["directory"],
            descriptor["buffer"]["columns_file"],
            descriptor["tree"]["path"],
        )
    return (
        int(descriptor["generation"]),
        descriptor["buffer"]["segment"],
        descriptor["tree"]["segment"],
    )


def _attach_colstore(descriptor: dict) -> tuple:
    """Map the colstore descriptor's files directly: no shm, no pickling.

    The generation's column file and page file are both unlinked when the
    owner moves on, so staleness surfaces exactly like retired segments —
    as :class:`FileNotFoundError` on attach.
    """
    from repro.colstore.pages import PagedRTree
    from repro.colstore.store import attach_columns
    from repro.exceptions import StorageError

    values = attach_columns(descriptor["buffer"], descriptor["count"])
    try:
        tree = PagedRTree(descriptor["tree"]["path"], values)
    except StorageError as exc:
        # A vanished meta sidecar means the pack generation was retired.
        if isinstance(exc.__cause__, FileNotFoundError):
            raise exc.__cause__
        raise
    return ((), values, tree)


def _attachment(descriptor: dict) -> tuple:
    """The memoized ``(segments, values, tree)`` triple for a descriptor.

    Raises :class:`FileNotFoundError` when either segment was retired.
    """
    key = _descriptor_key(descriptor)
    cached = _ATTACHMENTS.get(key)
    if cached is not None:
        return cached
    # The dataset moved on: release stale mappings before attaching anew.
    if _ATTACHMENTS:
        reset_worker_state()
    if descriptor.get("kind") == "colstore":
        triple = _attach_colstore(descriptor)
        _ATTACHMENTS[key] = triple
        return triple
    buffer_segment = AttachedSegment(descriptor["buffer"]["segment"])
    try:
        tree_segment, arrays = attach_arrays(descriptor["tree"])
    except FileNotFoundError:
        buffer_segment.close()
        raise
    shape = tuple(descriptor["buffer"]["shape"])
    buffer = np.ndarray(shape, dtype=np.float64, buffer=buffer_segment.buf)
    values = buffer[: int(descriptor["count"])]
    meta = descriptor["tree"]["meta"]
    tree = PackedRTree(
        {**arrays, "dimension": meta["dimension"], "size": meta["size"]}, values
    )
    triple = ((buffer_segment, tree_segment), values, tree)
    _ATTACHMENTS[key] = triple
    return triple


def _region_for(lower, upper) -> Region:
    key = (
        tuple(float(v) for v in lower),
        tuple(float(v) for v in upper),
    )
    cached = _REGIONS.get(key)
    if cached is None:
        cached = _REGIONS[key] = hyperrectangle(lower, upper)
    return cached


def _evaluate(values: np.ndarray, tree, lower, upper, k: int, version: str) -> dict:
    """Filter + refine; answers are in stable record-id space already.

    The packed tree only reaches live records (tombstones were detached from
    the tree by the owner's delete), and skyband indices are buffer row ids.
    """
    region = _region_for(lower, upper)
    k = int(k)
    skyband = compute_r_skyband(values, region, k, tree=tree)
    answer: dict = {"stale": False, "skyband": int(skyband.size)}
    if version in ("utk1", "both"):
        result = RSA(values, region, k, skyband=skyband).run()
        answer["utk1"] = [int(i) for i in result.indices]
    if version in ("utk2", "both"):
        result = JAA(values, region, k, skyband=skyband).run()
        answer["utk2"] = sorted(
            sorted(int(i) for i in top_k) for top_k in result.distinct_top_k_sets
        )
        answer["utk2_partitions"] = len(result)
    return answer


def worker_query(descriptor: dict, lower, upper, k: int,
                 version: str = "utk1") -> dict:
    """Answer one query against attached shared segments (module-level:
    picklable under the ``spawn`` start method)."""
    try:
        _segments, values, tree = _attachment(descriptor)
    except FileNotFoundError:
        return {"stale": True}
    return _evaluate(values, tree, lower, upper, k, version)


def worker_attach_probe(descriptor: dict) -> dict:
    """Attach (memoized) and report setup cost — the benchmark's attach arm."""
    started = time.perf_counter()
    try:
        _segments, values, _tree = _attachment(descriptor)
    except FileNotFoundError:
        return {"stale": True}
    return {
        "stale": False,
        "setup_seconds": time.perf_counter() - started,
        "rows": int(values.shape[0]),
    }


def worker_query_rebuild(token: int, values: np.ndarray, lower, upper, k: int,
                         version: str = "utk1") -> dict:
    """The rebuild control arm: dataset by pickle, R-tree rebuilt per process."""
    cached = _REBUILT.get(int(token))
    if cached is None:
        from repro.index.rtree import RTree

        matrix = np.asarray(values, dtype=float)
        cached = (matrix, RTree(matrix))
        _REBUILT.clear()
        _REBUILT[int(token)] = cached
    matrix, tree = cached
    return _evaluate(matrix, tree, lower, upper, k, version)


def worker_rebuild_probe(token: int, values: np.ndarray) -> dict:
    """Rebuild (memoized) and report setup cost — the benchmark's control arm."""
    started = time.perf_counter()
    cached = _REBUILT.get(int(token))
    if cached is None:
        from repro.index.rtree import RTree

        matrix = np.asarray(values, dtype=float)
        _REBUILT.clear()
        _REBUILT[int(token)] = (matrix, RTree(matrix))
        rows = int(matrix.shape[0])
    else:
        rows = int(cached[0].shape[0])
    return {"setup_seconds": time.perf_counter() - started, "rows": rows}
