"""Zero-copy R-tree traversal over :meth:`RTree.flatten` arrays.

:class:`PackedRTree` exposes exactly the node API the BBS traversal
(:func:`repro.skyline.bbs.bbs_candidates`) and the skyband layers consume —
``dimension``, ``root``, ``count_access`` on the tree; ``is_leaf``, ``mbb``,
``children``, ``entries`` on nodes — backed by the flat arrays a serving
worker attached from shared memory.  Node proxies are created lazily during
traversal, so attaching costs O(1) regardless of tree size, and entry
coordinates are *views* of the shared record buffer (never copied).
"""

from __future__ import annotations

import numpy as np

from repro.index.mbb import MBB
from repro.index.rtree import ACCESS_OPS
from repro.obs import runtime as _obs


class _PackedNode:
    """Lazy proxy for one node of a packed tree."""

    __slots__ = ("_tree", "_position")

    def __init__(self, tree: "PackedRTree", position: int):
        self._tree = tree
        self._position = position

    @property
    def is_leaf(self) -> bool:
        return bool(self._tree.node_is_leaf[self._position])

    @property
    def mbb(self) -> MBB | None:
        lower = self._tree.node_lower[self._position]
        if np.isnan(lower[0]):
            return None
        return MBB(lower, self._tree.node_upper[self._position])

    @property
    def children(self) -> list["_PackedNode"]:
        first = int(self._tree.node_first[self._position])
        count = int(self._tree.node_count[self._position])
        return [
            _PackedNode(self._tree, int(child))
            for child in self._tree.child_nodes[first:first + count]
        ]

    @property
    def entries(self) -> list[tuple[int, np.ndarray]]:
        first = int(self._tree.node_first[self._position])
        count = int(self._tree.node_count[self._position])
        values = self._tree.values
        return [
            (int(record_id), values[int(record_id)])
            for record_id in self._tree.entry_ids[first:first + count]
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"_PackedNode({kind}, position={self._position})"


class PackedRTree:
    """Read-only R-tree over flattened node arrays plus the value matrix.

    Parameters
    ----------
    flat:
        The :meth:`~repro.index.rtree.RTree.flatten` mapping (or the same
        arrays re-attached from shared memory, with ``dimension``/``size``
        restored from the pack manifest's ``meta``).
    values:
        The record buffer prefix; leaf entry ids index into it.
    """

    def __init__(self, flat: dict, values: np.ndarray):
        self.node_lower = flat["node_lower"]
        self.node_upper = flat["node_upper"]
        self.node_is_leaf = flat["node_is_leaf"]
        self.node_first = flat["node_first"]
        self.node_count = flat["node_count"]
        self.child_nodes = flat["child_nodes"]
        self.entry_ids = flat["entry_ids"]
        self.dimension = int(flat["dimension"]) or None
        self.size = int(flat["size"])
        self.values = values
        self.access_counts: dict[str, int] = dict.fromkeys(ACCESS_OPS, 0)

    @property
    def root(self) -> _PackedNode:
        return _PackedNode(self, 0)

    def count_access(self, op: str, n: int = 1) -> None:
        """Same tally contract as :meth:`RTree.count_access`."""
        if not n:
            return
        self.access_counts[op] += n
        if _obs._ENABLED:
            from repro.obs.names import RTREE_NODE_ACCESSES

            RTREE_NODE_ACCESSES.inc(n, op=op)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedRTree(size={self.size}, nodes={self.node_is_leaf.shape[0]})"
