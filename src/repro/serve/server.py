"""Asyncio JSONL front-end over a :class:`~repro.serve.engine.ServeEngine`.

One line in, one line out: requests are JSON objects carrying an ``op``
(``query`` / ``insert`` / ``delete`` / ``stats`` / ``ping`` / ``shutdown``)
plus the same fields the ``repro stream`` event format uses, and an optional
``rid`` echoed back for correlation.  Responses are ``{"rid", "ok", ...}``;
failures carry ``{"ok": false, "error", "code"}`` — ``code`` is the
machine-readable error class (``bad_request`` / ``overloaded`` /
``worker_crash`` / ``shutting_down``) clients key their retry decisions on
— and never tear down the connection.

Concurrency model:

* the event loop owns admission and the update counters; queries fan out to
  a thread pool (or, with ``shared_workers``, to a supervised spawn process
  pool that attaches the engine's shared-memory descriptor zero-copy and
  survives worker ``SIGKILL``);
* updates serialize through a dedicated single-thread executor, so the
  stream order of any one updater connection is the order applied;
* every query response carries ``{"seq": {"lo", "hi"}}`` — the number of
  updates *finished* when the query was admitted and *started* when it
  completed.  The engine guarantees the answer matches the dataset at some
  update prefix within that window, which is exactly what the soak
  checker's serial replay verifies (zero stale answers).

Durability (``wal=`` given): each update is validated, appended to the
write-ahead log, *then* applied, and only acked after both — so every acked
update survives a ``SIGKILL`` (replayed by
:func:`repro.resilience.recovery.recover`).  Updates carrying a ``txid``
are deduplicated against a bounded cache seeded from the recovery replay,
making client retries exactly-once even across a crash: a WAL'd-but-unacked
update that recovery re-applied acks the retry with its original position.

``SIGTERM``/``SIGINT`` trigger a graceful drain: stop accepting, let
in-flight requests finish, flush per-stripe epoch gauges, exit 0.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import functools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.region import Region, hyperrectangle
from repro.exceptions import ReproError
from repro.obs import names as _metric_names
from repro.resilience.supervisor import SupervisedPool, WorkerCrashError
from repro.serve.engine import ServeEngine

#: Update ops accepted on the wire (same shapes as the stream event format).
_UPDATE_OPS = ("insert", "delete")

#: Most recent txid→ack payloads kept for exactly-once update retries.
_TXID_CACHE = 4096


class OverloadedError(ReproError):
    """Admission refused: too many queries in flight (client should back off)."""

    def __init__(self, message: str, *, retry_after: float = 0.05):
        super().__init__(message)
        self.retry_after = float(retry_after)


class ShuttingDownError(ReproError):
    """The server is draining and no longer admits work."""


def _error_code(error: Exception) -> tuple[str, dict]:
    """Map an exception to the wire ``code`` plus extra response fields."""
    if isinstance(error, OverloadedError):
        return "overloaded", {"retry_after": error.retry_after}
    if isinstance(error, ShuttingDownError):
        return "shutting_down", {}
    if isinstance(error, WorkerCrashError):
        return "worker_crash", {}
    return "bad_request", {}


class UTKServer:
    """The serving loop: admission, dispatch, drain (see module docstring)."""

    def __init__(
        self,
        engine: ServeEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        query_threads: int = 4,
        shared_workers: int = 0,
        wal=None,
        recovered: int = 0,
        recovered_txids: dict | None = None,
        max_inflight: int = 64,
        fault_plan=None,
    ):
        self._engine = engine
        self._host = host
        self._port = int(port)
        self._query_pool = ThreadPoolExecutor(
            max_workers=max(1, int(query_threads)), thread_name_prefix="serve-query"
        )
        self._update_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-update"
        )
        self._shared_workers = int(shared_workers)
        self._process_pool: SupervisedPool | None = None
        self._regions: dict[tuple, Region] = {}
        self._regions_lock = threading.Lock()
        self._descriptor: dict | None = None
        self._wal = wal
        self._fault_plan = fault_plan
        self._max_inflight = max(1, int(max_inflight))
        self._inflight_queries = 0  # event-loop thread only
        # txid → the ack payload its first application produced; bounded
        # LRU-ish (insertion order) and seeded from the recovery replay.
        self._txids: collections.OrderedDict[str, dict] = collections.OrderedDict(
            recovered_txids or {}
        )
        while len(self._txids) > _TXID_CACHE:
            self._txids.popitem(last=False)
        self._inflight_txids: dict[str, asyncio.Future] = {}
        # Owned by the event-loop thread; read (racily but monotonically)
        # by query threads via the admission/completion snapshots.
        self.recovered = int(recovered)
        self.updates_started = self.recovered
        self.updates_finished = self.recovered
        self.update_failures = 0
        self.requests_served = 0
        # Applied-update count maintained *inside* the single update
        # executor: the fault plan's stall positions key off it, and unlike
        # updates_finished it never lags the executor's own progress.
        self._apply_count = self.recovered
        self._manifest_names = (
            sorted(engine.shm_segment_names()) if wal is not None else None
        )
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        if self._shared_workers > 0:
            self._process_pool = SupervisedPool(self._shared_workers)
            self._descriptor = self._engine.shared_descriptor()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`request_stop`; then drain and shut down."""
        async with self._server:
            await self._server.start_serving()
            await self._stop.wait()
            self._server.close()
            await self._server.wait_closed()
        # Connection handlers exit on their own once readers hit EOF or the
        # in-flight request finishes; executor shutdown waits for the rest.
        await asyncio.get_running_loop().run_in_executor(None, self._shutdown_pools)
        if self._wal is not None:
            self._wal.sync()
        self.flush_gauges()

    def _shutdown_pools(self) -> None:
        self._query_pool.shutdown(wait=True)
        self._update_pool.shutdown(wait=True)
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)

    def request_stop(self) -> None:
        """Begin a graceful drain; safe from signal handlers and other threads."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._stop.set)

    def flush_gauges(self) -> None:
        """Publish the per-stripe epochs (contention state) as gauges."""
        for cache, epochs in self._engine.stripe_epochs().items():
            for index, epoch in enumerate(epochs):
                _metric_names.STRIPE_EPOCH.set(epoch, cache=cache, stripe=str(index))

    # ------------------------------------------------------------ connection
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while not self._stop.is_set():
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch_line(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch_line(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as error:
            _metric_names.SERVE_REQUESTS.inc(op="invalid", outcome="error")
            return {"rid": None, "ok": False, "code": "bad_request",
                    "error": f"bad request: {error}"}
        rid = request.get("rid")
        op = request.get("op")
        _metric_names.SERVE_INFLIGHT.inc(op=str(op))
        try:
            payload = await self._dispatch(op, request)
        except (ReproError, KeyError, TypeError, ValueError) as error:
            _metric_names.SERVE_REQUESTS.inc(op=str(op), outcome="error")
            code, extra = _error_code(error)
            return {"rid": rid, "ok": False, "op": op, "code": code,
                    "error": f"{type(error).__name__}: {error}", **extra}
        finally:
            _metric_names.SERVE_INFLIGHT.inc(-1, op=str(op))
        _metric_names.SERVE_REQUESTS.inc(op=str(op), outcome="ok")
        self.requests_served += 1
        return {"rid": rid, "ok": True, "op": op, **payload}

    async def _dispatch(self, op, request: dict) -> dict:
        if self._stop.is_set() and op not in ("ping", "stats", "shutdown"):
            raise ShuttingDownError("server is draining")
        if op == "query":
            return await self._handle_query(request)
        if op in _UPDATE_OPS:
            return await self._handle_update(op, request)
        if op == "ping":
            return {}
        if op == "stats":
            self.flush_gauges()
            stats = await asyncio.get_running_loop().run_in_executor(
                self._query_pool, self._engine.statistics
            )
            stats["server"] = {
                "updates_started": self.updates_started,
                "updates_finished": self.updates_finished,
                "update_failures": self.update_failures,
                "requests_served": self.requests_served,
                "shared_workers": self._shared_workers,
                "recovered": self.recovered,
                "max_inflight": self._max_inflight,
                "txids_cached": len(self._txids),
            }
            if self._wal is not None:
                stats["wal"] = {
                    "last_seq": self._wal.last_seq,
                    "appended": self._wal.appended,
                    "segments": [path.name for path in self._wal.segment_paths()],
                }
            if self._process_pool is not None:
                stats["workers"] = {
                    "pids": self._process_pool.worker_pids(),
                    "restarts": self._process_pool.restarts,
                }
            return {"stats": stats}
        if op == "shutdown":
            self._stop.set()
            return {"draining": True}
        raise ValueError(f"unknown op {op!r}")

    # --------------------------------------------------------------- updates
    async def _handle_update(self, op: str, request: dict) -> dict:
        event = {"op": op}
        if op == "insert":
            event["values"] = request["values"]
        else:
            event["id"] = request["id"]
        txid = request.get("txid")
        if txid is not None:
            cached = self._txids.get(txid)
            if cached is not None:
                # Retry of an update already applied (possibly before a
                # crash, replayed from the WAL): ack with the original
                # outcome, never apply twice.
                self._txids.move_to_end(txid)
                return {**cached, "deduplicated": True}
            pending = self._inflight_txids.get(txid)
            if pending is not None:
                payload = await asyncio.shield(pending)
                return {**payload, "deduplicated": True}

        def apply() -> tuple[dict, dict | None]:
            # Validate before the WAL append so nothing unapplyable is ever
            # logged; the single-thread executor makes validate → append →
            # apply atomic with respect to every other update.
            self._engine.validate_updates([event])
            if self._wal is not None:
                self._wal.append(event, txid=txid)
            if self._fault_plan is not None:
                stall = self._fault_plan.stall_for_update(self._apply_count)
                if stall > 0:
                    _metric_names.FAULTS_INJECTED.inc(kind="slow_update")
                    time.sleep(stall)
            outcome = self._engine.apply_updates([event])
            self._apply_count += 1
            # Repack the shared descriptor in the same executor task: the
            # swap below must happen before updates_finished ticks, so a
            # query admitted at sequence n always reaches workers with a
            # descriptor of generation >= n (never a pre-update tree).
            descriptor = (
                self._engine.shared_descriptor()
                if self._process_pool is not None else None
            )
            if self._wal is not None:
                names = sorted(self._engine.shm_segment_names())
                if names != self._manifest_names:
                    from repro.resilience.recovery import write_shm_manifest

                    write_shm_manifest(self._wal.directory, names)
                    self._manifest_names = names
            return outcome, descriptor

        waiter: asyncio.Future | None = None
        if txid is not None:
            waiter = asyncio.get_running_loop().create_future()
            self._inflight_txids[txid] = waiter
        self.updates_started += 1  # event-loop thread: admission order
        try:
            outcome, descriptor = await asyncio.get_running_loop().run_in_executor(
                self._update_pool, apply
            )
        except Exception as error:
            self.update_failures += 1
            if waiter is not None:
                self._inflight_txids.pop(txid, None)
                if not waiter.done():
                    waiter.set_exception(error)
                    waiter.exception()  # mark retrieved if nobody awaits
            raise
        if descriptor is not None:
            self._descriptor = descriptor
        self.updates_finished += 1
        payload = {
            "applied": self.updates_finished,
            "entries_repaired": outcome["entries_repaired"],
            "entries_evicted": outcome["entries_evicted"],
        }
        if op == "insert":
            payload["record"] = int(outcome["inserted_ids"][0])
        else:
            payload["record"] = int(event["id"])
        if txid is not None:
            self._txids[txid] = payload
            while len(self._txids) > _TXID_CACHE:
                self._txids.popitem(last=False)
            self._inflight_txids.pop(txid, None)
            if not waiter.done():
                waiter.set_result(payload)
        return payload

    # --------------------------------------------------------------- queries
    def _region_for(self, lower, upper) -> Region:
        key = (
            tuple(float(v) for v in lower),
            tuple(float(v) for v in upper),
        )
        with self._regions_lock:
            cached = self._regions.get(key)
        if cached is None:
            cached = hyperrectangle(lower, upper)
            with self._regions_lock:
                cached = self._regions.setdefault(key, cached)
        return cached

    def _query_inline(self, lower, upper, k: int, version: str) -> dict:
        region = self._region_for(lower, upper)
        k = int(k)
        payload: dict = {"sources": {}}
        if version in ("utk2", "both"):
            result, payload["sources"]["utk2"] = self._engine.serve_utk2(region, k)
            payload["utk2"] = {
                "partitions": len(result),
                "distinct_top_k_sets": sorted(
                    sorted(int(i) for i in s) for s in result.distinct_top_k_sets
                ),
            }
        if version in ("utk1", "both"):
            result, payload["sources"]["utk1"] = self._engine.serve_utk1(region, k)
            payload["utk1"] = {"records": [int(i) for i in result.indices]}
        return payload

    def _query_shared(self, lower, upper, k: int, version: str) -> dict:
        """Route one query through the zero-copy worker pool.

        A stale descriptor (the engine retired a segment after an update)
        is refreshed and the query retried; the descriptor call itself
        re-packs at most once per dataset generation.  A crashed worker
        (``SIGKILL`` mid-query) is absorbed by the supervised pool, which
        respawns and retries before surfacing ``WorkerCrashError``.
        """
        from repro.serve.workers import worker_query

        for _attempt in range(3):
            descriptor = self._descriptor
            answer = self._process_pool.run(
                worker_query, descriptor, lower, upper, k, version
            )
            if not answer.get("stale"):
                payload: dict = {"sources": {}}
                if "utk1" in answer:
                    payload["utk1"] = {"records": answer["utk1"]}
                    payload["sources"]["utk1"] = "shared-worker"
                if "utk2" in answer:
                    payload["utk2"] = {
                        "partitions": answer["utk2_partitions"],
                        "distinct_top_k_sets": answer["utk2"],
                    }
                    payload["sources"]["utk2"] = "shared-worker"
                return payload
            self._descriptor = self._engine.shared_descriptor()
        raise ReproError("shared-memory descriptor kept going stale")

    async def _handle_query(self, request: dict) -> dict:
        version = request.get("version", "utk1")
        if version not in ("utk1", "utk2", "both"):
            raise ValueError(f"unknown problem version {version!r}")
        lower, upper, k = request["lower"], request["upper"], int(request["k"])
        if self._inflight_queries >= self._max_inflight:
            raise OverloadedError(
                f"{self._inflight_queries} queries in flight (max "
                f"{self._max_inflight}); retry after backoff"
            )
        lo = self.updates_finished  # admission snapshot (event-loop thread)
        runner = (
            self._query_shared
            if self._process_pool is not None
            else self._query_inline
        )
        self._inflight_queries += 1
        try:
            payload = await asyncio.get_running_loop().run_in_executor(
                self._query_pool, functools.partial(runner, lower, upper, k, version)
            )
        finally:
            self._inflight_queries -= 1
        payload["k"] = k
        payload["version"] = version
        payload["seq"] = {"lo": lo, "hi": self.updates_started}
        return payload


class ServerThread:
    """A :class:`UTKServer` on a background thread (tests, scenario backend).

    ``start`` returns the bound address; ``stop`` drains gracefully and
    joins.  The engine's lifetime stays with the caller.
    """

    def __init__(self, engine: ServeEngine, **server_kwargs):
        self._server = UTKServer(engine, **server_kwargs)
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    @property
    def server(self) -> UTKServer:
        return self._server

    def start(self, timeout: float = 30.0) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run, name="serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("server did not come up")
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        return self._server.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surfaced by start()/stop()
            self._failure = error
            self._ready.set()

    async def _main(self) -> None:
        await self._server.start()
        self._ready.set()
        await self._server.serve_until_stopped()

    def stop(self, timeout: float = 30.0) -> None:
        self._server.request_stop()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError("server did not drain in time")
            self._thread = None
        if self._failure is not None:
            raise RuntimeError("server thread failed") from self._failure
