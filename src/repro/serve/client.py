"""Blocking JSONL client for the serve protocol, with retry and deadlines.

Thread-safe per instance only in the trivial sense that each request holds
the connection for its full round trip; concurrent load uses one
:class:`ServeClient` per thread (as the soak harness does).

Resilience semantics:

* every socket operation carries a deadline — a dead or wedged server
  raises :class:`ServeTimeout` instead of hanging forever;
* **idempotent** requests (query/ping/stats, and updates carrying a
  ``txid`` the server deduplicates) are retried through the configured
  :class:`~repro.resilience.retry.RetryPolicy`: the client reconnects,
  re-sends the *same* ``rid``, and backs off exponentially with seeded
  jitter.  Server errors are retried only when their machine-readable
  ``code`` is transient (``overloaded`` — honouring ``retry_after`` —
  ``worker_crash``, ``shutting_down``); permanent errors
  (``bad_request``) raise immediately;
* update helpers (:meth:`insert` / :meth:`delete` / :meth:`send_event`)
  attach a client-unique ``txid`` automatically, so a retry after a lost
  ack is applied exactly once even across a server crash + WAL recovery.

``inject_fault`` is the deterministic chaos hook: it makes the *next*
request lose its connection before or after the send, exercising exactly
the reconnect/retry path a flaky network would.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import socket
import time

from repro.obs import names as _metric_names
from repro.resilience.retry import DEFAULT_RETRY, RETRIABLE_CODES, RetryPolicy

#: Default per-socket-operation deadline (connect and read), seconds.
DEFAULT_TIMEOUT = 30.0


class ServeError(RuntimeError):
    """The server answered ``{"ok": false}`` (or broke protocol).

    ``code`` carries the server's machine-readable error class when one was
    supplied (``bad_request`` / ``overloaded`` / ``worker_crash`` /
    ``shutting_down``); ``retry_after`` the suggested backoff for
    ``overloaded`` responses.
    """

    def __init__(self, message: str, *, code: str | None = None,
                 retry_after: float | None = None):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


class ServeTimeout(ServeError, TimeoutError):
    """A socket operation exceeded its deadline (server dead or wedged)."""


class ServeClient:
    """One socket connection speaking the ``repro serve`` JSONL protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
    ):
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._retry = DEFAULT_RETRY if retry is None else retry
        self._rng = rng if rng is not None else random.Random()
        self._sock: socket.socket | None = None
        self._file = None
        self._rids = itertools.count(1)
        self._txid_tag = f"{os.getpid():x}-{os.urandom(4).hex()}"
        self._txids = itertools.count(1)
        self._fail_next: str | None = None
        self.retries_total = 0
        self._connect()

    # ------------------------------------------------------------- transport
    def _connect(self) -> None:
        self._abort_connection()
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except socket.timeout as exc:
            raise ServeTimeout(
                f"connect to {self._host}:{self._port} timed out "
                f"after {self._timeout}s"
            ) from exc
        self._file = self._sock.makefile("rwb")

    def _abort_connection(self) -> None:
        """Drop the connection so the next request reconnects."""
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._file = None
        self._sock = None

    def inject_fault(self, mode: str) -> None:
        """Chaos hook: fail the next request's connection.

        ``"before_send"`` drops the connection before the request leaves;
        ``"after_send"`` drops it after the send but before the response is
        read — the server may have executed the request, so only the retry
        machinery (rid re-send, txid dedup) makes this safe.
        """
        if mode not in ("before_send", "after_send"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self._fail_next = mode

    def _roundtrip(self, body: dict) -> dict:
        if self._fail_next == "before_send":
            self._fail_next = None
            self._abort_connection()
            raise ConnectionResetError("injected disconnect before send")
        if self._file is None:
            self._connect()
        line = json.dumps(body).encode() + b"\n"
        self._file.write(line)
        self._file.flush()
        if self._fail_next == "after_send":
            self._fail_next = None
            self._abort_connection()
            raise ConnectionResetError("injected disconnect after send")
        try:
            answer = self._file.readline()
        except socket.timeout as exc:
            raise ServeTimeout(
                f"no response within {self._timeout}s (rid {body.get('rid')})"
            ) from exc
        if not answer:
            raise ConnectionResetError("server closed the connection")
        response = json.loads(answer)
        if response.get("rid") != body.get("rid"):
            raise ServeError(f"response out of order: {response!r}")
        return response

    def request(self, payload: dict, *, idempotent: bool | None = None) -> dict:
        """One logical request; retried per policy when safe to do so.

        A request is considered retriable when ``idempotent`` is true or it
        carries a ``txid`` (the server deduplicates re-sends).  Raises
        :class:`ServeError` (with ``code``) on a server-side error,
        :class:`ServeTimeout`/:class:`ConnectionError` when every attempt
        failed to complete a round trip.
        """
        rid = next(self._rids)
        body = {"rid": rid, **payload}
        if idempotent is None:
            idempotent = "txid" in payload
        attempts = self._retry.max_attempts if idempotent else 1
        op = str(payload.get("op"))
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                delay = self._retry.delay(attempt - 1, self._rng)
                retry_after = getattr(last_error, "retry_after", None)
                if retry_after:
                    delay = max(delay, float(retry_after))
                time.sleep(delay)
                self.retries_total += 1
                reason = (
                    getattr(last_error, "code", None)
                    or type(last_error).__name__.lower()
                )
                _metric_names.RETRIES.inc(op=op, reason=str(reason))
            try:
                response = self._roundtrip(body)
            except (ServeTimeout, ConnectionError, OSError) as error:
                self._abort_connection()
                last_error = error
                continue
            if response.get("ok"):
                return response
            error = ServeError(
                response.get("error", "unknown server error"),
                code=response.get("code"),
                retry_after=response.get("retry_after"),
            )
            if idempotent and error.code in RETRIABLE_CODES:
                last_error = error
                continue
            raise error
        assert last_error is not None
        raise last_error

    def close(self) -> None:
        self._abort_connection()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------- ops
    def _next_txid(self) -> str:
        return f"{self._txid_tag}-{next(self._txids)}"

    def ping(self) -> bool:
        return self.request({"op": "ping"}, idempotent=True)["ok"]

    def query(self, lower, upper, k: int, version: str = "utk1") -> dict:
        return self.request({
            "op": "query",
            "lower": [float(v) for v in lower],
            "upper": [float(v) for v in upper],
            "k": int(k),
            "version": version,
        }, idempotent=True)

    def insert(self, values) -> dict:
        return self.request({
            "op": "insert",
            "values": [float(v) for v in values],
            "txid": self._next_txid(),
        })

    def delete(self, record_id: int) -> dict:
        return self.request({
            "op": "delete", "id": int(record_id), "txid": self._next_txid()
        })

    def send_event(self, event: dict) -> dict:
        """Submit a stream-format event (``op`` in insert/delete/query).

        Update events get a ``txid`` attached (unless the caller supplied
        one), making them safely retriable; query events are idempotent by
        nature.
        """
        payload = dict(event)
        if payload.get("op") in ("insert", "delete"):
            payload.setdefault("txid", self._next_txid())
            return self.request(payload)
        return self.request(payload, idempotent=payload.get("op") == "query")

    def stats(self) -> dict:
        return self.request({"op": "stats"}, idempotent=True)["stats"]

    def shutdown(self) -> dict:
        """Ask the server to drain; the connection dies shortly after."""
        return self.request({"op": "shutdown"})
