"""Blocking JSONL client for the serve protocol (one connection per client).

Thread-safe per instance only in the trivial sense that each request holds
the connection for its full round trip; concurrent load uses one
:class:`ServeClient` per thread (as the soak harness does).
"""

from __future__ import annotations

import itertools
import json
import socket


class ServeError(RuntimeError):
    """The server answered ``{"ok": false}``."""


class ServeClient:
    """One socket connection speaking the ``repro serve`` JSONL protocol."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._rids = itertools.count(1)

    # ------------------------------------------------------------- transport
    def request(self, payload: dict) -> dict:
        """One round trip; raises :class:`ServeError` on a server-side error."""
        rid = next(self._rids)
        line = json.dumps({"rid": rid, **payload}).encode() + b"\n"
        self._file.write(line)
        self._file.flush()
        answer = self._file.readline()
        if not answer:
            raise ConnectionError("server closed the connection")
        response = json.loads(answer)
        if response.get("rid") != rid:
            raise ServeError(f"response out of order: {response!r}")
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------- ops
    def ping(self) -> bool:
        return self.request({"op": "ping"})["ok"]

    def query(self, lower, upper, k: int, version: str = "utk1") -> dict:
        return self.request({
            "op": "query",
            "lower": [float(v) for v in lower],
            "upper": [float(v) for v in upper],
            "k": int(k),
            "version": version,
        })

    def insert(self, values) -> dict:
        return self.request({"op": "insert", "values": [float(v) for v in values]})

    def delete(self, record_id: int) -> dict:
        return self.request({"op": "delete", "id": int(record_id)})

    def send_event(self, event: dict) -> dict:
        """Submit a stream-format event (``op`` in insert/delete/query) as is."""
        return self.request(dict(event))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> dict:
        """Ask the server to drain; the connection dies shortly after."""
        return self.request({"op": "shutdown"})
