"""Mixed concurrent load against a running server, with a staleness oracle.

The soak drives a live ``repro serve`` instance with the zipf-churn stream
(:func:`repro.datasets.synthetic.update_stream`): one updater connection
applies every insert/delete in stream order while N query connections fire
the stream's queries concurrently.  Every query response carries the
server's update-sequence window ``[lo, hi]`` — updates finished at
admission, updates started at completion.

The oracle then replays the updates *serially* through a fresh
:class:`~repro.dynamic.engine.DynamicUTKEngine` built from the same initial
dataset, and accepts a concurrent answer iff it exactly matches the serial
answer at **some** update prefix within the query's window.  An answer that
matches no admissible prefix is *stale* — it could only have come from a
cache entry the maintenance sweep should have repaired or evicted — and the
soak fails.  This is linearizability checking specialized to a
single-writer stream: the window is the set of legal linearization points.
A ``"both"`` request yields two independent obligations: its UTK1 and UTK2
answers come from separate cache lookups and may legitimately reflect
different prefixes inside the same window.

Chaos mode hooks in two places without changing the oracle:

* an ``injector`` gets a callback before every update (by stream position)
  and every query (by global admission ordinal) and may kill workers,
  crash + restart the server, or sabotage the calling client's connection;
* clients run with a retry policy, so injected faults surface as retries,
  not thread deaths — the update stream still lands exactly once (txids)
  and every query still gets an answer with a valid window.

After the load drains, a **verification pass** re-queries a sample of the
workload at the final prefix with a pinned window ``[acked, acked]`` and
checks the server's applied counter equals the number of acked updates:
any acked-but-lost update makes this pass fail (the zero-lost-acks gate).
"""

from __future__ import annotations

import threading
import time

from repro.core.region import Region, hyperrectangle
from repro.serve.client import ServeClient

#: Queries re-issued at the final prefix by the verification pass.
DEFAULT_VERIFY_QUERIES = 8


def _canonical_utk1(records) -> list[int]:
    return sorted(int(i) for i in records)


def _canonical_utk2(top_k_sets) -> list[list[int]]:
    return sorted(sorted(int(i) for i in s) for s in top_k_sets)


class _Obligation:
    """One answered problem version awaiting a serial-prefix explanation."""

    __slots__ = ("event", "kind", "answer", "lo", "hi", "matched_at")

    def __init__(self, event: dict, kind: str, answer, lo: int, hi: int):
        self.event = event
        self.kind = kind  # "utk1" | "utk2"
        self.answer = answer
        self.lo = lo
        self.hi = hi
        self.matched_at: int | None = None


def _obligations_from(event: dict, response: dict, lo: int, hi: int
                      ) -> list[_Obligation]:
    fresh = []
    if "utk1" in response:
        fresh.append(_Obligation(
            event, "utk1", _canonical_utk1(response["utk1"]["records"]), lo, hi,
        ))
    if "utk2" in response:
        fresh.append(_Obligation(
            event, "utk2",
            _canonical_utk2(response["utk2"]["distinct_top_k_sets"]), lo, hi,
        ))
    return fresh


def run_soak(
    host: str,
    port: int,
    data,
    events: list[dict],
    *,
    clients: int = 4,
    timeout: float = 120.0,
    retry=None,
    injector=None,
    verify_queries: int = DEFAULT_VERIFY_QUERIES,
) -> dict:
    """Drive the stream concurrently and serially verify every answer.

    Returns a report with ``stale == 0`` iff every concurrent answer is
    explainable by a serial prefix within its admission window, and
    ``ok`` only if additionally no acked update went missing.  ``retry``
    overrides the clients' :class:`~repro.resilience.retry.RetryPolicy`;
    ``injector`` (an object with ``on_update(position, client)`` /
    ``on_query(ordinal, client)``) injects faults at deterministic
    workload positions.
    """
    updates = [e for e in events if e.get("op") in ("insert", "delete")]
    queries = [e for e in events if e.get("op") == "query"]

    def make_client() -> ServeClient:
        return ServeClient(host, port, timeout=timeout, retry=retry)

    # The serial replay reconstructs the server's state from `data`, so the
    # server must still be pristine (record ids and the update-sequence
    # windows are both counted from zero).
    with make_client() as probe:
        server_state = probe.stats()["server"]
    if server_state["updates_started"] or server_state["updates_finished"]:
        raise ValueError(
            "soak requires a freshly started server "
            f"(it already applied {server_state['updates_finished']} updates)"
        )

    obligations: list[_Obligation] = []
    answered = [0]
    retries = [0]
    collect_lock = threading.Lock()
    ordinal_lock = threading.Lock()
    next_ordinal = [0]
    errors: list[str] = []
    applied: list[dict] = []
    started = time.perf_counter()

    def run_updater() -> None:
        try:
            with make_client() as client:
                for position, event in enumerate(updates):
                    if injector is not None:
                        injector.on_update(position, client)
                    response = client.send_event(event)
                    if response["applied"] != position + 1:
                        errors.append(
                            f"update {position}: applied counter "
                            f"{response['applied']} != {position + 1}"
                        )
                        return
                    applied.append(event)
                with collect_lock:
                    retries[0] += client.retries_total
        except Exception as error:  # noqa: BLE001 - reported in the summary
            errors.append(f"updater: {type(error).__name__}: {error}")

    def run_querier(slice_events: list[dict]) -> None:
        try:
            with make_client() as client:
                for event in slice_events:
                    with ordinal_lock:
                        ordinal = next_ordinal[0]
                        next_ordinal[0] += 1
                    if injector is not None:
                        injector.on_query(ordinal, client)
                    response = client.query(
                        event["lower"], event["upper"], event["k"],
                        event.get("version", "utk1"),
                    )
                    lo = int(response["seq"]["lo"])
                    hi = int(response["seq"]["hi"])
                    fresh = _obligations_from(event, response, lo, hi)
                    with collect_lock:
                        obligations.extend(fresh)
                        answered[0] += 1
                with collect_lock:
                    retries[0] += client.retries_total
        except Exception as error:  # noqa: BLE001 - reported in the summary
            errors.append(f"querier: {type(error).__name__}: {error}")

    threads = [threading.Thread(target=run_updater, name="soak-updater")]
    client_count = max(1, int(clients))
    for index in range(client_count):
        threads.append(
            threading.Thread(
                target=run_querier,
                args=(queries[index::client_count],),
                name=f"soak-query-{index}",
            )
        )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
    load_seconds = time.perf_counter() - started

    # Verification pass: the server must sit at exactly the acked prefix
    # (zero lost acked updates), and answers there must match the serial
    # engine at that prefix — windows pinned to [acked, acked].
    acked = len(applied)
    recovered = 0
    verified = 0
    try:
        with make_client() as checker:
            final_state = checker.stats()["server"]
            recovered = int(final_state.get("recovered", 0))
            if final_state["updates_finished"] != acked:
                errors.append(
                    "lost acked updates: server finished "
                    f"{final_state['updates_finished']} != {acked} acked"
                )
            for event in queries[:max(0, int(verify_queries))]:
                response = checker.query(
                    event["lower"], event["upper"], event["k"],
                    event.get("version", "utk1"),
                )
                fresh = _obligations_from(event, response, acked, acked)
                obligations.extend(fresh)
                verified += 1
    except Exception as error:  # noqa: BLE001 - reported in the summary
        errors.append(f"verification: {type(error).__name__}: {error}")

    stale, offsets = _check_serial(data, applied, obligations)
    report = {
        "events": len(events),
        "updates": acked,
        "queries": answered[0],
        "checked": len(obligations),
        "verified": verified,
        "clients": client_count,
        "client_retries": retries[0],
        "recovered": recovered,
        "errors": errors,
        "stale": len(stale),
        "stale_details": stale[:10],
        "matched_prefix_spread": offsets,
        "load_seconds": load_seconds,
        "qps": answered[0] / load_seconds if load_seconds > 0 else 0.0,
        "ok": not errors and not stale and answered[0] == len(queries),
    }
    if injector is not None and hasattr(injector, "injected"):
        report["faults"] = injector.injected()
    return report


def _check_serial(data, updates: list[dict], obligations: list[_Obligation]
                  ) -> tuple[list[dict], dict]:
    """Replay updates serially; match each answer to a prefix in its window."""
    from repro.dynamic.engine import DynamicUTKEngine

    region_memo: dict[tuple, Region] = {}

    def region_of(event: dict) -> Region:
        key = (tuple(event["lower"]), tuple(event["upper"]))
        cached = region_memo.get(key)
        if cached is None:
            cached = region_memo[key] = hyperrectangle(event["lower"], event["upper"])
        return cached

    total = len(updates)
    for obligation in obligations:  # a window beyond the applied range clamps
        obligation.hi = min(obligation.hi, total)

    engine = DynamicUTKEngine(data)
    try:
        for prefix in range(total + 1):
            for obligation in obligations:
                if obligation.matched_at is not None:
                    continue
                if not (obligation.lo <= prefix <= obligation.hi):
                    continue
                region = region_of(obligation.event)
                k = int(obligation.event["k"])
                if obligation.kind == "utk1":
                    expected = _canonical_utk1(engine.utk1(region, k).indices)
                else:
                    expected = _canonical_utk2(
                        engine.utk2(region, k).distinct_top_k_sets
                    )
                if expected == obligation.answer:
                    obligation.matched_at = prefix
            if prefix < total:
                engine.apply_updates([updates[prefix]])
    finally:
        engine.close()

    stale = [
        {
            "event": obligation.event,
            "kind": obligation.kind,
            "window": [obligation.lo, obligation.hi],
            "answer": obligation.answer,
        }
        for obligation in obligations
        if obligation.matched_at is None
    ]
    offsets: dict[str, int] = {}
    for obligation in obligations:
        if obligation.matched_at is None:
            continue
        key = str(obligation.matched_at - obligation.lo)
        offsets[key] = offsets.get(key, 0) + 1
    return stale, offsets
