"""The serving-tier engine: striped caches, seqlock writes, shared buffers.

:class:`ServeEngine` is a :class:`~repro.dynamic.engine.DynamicUTKEngine`
re-plumbed for concurrent traffic:

* the four engine caches are :class:`~repro.serve.stripes.StripedCache`
  instances, so warm queries touching different region-hash stripes never
  contend and an update's maintenance sweep blocks one stripe at a time;
* the dataset lives in a :class:`~repro.serve.shm.SharedRecordStore`, and
  :meth:`shared_descriptor` publishes it (plus a lazily re-packed R-tree)
  so query workers attach zero-copy instead of rebuilding;
* the engine-wide generation guard on cache writes is replaced by a
  **seqlock**: ``_update_seq`` is bumped to an odd value before an update
  mutates anything and back to even after its last sweep finished.  Warm
  queries capture the sequence before their first cache read and publish
  derived entries through :meth:`StripedCache.put_if`, which atomically
  re-checks (under the stripe lock) that the sequence is still the same
  *even* value.  That proves no update started or finished in between, so
  every published entry was derived from current, fully-swept state — the
  same exactness the old global counter gave, without warm queries ever
  taking the engine lock.

Correctness of a racing query is unchanged from the dynamic engine: a query
overlapping an update may *serve* the pre-update answer (it was correct at
some moment between the query's admission and completion — the window the
soak checker verifies) but can never poison the caches.

Only the structural paths still serialize on the engine lock: updates
(store/tree mutation plus sweeps) and cold filterings (R-tree traversal
during a condense is never safe).  Per-stripe epochs remain as observable
state — every sweep that changed a stripe advances its epoch, exported via
:meth:`statistics` and the ``repro_stripe_epoch`` gauge.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.jaa import JAA
from repro.core.region import Region
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband, refilter_r_skyband
from repro.dynamic.engine import DynamicUTKEngine
from repro.engine.engine import (
    SOURCE_COLD,
    SOURCE_CONTAINMENT,
    SOURCE_RESULT_HIT,
    SOURCE_SKYBAND_CONTAINMENT,
    SOURCE_SKYBAND_HIT,
    _ResultEntry,
    _SkybandEntry,
    clip_partitioning,
)
from repro.engine.cache import region_signature
from repro.exceptions import InvalidQueryError
from repro.obs import names as _metric_names
from repro.serve.shm import SharedRecordStore, pack_arrays
from repro.serve.stripes import DEFAULT_STRIPES, StripedCache

#: Cache names in the order :meth:`ServeEngine.stripe_epochs` reports them.
CACHE_NAMES = ("skyband", "utk1", "utk2", "k_skyband")


class ServeEngine(DynamicUTKEngine):
    """Concurrency-ready dynamic engine (see module docstring).

    Parameters beyond :class:`DynamicUTKEngine`:

    stripes:
        Stripe count of each engine cache (see
        :data:`~repro.serve.stripes.DEFAULT_STRIPES` and the CONTRIBUTING
        notes on tuning).
    store_backend:
        ``"shm"`` (default) keeps records in shared-memory segments and
        packs the R-tree into one; ``"colstore"`` keeps both in
        memory-mapped files under ``store_dir`` — query workers then attach
        the files directly (no ``/dev/shm`` usage, datasets beyond RAM).
    store_dir:
        Directory of the colstore backend.  Defaults to a private temp
        directory that is removed on :meth:`close`; pass an explicit path to
        persist the store past the engine.
    """

    def __init__(
        self,
        data,
        *,
        scoring=None,
        cache_size: int = 128,
        stripes: int = DEFAULT_STRIPES,
        parallel_workers: int = 0,
        parallel_min_candidates: int = 48,
        store_backend: str = "shm",
        store_dir=None,
    ):
        if store_backend not in ("shm", "colstore"):
            raise InvalidQueryError(
                f"unknown store backend {store_backend!r} (shm|colstore)"
            )
        # Consumed by _make_cache/_make_store during super().__init__.
        self._cache_stripes = int(stripes)
        self._store_backend = store_backend
        self._store_dir = store_dir
        self._store_tempdir = None
        self._stats_lock = threading.Lock()
        self._writer_lock = threading.Lock()
        self._update_seq = 0
        self._packed_segment = None
        self._packed_path = None
        self._packed_manifest: dict | None = None
        self._packed_generation = -1
        super().__init__(
            data,
            scoring=scoring,
            cache_size=cache_size,
            parallel_workers=parallel_workers,
            parallel_min_candidates=parallel_min_candidates,
        )

    # ----------------------------------------------------------- construction
    def _make_cache(self, name: str, size: int) -> StripedCache:
        return StripedCache(size, stripes=self._cache_stripes, name=name)

    def _make_store(self, values):
        if self._store_backend == "colstore":
            import tempfile

            from repro.colstore.store import ColumnarRecordStore

            if self._store_dir is None:
                self._store_tempdir = tempfile.mkdtemp(prefix="repro-colstore-")
                self._store_dir = self._store_tempdir
            return ColumnarRecordStore(values, directory=self._store_dir)
        return SharedRecordStore(values)

    # ---------------------------------------------------------------- seqlock
    @property
    def update_seq(self) -> int:
        """The seqlock value: odd while an update is mutating/sweeping."""
        return self._update_seq

    def _capture_seq(self) -> int:
        return self._update_seq

    def _guarded_put(self, cache: StripedCache, key, value, seq: int) -> bool:
        """Publish a derived entry unless an update overlapped its derivation."""
        if seq & 1:  # captured mid-update: the inputs may be half-swept
            return False
        return cache.put_if(key, value, lambda: self._update_seq == seq)

    def apply_updates(self, updates) -> dict:
        with self._writer_lock:
            # Odd before the first mutation, even only after the last sweep:
            # the invariant every guarded put checks against.
            self._update_seq += 1
            try:
                return super().apply_updates(updates)
            finally:
                self._update_seq += 1

    # ---------------------------------------------------------------- serving
    # The overrides below mirror the base implementations with two changes:
    # statistics move under a dedicated micro-lock and every cache write goes
    # through the seqlock guard, so warm queries never touch self._lock.

    def _serve_utk1(self, region: Region, k: int):
        self._check_region(region)
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        k = int(k)
        signature = region_signature(region)
        key = (signature, k)
        seq = self._capture_seq()
        with self._stats_lock:
            self.stats.utk1_queries += 1
        entry = self._utk1_cache.get(key)
        if entry is not None:
            with self._stats_lock:
                self.stats.result_hits += 1
            return entry.result, SOURCE_RESULT_HIT
        donor = self._find_containing(self._utk2_cache, region, k)
        if donor is not None:
            result = clip_partitioning(donor.result, region).to_utk1()
            with self._stats_lock:
                self.stats.containment_hits += 1
            self._guarded_put(self._utk1_cache, key, _ResultEntry(region, k, result), seq)
            return result, SOURCE_CONTAINMENT
        skyband, source = self._skyband_for(region, k, signature)
        values = self._values  # pin one buffer generation for the refinement
        if self._route_parallel(skyband):
            result = self._run_parallel(region, k, skyband, "rsa")
        else:
            result = RSA(values, region, k, skyband=skyband).run()
        self._guarded_put(self._utk1_cache, key, _ResultEntry(region, k, result), seq)
        return result, source

    def _serve_utk2(self, region: Region, k: int):
        self._check_region(region)
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        k = int(k)
        signature = region_signature(region)
        key = (signature, k)
        seq = self._capture_seq()
        with self._stats_lock:
            self.stats.utk2_queries += 1
        entry = self._utk2_cache.get(key)
        if entry is not None:
            with self._stats_lock:
                self.stats.result_hits += 1
            return entry.result, SOURCE_RESULT_HIT
        donor = self._find_containing(self._utk2_cache, region, k)
        if donor is not None:
            result = clip_partitioning(donor.result, region)
            with self._stats_lock:
                self.stats.containment_hits += 1
            self._guarded_put(self._utk2_cache, key, _ResultEntry(region, k, result), seq)
            return result, SOURCE_CONTAINMENT
        skyband, source = self._skyband_for(region, k, signature)
        values = self._values
        if self._route_parallel(skyband):
            result = self._run_parallel(region, k, skyband, "jaa")
        else:
            result = JAA(values, region, k, skyband=skyband).run()
        self._guarded_put(self._utk2_cache, key, _ResultEntry(region, k, result), seq)
        return result, source

    def _skyband_for(self, region: Region, k: int, signature: str):
        key = (signature, k)
        seq = self._capture_seq()
        entry = self._skybands.get(key)
        if entry is not None:
            with self._stats_lock:
                self.stats.skyband_hits += 1
            return entry.skyband, SOURCE_SKYBAND_HIT
        donor = self._find_containing(self._skybands, region, k, allow_larger_k=True)
        if donor is not None:
            skyband = refilter_r_skyband(donor.skyband, region, k)
            with self._stats_lock:
                self.stats.skyband_containment_hits += 1
            self._guarded_put(self._skybands, key, _SkybandEntry(region, k, skyband), seq)
            return skyband, SOURCE_SKYBAND_CONTAINMENT
        with self._lock:  # cold filtering traverses the R-tree
            seq = self._capture_seq()  # even: updates hold the same lock
            skyband = compute_r_skyband(self._values, region, k, tree=self._tree)
        _metric_names.SKYBAND_SIZE.observe(skyband.size)
        with self._stats_lock:
            self.stats.cold_queries += 1
        self._guarded_put(self._skybands, key, _SkybandEntry(region, k, skyband), seq)
        return skyband, SOURCE_COLD

    def k_skyband(self, k: int) -> np.ndarray:
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        key = int(k)
        cached = self._traditional_skybands.get(key)
        if cached is not None:
            return cached
        from repro.skyline.skyband import k_skyband as traditional_k_skyband

        with self._lock:
            seq = self._capture_seq()
            result = traditional_k_skyband(self._values, key, tree=self._tree)
        self._guarded_put(self._traditional_skybands, key, result, seq)
        return result

    # ------------------------------------------------------------ maintenance
    def _commit_skybands(self, outcomes: dict, batch) -> None:
        """As the base, plus epoch bumps for stripes holding repaired entries.

        ``evict_where`` already advances the epoch of stripes it changed;
        in-place repairs go through ``replace`` (no epoch side effect), so
        the sweep accounts for them here — the per-stripe epoch is the
        complete "this update touched your stripe" signal.
        """
        super()._commit_skybands(outcomes, batch)
        touched = {
            self._skybands.stripe_of(key)
            for key, (_entry, outcome) in outcomes.items()
            if outcome.changed
        }
        for index in touched:
            self._skybands.bump_epoch(index)

    # --------------------------------------------------------- shared dataset
    def shared_descriptor(self) -> dict:
        """Attachment descriptor for zero-copy query workers.

        Packs the R-tree into a fresh shared segment when (and only when)
        the dataset generation moved since the last pack; the record buffer
        is already shared.  The previous pack's segment is unlinked — late
        workers holding its mapping finish fine, new attachments of a stale
        descriptor fail with :class:`FileNotFoundError` and retry with a
        fresh descriptor (see :func:`repro.serve.workers.worker_query`).
        """
        with self._lock:
            if self._packed_manifest is None or self._packed_generation != self._generation:
                flat = self._tree.flatten()
                if self._store_backend == "colstore":
                    from pathlib import Path

                    from repro.colstore.pages import META_SUFFIX, write_pages

                    path = Path(self._store_dir) / f"rtree.g{self._generation}.pages"
                    meta = write_pages(path, flat)
                    previous_path = self._packed_path
                    self._packed_path = path
                    self._packed_manifest = {"path": str(path), "meta": meta}
                    self._packed_generation = self._generation
                    if previous_path is not None and previous_path != path:
                        for stale in (previous_path,
                                      Path(str(previous_path) + META_SUFFIX)):
                            try:
                                stale.unlink()
                            except FileNotFoundError:
                                pass
                else:
                    arrays = {
                        key: value for key, value in flat.items()
                        if isinstance(value, np.ndarray)
                    }
                    meta = {"dimension": flat["dimension"], "size": flat["size"]}
                    segment, manifest = pack_arrays(arrays, meta=meta)
                    previous = self._packed_segment
                    self._packed_segment = segment
                    self._packed_manifest = manifest
                    self._packed_generation = self._generation
                    if previous is not None:
                        previous.close()
            descriptor = {
                "generation": int(self._packed_generation),
                "tree": self._packed_manifest,
                "buffer": (self._store.mmap_location()
                           if self._store_backend == "colstore"
                           else self._store.shared_location()),
                "count": int(self._store.high_water),
            }
            if self._store_backend == "colstore":
                descriptor["kind"] = "colstore"
                self._store.sync()
            return descriptor

    def shm_segment_names(self) -> list[str]:
        """Every shared segment currently backing this engine, by name.

        The serving front-end persists this set alongside the WAL (the shm
        manifest) so a restart after ``SIGKILL`` can unlink the orphaned
        segments the dead process never cleaned up.
        """
        with self._lock:
            names = self._store.segment_names()
            if self._packed_segment is not None:
                names.append(self._packed_segment.name)
        return names

    # ------------------------------------------------------------------ stats
    def stripe_epochs(self) -> dict[str, list[int]]:
        """Per-cache, per-stripe epoch snapshot (for metrics export)."""
        caches = (self._skybands, self._utk1_cache, self._utk2_cache,
                  self._traditional_skybands)
        return {name: cache.epochs() for name, cache in zip(CACHE_NAMES, caches)}

    def statistics(self) -> dict:
        merged = super().statistics()
        merged["serve"] = {
            "update_seq": self._update_seq,
            "stripes": self._cache_stripes,
            "stripe_epochs": self.stripe_epochs(),
        }
        return merged

    def close(self) -> None:
        """Release the worker pool, shared segments and temp store files."""
        super().close()
        segment, self._packed_segment = self._packed_segment, None
        self._packed_manifest = None
        if segment is not None:
            segment.close()
        self._store.close()
        if self._store_tempdir is not None:
            import shutil

            shutil.rmtree(self._store_tempdir, ignore_errors=True)
            self._store_tempdir = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServeEngine(active={len(self._store)}, stripes={self._cache_stripes}, "
            f"updates={self.update_stats.updates_applied}, "
            f"queries={self.stats.queries})"
        )
