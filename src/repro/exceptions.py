"""Exception hierarchy for the UTK reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class InvalidDatasetError(ReproError):
    """Raised when a dataset does not satisfy the library's requirements.

    Datasets must be two-dimensional numeric arrays with at least one record,
    at least two attributes, and no NaN/inf values.
    """


class InvalidRegionError(ReproError):
    """Raised when a preference region is malformed.

    Typical causes: empty interior, dimensionality mismatch with the dataset,
    or a region that is not contained in the valid preference simplex.
    """


class InvalidQueryError(ReproError):
    """Raised when query parameters (``k``, weight vectors, ...) are invalid."""


class LinearProgramError(ReproError):
    """Raised when a linear program fails for reasons other than infeasibility."""


class GeometryError(ReproError):
    """Raised for unrecoverable computational-geometry failures."""


class StorageError(ReproError):
    """Raised for storage-backend failures (colstore layout, buffer pool).

    Typical causes: a directory that is not a colstore (missing or
    incompatible manifest), writes against a read-only mapping, or a buffer
    pool whose every frame is pinned when a new page must be loaded.
    """
