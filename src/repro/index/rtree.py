"""A from-scratch in-memory R-tree.

The tree supports two construction modes:

* **STR bulk loading** (default) — the standard sort-tile-recursive packing,
  which produces well-shaped nodes for static datasets such as the benchmark
  workloads in the paper;
* **incremental insertion** with the classical least-enlargement descent and
  quadratic split, plus **deletion** with the classical condense-tree step
  (underfull nodes are dissolved and their records re-inserted), so dynamic
  workloads are also covered.

Traversal-oriented consumers (BBS, branch-and-bound top-k) only need the
public node API: :attr:`RTreeNode.is_leaf`, :attr:`RTreeNode.children`,
:attr:`RTreeNode.entries` and :attr:`RTreeNode.mbb`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import InvalidDatasetError
from repro.index.mbb import MBB
from repro.obs import runtime as _obs

#: Node-access operations tallied by :meth:`RTree.count_access`.
ACCESS_OPS = ("search", "insert", "delete")


class RTreeNode:
    """A node of the R-tree.

    Leaf nodes hold ``entries`` as ``(record_index, point)`` pairs; internal
    nodes hold child nodes.  Every node maintains its MBB.
    """

    __slots__ = ("is_leaf", "children", "entries", "mbb", "parent")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.children: list[RTreeNode] = []
        self.entries: list[tuple[int, np.ndarray]] = []
        self.mbb: MBB | None = None
        self.parent: RTreeNode | None = None

    def recompute_mbb(self) -> None:
        """Recompute this node's MBB from its children/entries."""
        if self.is_leaf:
            points = [point for _, point in self.entries]
            self.mbb = MBB.of_points(points) if points else None
        else:
            boxes = [child.mbb for child in self.children if child.mbb is not None]
            if not boxes:
                self.mbb = None
                return
            box = boxes[0].copy()
            for other in boxes[1:]:
                box = box.union(other)
            self.mbb = box

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        count = len(self.entries) if self.is_leaf else len(self.children)
        return f"RTreeNode({kind}, fanout={count})"


class RTree:
    """R-tree over a point dataset.

    Parameters
    ----------
    points:
        Optional ``(n, d)`` matrix to bulk load immediately (STR packing).
    max_entries:
        Node capacity; ``min_entries`` defaults to ``ceil(max_entries * 0.4)``.
    """

    def __init__(self, points=None, *, max_entries: int = 16, min_entries: int | None = None):
        if max_entries < 4:
            raise InvalidDatasetError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = min_entries or max(2, math.ceil(max_entries * 0.4))
        if not 2 <= self.min_entries <= (max_entries + 1) // 2:
            # An overflowing node holds max_entries + 1 items; both split
            # groups can only reach the minimum fill when 2 * min <= max + 1.
            raise InvalidDatasetError(
                f"min_entries must be in [2, {(max_entries + 1) // 2}] "
                f"for max_entries={max_entries}"
            )
        self.dimension: int | None = None
        self.size = 0
        self.root = RTreeNode(is_leaf=True)
        self.access_counts: dict[str, int] = dict.fromkeys(ACCESS_OPS, 0)
        if points is not None:
            self.bulk_load(points)

    def count_access(self, op: str, n: int = 1) -> None:
        """Tally ``n`` node accesses of kind ``op`` (search/insert/delete).

        The local :attr:`access_counts` dict is always maintained; while the
        observability layer is enabled the accesses are additionally published
        to the ``repro_rtree_node_accesses_total{op=...}`` registry series.
        Traversal loops batch their tally into a single call per operation.
        """
        if not n:
            return
        self.access_counts[op] += n
        if _obs._ENABLED:
            from repro.obs.names import RTREE_NODE_ACCESSES
            RTREE_NODE_ACCESSES.inc(n, op=op)

    # ------------------------------------------------------------ bulk loading
    def bulk_load(self, points) -> None:
        """Replace the tree contents with an STR-packed tree over ``points``."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise InvalidDatasetError("bulk_load expects an (n, d) matrix")
        n, d = points.shape
        self.dimension = d
        self.size = n
        if n == 0:
            self.root = RTreeNode(is_leaf=True)
            return
        leaves = self._build_leaves(points)
        self.root = self._pack_upwards(leaves)

    def _build_leaves(self, points: np.ndarray) -> list[RTreeNode]:
        """Sort-tile-recursive packing of the points into leaf nodes."""
        n, d = points.shape
        order = np.arange(n)
        groups = self._str_partition(points, order, axis=0)
        leaves = []
        for group in groups:
            node = RTreeNode(is_leaf=True)
            node.entries = [(int(i), points[i]) for i in group]
            node.recompute_mbb()
            leaves.append(node)
        return leaves

    @staticmethod
    def _even_sizes(count: int, parts: int) -> list[int]:
        """Split ``count`` items into ``parts`` near-equal group sizes."""
        base, remainder = divmod(count, parts)
        return [base + 1] * remainder + [base] * (parts - remainder)

    def _str_partition(self, points: np.ndarray, indices: np.ndarray, axis: int) -> list[
        np.ndarray
    ]:
        """Recursively tile ``indices`` into groups of at most ``max_entries``.

        Groups (and slabs) are sized near-evenly rather than greedily: a
        greedy cut leaves a remainder group that can fall below
        ``min_entries``, and such an underfull node makes a single later
        ``delete`` dissolve (and re-insert) a whole subtree.
        """
        capacity = self.max_entries
        count = indices.shape[0]
        if count <= capacity:
            return [indices]
        d = points.shape[1]
        leaf_count = math.ceil(count / capacity)
        slabs = math.ceil(leaf_count ** (1.0 / (d - axis))) if axis < d - 1 else leaf_count
        ordered = indices[np.argsort(points[indices, axis], kind="stable")]
        groups: list[np.ndarray] = []
        start = 0
        for size in self._even_sizes(count, slabs):
            chunk = ordered[start:start + size]
            start += size
            if axis + 1 < d and chunk.shape[0] > capacity:
                groups.extend(self._str_partition(points, chunk, axis + 1))
            else:
                inner_start = 0
                for inner in self._even_sizes(chunk.shape[0], math.ceil(
                        chunk.shape[0] / capacity)):
                    groups.append(chunk[inner_start:inner_start + inner])
                    inner_start += inner
        return groups

    def _pack_upwards(self, nodes: list[RTreeNode]) -> RTreeNode:
        """Pack a level of nodes into parent levels until a single root remains."""
        while len(nodes) > 1:
            parents: list[RTreeNode] = []
            # Order nodes by the first coordinate of their MBB centre so that
            # siblings are spatially close.
            centres = np.array([(node.mbb.lower + node.mbb.upper) / 2.0 for node in nodes])
            order = np.lexsort(
                tuple(centres[:, axis] for axis in reversed(range(centres.shape[1])))
            )
            ordered = [nodes[i] for i in order]
            start = 0
            for size in self._even_sizes(
                len(ordered), math.ceil(len(ordered) / self.max_entries)
            ):
                parent = RTreeNode(is_leaf=False)
                parent.children = ordered[start:start + size]
                start += size
                for child in parent.children:
                    child.parent = parent
                parent.recompute_mbb()
                parents.append(parent)
            nodes = parents
        root = nodes[0]
        root.parent = None
        return root

    # ------------------------------------------------------------- insertion
    def insert(self, index: int, point) -> None:
        """Insert a single record (least-enlargement descent, quadratic split)."""
        point = np.asarray(point, dtype=float).reshape(-1)
        if self.dimension is None:
            self.dimension = point.shape[0]
        elif point.shape[0] != self.dimension:
            raise InvalidDatasetError("point dimensionality does not match the tree")
        self.size += 1
        self._insert_entry(int(index), point)

    def _insert_entry(self, index: int, point: np.ndarray) -> None:
        """Place one already-validated entry (shared by insert and reinsertion)."""
        leaf = self._choose_leaf(self.root, point)
        leaf.entries.append((index, point))
        leaf.recompute_mbb()
        self._handle_overflow(leaf)
        self._adjust_upwards(leaf.parent)

    def _choose_leaf(self, node: RTreeNode, point: np.ndarray) -> RTreeNode:
        visited = 1
        while not node.is_leaf:
            target = MBB.of_point(point)
            best, best_cost, best_volume = None, None, None
            for child in node.children:
                cost = child.mbb.enlargement(target)
                volume = child.mbb.volume
                if best is None or cost < best_cost or (cost == best_cost and volume < best_volume):
                    best, best_cost, best_volume = child, cost, volume
            node = best
            visited += 1
        self.count_access("insert", visited)
        return node

    def _handle_overflow(self, node: RTreeNode) -> None:
        limit = self.max_entries
        count = len(node.entries) if node.is_leaf else len(node.children)
        if count <= limit:
            return
        sibling = self._split(node)
        parent = node.parent
        if parent is None:
            new_root = RTreeNode(is_leaf=False)
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_mbb()
            self.root = new_root
            return
        parent.children.append(sibling)
        sibling.parent = parent
        parent.recompute_mbb()
        self._handle_overflow(parent)

    def _split(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split; ``node`` keeps one group, the returned sibling the other."""
        if node.is_leaf:
            items = node.entries
            boxes = [MBB.of_point(point) for _, point in items]
        else:
            items = node.children
            boxes = [child.mbb for child in items]
        seed_a, seed_b = self._pick_seeds(boxes)
        group_a, group_b = [seed_a], [seed_b]
        box_a, box_b = boxes[seed_a].copy(), boxes[seed_b].copy()
        remaining = [i for i in range(len(items)) if i not in (seed_a, seed_b)]
        for handed_out, position in enumerate(remaining):
            unassigned = len(remaining) - handed_out
            # Forced assignment: when a group needs every item still unassigned
            # to reach the minimum fill, it gets them all (Guttman's stopping
            # rule, evaluated against the *current* unassigned count).
            if len(group_a) + unassigned <= self.min_entries:
                group_a.append(position)
                box_a = box_a.union(boxes[position])
                continue
            if len(group_b) + unassigned <= self.min_entries:
                group_b.append(position)
                box_b = box_b.union(boxes[position])
                continue
            cost_a = box_a.enlargement(boxes[position])
            cost_b = box_b.enlargement(boxes[position])
            if cost_a < cost_b or (cost_a == cost_b and len(group_a) <= len(group_b)):
                group_a.append(position)
                box_a = box_a.union(boxes[position])
            else:
                group_b.append(position)
                box_b = box_b.union(boxes[position])
        sibling = RTreeNode(is_leaf=node.is_leaf)
        if node.is_leaf:
            all_entries = node.entries
            node.entries = [all_entries[i] for i in group_a]
            sibling.entries = [all_entries[i] for i in group_b]
        else:
            all_children = node.children
            node.children = [all_children[i] for i in group_a]
            sibling.children = [all_children[i] for i in group_b]
            for child in sibling.children:
                child.parent = sibling
        node.recompute_mbb()
        sibling.recompute_mbb()
        return sibling

    @staticmethod
    def _pick_seeds(boxes: list[MBB]) -> tuple[int, int]:
        worst_pair, worst_waste = (0, 1), -np.inf
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                waste = boxes[i].union(boxes[j]).volume - boxes[i].volume - boxes[j].volume
                if waste > worst_waste:
                    worst_waste, worst_pair = waste, (i, j)
        return worst_pair

    def _adjust_upwards(self, node: RTreeNode | None) -> None:
        while node is not None:
            node.recompute_mbb()
            node = node.parent

    # -------------------------------------------------------------- deletion
    def delete(self, index: int, point=None) -> None:
        """Remove record ``index`` from the tree.

        ``point`` is an optional location hint: when given, only subtrees
        whose MBB contains it are searched (the common case for callers that
        know the record's coordinates); a failed hinted search falls back to
        a full traversal, so a slightly off hint degrades to a scan instead
        of a spurious ``KeyError``.  Underflowing nodes are dissolved and
        their surviving records re-inserted (the classical condense-tree
        step), which keeps every MBB tight.  Raises :class:`KeyError` when
        the record is not in the tree.
        """
        index = int(index)
        hint = None if point is None else np.asarray(point, dtype=float).reshape(-1)
        leaf = self._find_leaf(index, hint)
        if leaf is None and hint is not None:
            leaf = self._find_leaf(index, None)
        if leaf is None:
            raise KeyError(f"record {index} is not in the tree")
        leaf.entries = [entry for entry in leaf.entries if entry[0] != index]
        self.size -= 1
        self._condense(leaf)

    def _find_leaf(self, index: int, point: np.ndarray | None) -> RTreeNode | None:
        """The leaf holding record ``index`` (pruned by ``point`` when given)."""
        stack = [self.root]
        visited = 0
        try:
            while stack:
                node = stack.pop()
                visited += 1
                if point is not None and (
                    node.mbb is None or not node.mbb.contains_point(point, tol=1e-12)
                ):
                    continue
                if node.is_leaf:
                    if any(entry_index == index for entry_index, _ in node.entries):
                        return node
                else:
                    stack.extend(node.children)
            return None
        finally:
            self.count_access("delete", visited)

    def _condense(self, leaf: RTreeNode) -> None:
        """Dissolve underfull ancestors of ``leaf`` and re-insert their records."""
        orphans: list[tuple[int, np.ndarray]] = []
        node = leaf
        while node.parent is not None:
            parent = node.parent
            count = len(node.entries) if node.is_leaf else len(node.children)
            if count < self.min_entries:
                parent.children.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                node.recompute_mbb()
            node = parent
        node.recompute_mbb()
        # Shrink the root: an internal root with a single child is replaced by
        # that child; one left with no children becomes an empty leaf again.
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
            self.root.parent = None
        if not self.root.is_leaf and not self.root.children:
            self.root = RTreeNode(is_leaf=True)
        for orphan_index, orphan_point in orphans:
            self._insert_entry(orphan_index, orphan_point)

    @staticmethod
    def _collect_entries(node: RTreeNode) -> list[tuple[int, np.ndarray]]:
        """All leaf entries stored beneath ``node``."""
        entries: list[tuple[int, np.ndarray]] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                entries.extend(current.entries)
            else:
                stack.extend(current.children)
        return entries

    # ------------------------------------------------------------- flattening
    def flatten(self) -> dict:
        """Pack the tree into flat numpy arrays (BFS order) for sharing.

        The node graph of Python objects cannot cross a process boundary
        without pickling every MBB and entry; the flat form can live in
        shared memory and be traversed zero-copy by
        :class:`repro.serve.packed.PackedRTree`.  Layout (``m`` nodes, node 0
        is the root):

        * ``node_lower``/``node_upper`` — ``(m, d)`` MBB corners (``NaN``
          rows for the empty root);
        * ``node_is_leaf`` — ``(m,)`` bool;
        * ``node_first``/``node_count`` — per node, the slice of
          ``child_nodes`` (internal: BFS positions of its children) or of
          ``entry_ids`` (leaf: record ids of its entries) it owns.

        Entry *points* are not duplicated: a leaf entry's coordinates are the
        record's row in the store buffer, so consumers index the shared
        values matrix by ``entry_ids``.
        """
        order: list[RTreeNode] = [self.root]
        positions: dict[int, int] = {id(self.root): 0}
        for node in order:  # grows during iteration: BFS without a deque
            if not node.is_leaf:
                for child in node.children:
                    positions[id(child)] = len(order)
                    order.append(child)
        m = len(order)
        d = int(self.dimension or 0)
        node_lower = np.full((m, max(d, 1)), np.nan, dtype=float)
        node_upper = np.full((m, max(d, 1)), np.nan, dtype=float)
        node_is_leaf = np.zeros(m, dtype=bool)
        node_first = np.zeros(m, dtype=np.int64)
        node_count = np.zeros(m, dtype=np.int64)
        child_nodes: list[int] = []
        entry_ids: list[int] = []
        for position, node in enumerate(order):
            node_is_leaf[position] = node.is_leaf
            if node.mbb is not None:
                node_lower[position] = node.mbb.lower
                node_upper[position] = node.mbb.upper
            if node.is_leaf:
                node_first[position] = len(entry_ids)
                node_count[position] = len(node.entries)
                entry_ids.extend(int(index) for index, _ in node.entries)
            else:
                node_first[position] = len(child_nodes)
                node_count[position] = len(node.children)
                child_nodes.extend(positions[id(child)] for child in node.children)
        return {
            "dimension": d,
            "size": int(self.size),
            "node_lower": node_lower,
            "node_upper": node_upper,
            "node_is_leaf": node_is_leaf,
            "node_first": node_first,
            "node_count": node_count,
            "child_nodes": np.asarray(child_nodes, dtype=np.int64),
            "entry_ids": np.asarray(entry_ids, dtype=np.int64),
        }

    # ---------------------------------------------------------------- queries
    def range_search(self, lower, upper) -> list[int]:
        """Indices of all records inside the axis-aligned box ``[lower, upper]``."""
        box = MBB(np.asarray(lower, dtype=float), np.asarray(upper, dtype=float))
        result: list[int] = []
        if self.root.mbb is None:
            return result
        stack = [self.root]
        visited = 0
        while stack:
            node = stack.pop()
            visited += 1
            if node.mbb is None or not node.mbb.intersects(box):
                continue
            if node.is_leaf:
                for index, point in node.entries:
                    if box.contains_point(point):
                        result.append(index)
            else:
                stack.extend(node.children)
        self.count_access("search", visited)
        return sorted(result)

    def all_indices(self) -> list[int]:
        """Indices of all records stored in the tree."""
        result: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                result.extend(index for index, _ in node.entries)
            else:
                stack.extend(node.children)
        return sorted(result)

    def height(self) -> int:
        """Number of levels in the tree (a single leaf root has height 1)."""
        level, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            level += 1
        return level

    def __len__(self) -> int:
        return self.size
