"""Spatial-index substrate: minimum bounding boxes and an R-tree.

The UTK paper assumes the dataset is organized by a spatial index such as an
R-tree and drives both its filtering step (BBS-style branch and bound) and
plain top-k queries through it.  This subpackage implements the index from
scratch: :class:`repro.index.mbb.MBB` value objects and
:class:`repro.index.rtree.RTree` with STR bulk loading and incremental
insertion.
"""

from repro.index.mbb import MBB
from repro.index.rtree import RTree, RTreeNode

__all__ = ["MBB", "RTree", "RTreeNode"]
