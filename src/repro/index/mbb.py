"""Minimum bounding boxes (MBBs).

The R-tree stores an MBB per node; BBS-style algorithms represent a node by
the *top corner* of its MBB (the per-axis maximum), which upper-bounds the
score of every record underneath the node for any non-negative weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MBB:
    """Axis-aligned minimum bounding box ``[lower, upper]``."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self):
        self.lower = np.asarray(self.lower, dtype=float).reshape(-1)
        self.upper = np.asarray(self.upper, dtype=float).reshape(-1)

    @staticmethod
    def of_point(point) -> "MBB":
        """Degenerate box covering a single point."""
        point = np.asarray(point, dtype=float).reshape(-1)
        return MBB(point.copy(), point.copy())

    @staticmethod
    def of_points(points) -> "MBB":
        """Tight box covering a set of points."""
        points = np.asarray(points, dtype=float)
        return MBB(points.min(axis=0), points.max(axis=0))

    @property
    def dimension(self) -> int:
        """Dimensionality of the box."""
        return self.lower.shape[0]

    @property
    def top_corner(self) -> np.ndarray:
        """Per-axis maximum (the point BBS uses to represent the node)."""
        return self.upper

    @property
    def margin(self) -> float:
        """Sum of side lengths (used by split heuristics)."""
        return float(np.sum(self.upper - self.lower))

    @property
    def volume(self) -> float:
        """Hyper-volume of the box."""
        return float(np.prod(self.upper - self.lower))

    def union(self, other: "MBB") -> "MBB":
        """Smallest box containing both boxes."""
        return MBB(np.minimum(self.lower, other.lower), np.maximum(self.upper, other.upper))

    def enlargement(self, other: "MBB") -> float:
        """Volume increase needed to also cover ``other``."""
        return self.union(other).volume - self.volume

    def contains_point(self, point, tol: float = 0.0) -> bool:
        """Whether ``point`` lies inside the box (within ``tol``)."""
        point = np.asarray(point, dtype=float).reshape(-1)
        return bool(np.all(point >= self.lower - tol) and np.all(point <= self.upper + tol))

    def intersects(self, other: "MBB", tol: float = 0.0) -> bool:
        """Whether the two boxes overlap (within ``tol``)."""
        return bool(
            np.all(self.lower <= other.upper + tol) and np.all(other.lower <= self.upper + tol)
        )

    def copy(self) -> "MBB":
        """Deep copy of the box."""
        return MBB(self.lower.copy(), self.upper.copy())
