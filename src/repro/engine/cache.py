"""Caching primitives of the query-serving engine.

Three small pieces that :class:`~repro.engine.engine.UTKEngine` composes:

* :func:`region_signature` — a stable hashable fingerprint of a query region
  (its rounded H-representation), used as the exact-match cache key;
* :func:`region_contains` — polytope containment ``inner ⊆ outer``, the test
  behind the engine's containment-reuse path;
* :class:`LRUCache` — a bounded mapping with least-recently-used eviction and
  hit/miss/eviction accounting.

Signatures are syntactic: two :class:`~repro.core.region.Region` objects built
from the same constraints share a signature, while geometrically equal regions
described differently may not.  The engine tolerates that — a signature miss
falls through to the containment scan, and mutual containment covers equality.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.core.region import Region
from repro.obs import runtime as _obs
from repro.obs import names as _metric_names

#: Decimal places kept when fingerprinting region constraints.
SIGNATURE_DECIMALS = 10

#: Default tolerance of the containment test.
CONTAINMENT_TOL = 1e-9


def region_signature(region: Region, *, decimals: int = SIGNATURE_DECIMALS) -> str:
    """A stable fingerprint of the region's H-representation."""
    a, b = region.constraints
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.asarray(a.shape, dtype=np.int64).tobytes())
    digest.update(np.round(a, decimals).tobytes())
    digest.update(np.round(b, decimals).tobytes())
    return digest.hexdigest()


def region_contains(outer: Region, inner: Region, *, tol: float = CONTAINMENT_TOL) -> bool:
    """Whether ``inner`` is contained in ``outer`` (both convex polytopes).

    With a vertex representation of ``inner`` the test is a dense constraint
    evaluation; otherwise each constraint of ``outer`` is checked by
    maximizing it over ``inner`` (one LP per constraint).
    """
    if outer.dimension != inner.dimension:
        return False
    a, b = outer.constraints
    vertices = inner.vertices
    if vertices is not None:
        return bool(np.all(a @ vertices.T <= b[:, None] + tol))
    return all(inner.linear_max(row) <= rhs + tol for row, rhs in zip(a, b))


class LRUCache:
    """A bounded key/value store with least-recently-used eviction.

    ``get`` refreshes recency and counts a hit or a miss; ``put`` inserts or
    refreshes and evicts the stalest entry once ``maxsize`` is exceeded.
    ``scan`` iterates entries most-recent-first, which the engine uses for its
    containment lookups (recently touched regions are the most likely parents
    of the next query in a clustered stream).

    A ``name`` makes the cache *observable*: while the observability layer is
    enabled, hits, misses and evictions are additionally published to the
    ``repro_cache_events_total{cache=<name>,event=...}`` registry series.
    Anonymous caches keep only their local counters.
    """

    def __init__(self, maxsize: int, *, name: str | None = None):
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = int(maxsize)
        self.name = name
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _publish(self, event: str, count: int = 1) -> None:
        if self.name is not None and _obs._ENABLED and count:
            _metric_names.CACHE_EVENTS.inc(count, cache=self.name, event=event)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key, default=None):
        """Value for ``key`` (refreshing its recency), or ``default``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            self._publish("miss")
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        self._publish("hit")
        return value

    def put(self, key, value) -> None:
        """Insert or refresh ``key``; evict the least-recent beyond capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._publish("eviction")

    def touch(self, key) -> None:
        """Refresh recency without affecting hit/miss counters."""
        if key in self._entries:
            self._entries.move_to_end(key)

    def replace(self, key, value) -> bool:
        """Swap the value of an existing key; recency and counters untouched.

        Returns whether the key was present.  This is the in-place update
        the maintenance layer uses when it repairs a cached object: the
        entry's position in the recency order still reflects *query*
        traffic, and no phantom hit is recorded.
        """
        if key not in self._entries:
            return False
        self._entries[key] = value
        return True

    def scan(self) -> Iterator[tuple]:
        """Iterate ``(key, value)`` pairs, most recently used first."""
        return iter(list(reversed(self._entries.items())))

    def evict_where(self, predicate) -> int:
        """Drop every entry for which ``predicate(key, value)`` is true.

        Returns the number of entries removed; each counts as an eviction.
        This is the fine-grained alternative to :meth:`clear` — callers that
        know which entries an event invalidated (a data update, a schema
        change) evict exactly those and keep the rest of the cache warm.
        """
        doomed = [key for key, value in self._entries.items() if predicate(key, value)]
        for key in doomed:
            del self._entries[key]
        self.evictions += len(doomed)
        self._publish("eviction", len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def stats(self) -> dict:
        """Counter snapshot: size, capacity, hits, misses, evictions."""
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LRUCache(size={len(self._entries)}/{self.maxsize}, "
                f"hits={self.hits}, misses={self.misses})")
