"""Batch execution of UTK query streams.

:func:`run_batch` fans a list of independent queries over a
:class:`concurrent.futures.ThreadPoolExecutor` (the engine's caches are
shared and thread-safe), preserving input order in the returned list.  When
the engine is configured with ``parallel_workers``, heavy cache-miss
queries are additionally routed to its shared worker-process pool by the
region-partitioned executor, while cache hits and light queries stay on the
thread-served fast path — the batch threads provide concurrency across
queries, the process pool parallelism within one heavy query.  The
per-query :class:`BatchItem` records which reuse path served the query and
its wall-clock time, and :func:`summarize_batch` aggregates a stream into the
throughput figures the CLI and benchmarks report.

Queries are accepted in several shapes: :class:`BatchQuery`, any object with
``region`` and ``k`` attributes (e.g. a workload
:class:`~repro.bench.workloads.QuerySpec`), a ``(region, k)`` or
``(region, k, version)`` tuple, or a mapping with those keys.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result
from repro.exceptions import InvalidQueryError
from repro.obs import names as _metric_names

#: Problem versions a batch query may request.
VERSIONS = ("utk1", "utk2", "both")

#: Geometry-telemetry counters carried by every RSA/JAA result's stats and
#: aggregated over a served stream by :func:`summarize_batch`.
GEOMETRY_COUNTER_KEYS = ("lp_calls", "vertex_clip_calls", "enumeration_calls",
                         "fallback_calls")


@dataclass(frozen=True)
class BatchQuery:
    """One query of a batch: region, ``k`` and the problem version to answer."""

    region: Region
    k: int
    version: str = "utk1"

    def __post_init__(self):
        if self.version not in VERSIONS:
            raise InvalidQueryError(f"unknown version {self.version!r}; expected one of {VERSIONS}")


@dataclass
class BatchItem:
    """Outcome of one batch query.

    ``sources`` maps the answered problem version(s) to the reuse path that
    served it (``"hit"``, ``"containment"``, ``"skyband-hit"``,
    ``"skyband-containment"`` or ``"cold"``).
    """

    query: BatchQuery
    utk1: UTK1Result | None
    utk2: UTK2Result | None
    sources: dict[str, str]
    seconds: float


def as_batch_query(query) -> BatchQuery:
    """Normalize any accepted query shape to a :class:`BatchQuery`."""
    if isinstance(query, BatchQuery):
        return query
    if isinstance(query, dict):
        return BatchQuery(
            region=query["region"], k=int(query["k"]), version=query.get("version", "utk1")
        )
    if isinstance(query, tuple):
        if len(query) == 2:
            return BatchQuery(region=query[0], k=int(query[1]))
        if len(query) == 3:
            return BatchQuery(region=query[0], k=int(query[1]), version=query[2])
        raise InvalidQueryError("query tuples must be (region, k[, version])")
    region = getattr(query, "region", None)
    k = getattr(query, "k", None)
    if region is None or k is None:
        raise InvalidQueryError(f"cannot interpret {query!r} as a batch query")
    return BatchQuery(region=region, k=int(k), version=getattr(query, "version", "utk1"))


def _serve_one(engine, query: BatchQuery) -> BatchItem:
    started = time.perf_counter()
    first = second = None
    sources: dict[str, str] = {}
    if query.version in ("utk2", "both"):
        second, sources["utk2"] = engine.serve_utk2(query.region, query.k)
    if query.version in ("utk1", "both"):
        first, sources["utk1"] = engine.serve_utk1(query.region, query.k)
    return BatchItem(
        query=query, utk1=first, utk2=second, sources=sources, seconds=time.perf_counter() - started
    )


def run_batch(engine, queries, *, workers: int | None = None) -> list[BatchItem]:
    """Serve ``queries`` on ``engine``, preserving input order.

    ``workers=None`` (or ``0``/``1``) runs sequentially; larger values fan
    the stream across a thread pool.  Answers are independent of the worker
    count — only the cache-path statistics may differ, because concurrent
    queries can race to populate an entry.
    """
    specs = [as_batch_query(query) for query in queries]
    with engine._lock:
        engine.stats.batches += 1
        engine.stats.batch_queries += len(specs)
    _metric_names.BATCHES.inc()
    _metric_names.BATCH_QUERIES.inc(len(specs))
    if not specs:
        return []
    if workers is None or workers <= 1:
        return [_serve_one(engine, spec) for spec in specs]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(lambda spec: _serve_one(engine, spec), specs))


def summarize_batch(items: list[BatchItem]) -> dict:
    """Aggregate a served stream: totals, throughput, sources and geometry.

    The ``geometry`` entry sums the ``lp_calls`` / ``vertex_clip_calls`` /
    ``enumeration_calls`` / ``fallback_calls`` telemetry over every served
    result.  The keys are legacy views of the registry schema
    (:mod:`repro.obs.names`): ``queries`` ↔ ``repro_batch_queries_total``,
    ``sources`` ↔ the ``source`` label of ``repro_queries_total``, and
    ``geometry`` ↔ ``repro_geometry_calls_total{kind=...}`` (the label drops
    the ``_calls`` suffix).  Cache hits
    re-serve a stored result, so their (already-counted) run counters repeat
    in the sum — the figure describes the work behind the *answers served*,
    not fresh computation.
    """
    total = sum(item.seconds for item in items)
    histogram: dict[str, int] = {}
    geometry = dict.fromkeys(GEOMETRY_COUNTER_KEYS, 0)
    for item in items:
        for source in item.sources.values():
            histogram[source] = histogram.get(source, 0) + 1
        for result in (item.utk1, item.utk2):
            if result is None:
                continue
            for key in GEOMETRY_COUNTER_KEYS:
                geometry[key] += int(result.stats.get(key, 0))
    return {
        "queries": len(items),
        "seconds": total,
        "queries_per_second": (len(items) / total) if total > 0 else float("inf"),
        "sources": dict(sorted(histogram.items())),
        "geometry": geometry,
    }
