"""A persistent UTK query-serving engine.

The one-shot API (:func:`repro.core.api.utk1` / ``utk2``) re-transforms the
data and recomputes the r-skyband for every call.  :class:`UTKEngine` binds to
a dataset once and serves many queries fast through three layers:

1. **Result cache** — answers are memoized by ``(region signature, k)``; a
   repeated query is a dictionary lookup.
2. **Containment reuse** — a cached answer for region ``R`` answers any
   sub-region ``R' ⊆ R``.  For UTK2 the cached partitioning is *clipped* to
   ``R'`` (each cell intersected with the sub-region, degenerate pieces
   dropped); for UTK1 the clipped partitioning collapses to the record union.
   Independently, cached r-skybands are *re-filtered* for contained regions
   (and smaller ``k``), so even a brand-new sub-query skips the expensive
   filtering step.  Both reuses are exact — r-dominance relationships only
   grow as the region shrinks (the paper's progressiveness property), so a
   cached candidate/cell set is always a superset for a contained query.
3. **LRU eviction** — every cache is bounded and evicts least-recently-used
   entries, with hit/miss/eviction statistics for capacity planning.

Batch workloads fan out over a thread pool via :meth:`UTKEngine.run_batch`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.cell import Cell
from repro.core.jaa import JAA
from repro.core.records import Dataset
from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result, UTKPartition
from repro.core.rsa import RSA
from repro.core.rskyband import (
    RSkyband, _BRUTE_FORCE_LIMIT, compute_r_skyband, refilter_r_skyband
)
from repro.core.scoring import LinearScoring, ScoringFunction
from repro.engine.cache import LRUCache, region_contains, region_signature
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree
from repro.obs import runtime as _obs
from repro.obs import names as _metric_names
from repro.obs.trace import span

#: How a query was answered; recorded per query and tallied in the stats.
SOURCE_RESULT_HIT = "hit"
SOURCE_CONTAINMENT = "containment"
SOURCE_SKYBAND_HIT = "skyband-hit"
SOURCE_SKYBAND_CONTAINMENT = "skyband-containment"
SOURCE_COLD = "cold"


@dataclass
class EngineStatistics:
    """Counters describing the work saved (and done) by the engine."""

    utk1_queries: int = 0
    utk2_queries: int = 0
    result_hits: int = 0
    containment_hits: int = 0
    skyband_hits: int = 0
    skyband_containment_hits: int = 0
    cold_queries: int = 0
    parallel_queries: int = 0
    batches: int = 0
    batch_queries: int = 0

    @property
    def queries(self) -> int:
        """Total queries served."""
        return self.utk1_queries + self.utk2_queries

    def as_dict(self) -> dict:
        """Plain-dict view used by the CLI and the benchmark harness."""
        return {
            "queries": self.queries,
            "utk1_queries": self.utk1_queries,
            "utk2_queries": self.utk2_queries,
            "result_hits": self.result_hits,
            "containment_hits": self.containment_hits,
            "skyband_hits": self.skyband_hits,
            "skyband_containment_hits": self.skyband_containment_hits,
            "cold_queries": self.cold_queries,
            "parallel_queries": self.parallel_queries,
            "batches": self.batches,
            "batch_queries": self.batch_queries,
        }


@dataclass(frozen=True)
class _SkybandEntry:
    region: Region
    k: int
    skyband: RSkyband


@dataclass(frozen=True)
class _ResultEntry:
    region: Region
    k: int
    result: object  # UTK1Result | UTK2Result


def clip_partitioning(result: UTK2Result, region: Region) -> UTK2Result:
    """Restrict a UTK2 partitioning to a contained sub-region.

    Every partition cell is intersected with ``region``; pieces that lose
    their interior are dropped.  Because the input partitions cover the outer
    region and carry exact top-k sets, the surviving pieces cover ``region``
    with the same exactness — no arrangement is rebuilt.
    """
    clipped: list[UTKPartition] = []
    for partition in result.partitions:
        a, b = partition.cell.constraints
        cell = Cell(region, extra_a=a, extra_b=b)
        if cell.is_full_dimensional():
            clipped.append(UTKPartition(cell=cell, top_k=partition.top_k))
    stats = {"reused_partitions": len(result.partitions), "clipped_partitions": len(clipped)}
    return UTK2Result(partitions=clipped, region=region, k=result.k, stats=stats)


class UTKEngine:
    """Serve many UTK queries against one dataset.

    Parameters
    ----------
    data:
        A :class:`~repro.core.records.Dataset` or an ``(n, d)`` matrix.  The
        scoring transform is applied once at construction.
    scoring:
        Optional scoring function; defaults to the linear weighted sum.
    cache_size:
        Capacity of each of the three LRU caches (r-skybands, UTK1 results,
        UTK2 results).
    index_threshold:
        Datasets larger than this get a bulk-loaded R-tree at bind time (the
        same cut-off the filtering step uses to pick BBS over brute force).
    parallel_workers:
        When at least 2, cache-miss queries whose r-skyband has at least
        ``parallel_min_candidates`` members are routed to the
        region-partitioned parallel executor (:mod:`repro.parallel`) on a
        pool of this many worker processes.  Cache hits, containment reuses
        and light queries stay on the serving fast path — the split Polynesia
        makes between a transactional fast path and a parallel analytical
        path.  ``0`` (the default) and ``1`` keep every query serial — a
        one-worker fan-out could never beat the in-process path.
    parallel_min_candidates:
        Heaviness threshold for the parallel route.  The r-skyband size is
        the best single predictor of refinement cost (it grows with both
        ``k`` and the region size), so it doubles as the large-σ / large-k
        detector.

    The engine is thread-safe: cache bookkeeping happens under a lock while
    the algorithmic work runs outside it, so :meth:`run_batch` can fan
    queries across a thread pool.  Concurrent identical queries may duplicate
    work (last write wins) but never produce wrong answers.  The process
    pool is shared across queries (and across batch threads), so concurrent
    heavy queries queue their shards onto one bounded pool instead of
    oversubscribing the machine.
    """

    def __init__(
        self,
        data,
        *,
        scoring: ScoringFunction | None = None,
        cache_size: int = 128,
        index_threshold: int = _BRUTE_FORCE_LIMIT,
        parallel_workers: int = 0,
        parallel_min_candidates: int = 48,
        tree=None,
    ):
        self._dataset = data if isinstance(data, Dataset) else None
        matrix = data.values if isinstance(data, Dataset) else np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise InvalidQueryError("engine data must be an (n, d) matrix")
        self.scoring = scoring or LinearScoring()
        self._values = self.scoring.transform(matrix)
        # A pre-built index (e.g. a colstore PagedRTree over the same id
        # space) short-circuits bulk loading; it must satisfy the RTree
        # traversal contract and index exactly the rows of ``data``.
        self._tree: RTree | None = tree
        if self._tree is None and self._values.shape[0] > index_threshold:
            self._tree = RTree(self._values)
        self._lock = threading.RLock()
        # Dataset generation: bumped by update-aware subclasses whenever the
        # bound data changes.  Query paths capture it at cache-lookup time
        # and skip their cache writes when it moved, so an answer computed
        # from pre-update state is still returned (it was correct when the
        # query arrived) but can never poison the caches.
        self._generation = 0
        self._skybands = self._make_cache("skyband", cache_size)
        self._utk1_cache = self._make_cache("utk1", cache_size)
        self._utk2_cache = self._make_cache("utk2", cache_size)
        self._traditional_skybands = self._make_cache("k_skyband", cache_size)
        self.stats = EngineStatistics()
        if parallel_workers < 0:
            raise InvalidQueryError("parallel_workers must be non-negative")
        self.parallel_workers = int(parallel_workers)
        self.parallel_min_candidates = int(parallel_min_candidates)
        self._pool = None

    def _make_cache(self, name: str, size: int):
        """Cache factory; subclasses substitute striped (or other) caches.

        Must return an object with the :class:`LRUCache` bookkeeping API
        (``get``/``put``/``touch``/``replace``/``scan``/``evict_where``/
        ``clear``/``stats`` plus the hit/miss/eviction counters).
        """
        return LRUCache(size, name=name)

    # ------------------------------------------------------------------ basic
    @property
    def dataset(self) -> Dataset | None:
        """The bound dataset, when one was supplied (``None`` for raw arrays)."""
        return self._dataset

    @property
    def values(self) -> np.ndarray:
        """The transformed ``(n, d)`` matrix the engine queries against."""
        return self._values

    @property
    def tree(self) -> RTree | None:
        """The shared R-tree (``None`` for datasets below the index threshold)."""
        return self._tree

    def _check_region(self, region: Region) -> None:
        if region.dimension != self._values.shape[1] - 1:
            raise InvalidQueryError(
                f"region dimension {region.dimension} does not match "
                f"{self._values.shape[1]}-dimensional data"
            )

    # ---------------------------------------------------------------- serving
    def utk1(self, region: Region, k: int) -> UTK1Result:
        """Answer a UTK1 query (which records may enter the top-k)."""
        result, _ = self.serve_utk1(region, k)
        return result

    def utk2(self, region: Region, k: int) -> UTK2Result:
        """Answer a UTK2 query (the exact top-k partitioning of the region)."""
        result, _ = self.serve_utk2(region, k)
        return result

    def query(self, region: Region, k: int) -> tuple[UTK1Result, UTK2Result]:
        """Answer both problem versions, sharing the filtering through the cache."""
        second, _ = self.serve_utk2(region, k)
        first, _ = self.serve_utk1(region, k)
        return first, second

    def serve_utk1(self, region: Region, k: int) -> tuple[UTK1Result, str]:
        """Answer a UTK1 query and report which reuse path served it."""
        if not _obs._ENABLED:
            return self._serve_utk1(region, k)
        return self._serve_observed("utk1", self._serve_utk1, region, k)

    def serve_utk2(self, region: Region, k: int) -> tuple[UTK2Result, str]:
        """Answer a UTK2 query and report which reuse path served it."""
        if not _obs._ENABLED:
            return self._serve_utk2(region, k)
        return self._serve_observed("utk2", self._serve_utk2, region, k)

    def _serve_observed(self, version: str, serve, region: Region, k: int):
        """Serve one query under a span, publishing latency and source."""
        started = time.perf_counter()
        with span(f"engine.{version}", k=int(k)) as scope:
            result, source = serve(region, k)
            scope.set(source=source)
        _metric_names.QUERIES.inc(version=version, source=source)
        _metric_names.QUERY_SECONDS.observe(time.perf_counter() - started, version=version)
        return result, source

    def _serve_utk1(self, region: Region, k: int) -> tuple[UTK1Result, str]:
        self._check_region(region)
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        k = int(k)
        signature = region_signature(region)
        key = (signature, k)
        with self._lock:
            generation = self._generation
            self.stats.utk1_queries += 1
            entry = self._utk1_cache.get(key)
            if entry is not None:
                self.stats.result_hits += 1
                return entry.result, SOURCE_RESULT_HIT
            donor = self._find_containing(self._utk2_cache, region, k)
        if donor is not None:
            result = clip_partitioning(donor.result, region).to_utk1()
            with self._lock:
                self.stats.containment_hits += 1
                self._put_current(self._utk1_cache, key, _ResultEntry(region, k, result),
                                  generation)
            return result, SOURCE_CONTAINMENT
        skyband, source = self._skyband_for(region, k, signature)
        if self._route_parallel(skyband):
            result = self._run_parallel(region, k, skyband, "rsa")
        else:
            result = RSA(self._values, region, k, skyband=skyband).run()
        with self._lock:
            self._put_current(self._utk1_cache, key, _ResultEntry(region, k, result), generation)
        return result, source

    def _serve_utk2(self, region: Region, k: int) -> tuple[UTK2Result, str]:
        self._check_region(region)
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        k = int(k)
        signature = region_signature(region)
        key = (signature, k)
        with self._lock:
            generation = self._generation
            self.stats.utk2_queries += 1
            entry = self._utk2_cache.get(key)
            if entry is not None:
                self.stats.result_hits += 1
                return entry.result, SOURCE_RESULT_HIT
            donor = self._find_containing(self._utk2_cache, region, k)
        if donor is not None:
            result = clip_partitioning(donor.result, region)
            with self._lock:
                self.stats.containment_hits += 1
                self._put_current(self._utk2_cache, key, _ResultEntry(region, k, result),
                                  generation)
            return result, SOURCE_CONTAINMENT
        skyband, source = self._skyband_for(region, k, signature)
        if self._route_parallel(skyband):
            result = self._run_parallel(region, k, skyband, "jaa")
        else:
            result = JAA(self._values, region, k, skyband=skyband).run()
        with self._lock:
            self._put_current(self._utk2_cache, key, _ResultEntry(region, k, result), generation)
        return result, source

    def k_skyband(self, k: int) -> np.ndarray:
        """Traditional k-skyband of the bound (transformed) dataset.

        Runs over the engine's cached R-tree — the one-shot path rebuilds a
        throwaway tree for every call above the index threshold — and is
        memoized per ``k``, so repeated skyband queries are a lookup.
        """
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        key = int(k)
        with self._lock:
            generation = self._generation
            cached = self._traditional_skybands.get(key)
            if cached is not None:
                return cached
        from repro.skyline.skyband import k_skyband as traditional_k_skyband
        result = traditional_k_skyband(self._values, key, tree=self._tree)
        with self._lock:
            self._put_current(self._traditional_skybands, key, result, generation)
        return result

    # ------------------------------------------------------------- parallel
    def _route_parallel(self, skyband: RSkyband) -> bool:
        """Whether a cache-miss query is heavy enough for the parallel path."""
        return self.parallel_workers > 1 and skyband.size >= self.parallel_min_candidates

    def _ensure_pool(self):
        """The shared worker-process pool, created on first heavy query."""
        from concurrent.futures import ProcessPoolExecutor

        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.parallel_workers)
            return self._pool

    def _run_parallel(self, region: Region, k: int, skyband: RSkyband, algorithm: str):
        """Solve a heavy query on the shared pool via the parallel executor."""
        from repro.parallel import parallel_utk_query

        first, second = parallel_utk_query(
            self._values,
            region,
            k,
            workers=self.parallel_workers,
            algorithm=algorithm,
            skyband=skyband,
            pool=self._ensure_pool(),
        )
        with self._lock:
            self.stats.parallel_queries += 1
        _metric_names.PARALLEL_QUERIES.inc()
        return first if algorithm == "rsa" else second

    def close(self) -> None:
        """Shut down the shared worker pool (idempotent; caches survive)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "UTKEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- filtering
    def _put_current(self, cache: LRUCache, key, value, generation: int) -> None:
        """Cache ``value`` unless the dataset changed while it was computed.

        Must be called under the engine lock.  A stale write would otherwise
        survive the update's eviction sweep and be served as a "hit" forever.
        """
        if generation == self._generation:
            cache.put(key, value)

    def _skyband_for(self, region: Region, k: int,
                     signature: str) -> tuple[RSkyband, str]:
        """The r-skyband for a query, reusing cached filterings when possible."""
        key = (signature, k)
        with self._lock:
            generation = self._generation
            entry = self._skybands.get(key)
            if entry is not None:
                self.stats.skyband_hits += 1
                return entry.skyband, SOURCE_SKYBAND_HIT
            donor = self._find_containing(self._skybands, region, k, allow_larger_k=True)
        if donor is not None:
            skyband = refilter_r_skyband(donor.skyband, region, k)
            with self._lock:
                self.stats.skyband_containment_hits += 1
                self._put_current(self._skybands, key, _SkybandEntry(region, k, skyband),
                                  generation)
            return skyband, SOURCE_SKYBAND_CONTAINMENT
        skyband = compute_r_skyband(self._values, region, k, tree=self._tree)
        _metric_names.SKYBAND_SIZE.observe(skyband.size)
        with self._lock:
            self.stats.cold_queries += 1
            self._put_current(self._skybands, key, _SkybandEntry(region, k, skyband), generation)
        return skyband, SOURCE_COLD

    def _find_containing(
        self, cache: LRUCache, region: Region, k: int, *, allow_larger_k: bool = False
    ):
        """Most recent cache entry whose region contains ``region``.

        Result entries must match ``k`` exactly (top-k sets change with
        ``k``); skyband entries computed for a larger ``k`` remain candidate
        supersets and are accepted when ``allow_larger_k`` is set.
        """
        for _, entry in cache.scan():
            if entry.k != k and not (allow_larger_k and entry.k > k):
                continue
            if region_contains(entry.region, region):
                return entry
        return None

    # ----------------------------------------------------------------- batch
    def run_batch(self, queries, *, workers: int | None = None) -> list:
        """Serve a sequence of queries, optionally across a thread pool.

        See :func:`repro.engine.batch.run_batch` for the accepted query
        shapes and the returned :class:`~repro.engine.batch.BatchItem` list.
        """
        from repro.engine.batch import run_batch
        return run_batch(self, queries, workers=workers)

    # ------------------------------------------------------------------ stats
    def cache_stats(self) -> dict:
        """Size/hit/miss/eviction counters of the three LRU caches."""
        with self._lock:
            return {
                "skyband": self._skybands.stats(),
                "utk1": self._utk1_cache.stats(),
                "utk2": self._utk2_cache.stats(),
                "k_skyband": self._traditional_skybands.stats(),
            }

    def statistics(self) -> dict:
        """Engine counters plus per-cache statistics, as one plain dict."""
        with self._lock:
            merged = {"engine": self.stats.as_dict()}
        merged.update(self.cache_stats())
        return merged

    def evict(self, *, region: Region | None = None, k: int | None = None,
              predicate=None) -> dict:
        """Fine-grained cache eviction; returns per-cache eviction counts.

        Drops the cached skybands and results matching *all* supplied
        filters, leaving everything else warm — the surgical alternative to
        :meth:`clear_caches`:

        * ``k`` — only entries computed for exactly this ``k``;
        * ``region`` — only entries whose region is contained in ``region``
          (an umbrella region: everything answering queries inside it goes);
        * ``predicate`` — custom ``predicate(key, entry)`` over the skyband/
          result entries, combined (AND) with the filters above.

        The traditional per-``k`` skyband memo has no region, so it honours
        only the ``k`` filter (and is left untouched by region-or-predicate
        scoped evictions).  With no arguments every entry is evicted, like
        :meth:`clear_caches` but counted in the eviction statistics.
        """

        def matches(key, entry) -> bool:
            if k is not None and entry.k != k:
                return False
            if region is not None and not region_contains(region, entry.region):
                return False
            if predicate is not None and not predicate(key, entry):
                return False
            return True

        with self._lock:
            counts = {
                "skyband": self._skybands.evict_where(matches),
                "utk1": self._utk1_cache.evict_where(matches),
                "utk2": self._utk2_cache.evict_where(matches),
            }
            if region is None and predicate is None:
                counts["k_skyband"] = self._traditional_skybands.evict_where(
                    lambda key, _value: k is None or key == k
                )
            else:
                counts["k_skyband"] = 0
        return counts

    def clear_caches(self) -> None:
        """Drop every cached skyband and result (counters are preserved)."""
        with self._lock:
            self._skybands.clear()
            self._utk1_cache.clear()
            self._utk2_cache.clear()
            self._traditional_skybands.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n, d = self._values.shape
        return (f"UTKEngine(n={n}, d={d}, indexed={self._tree is not None}, "
                f"queries={self.stats.queries})")
