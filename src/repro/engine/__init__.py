"""repro.engine — persistent query serving for UTK workloads.

The engine subsystem turns the library's one-shot algorithms into a serving
layer: bind a dataset once, then answer repeated, nearby and batched queries
through memoized r-skybands, region-containment reuse and a thread-pool batch
executor.  See :class:`UTKEngine` for the full story.
"""

from repro.engine.batch import (BatchItem, BatchQuery, as_batch_query, run_batch, summarize_batch)
from repro.engine.cache import LRUCache, region_contains, region_signature
from repro.engine.engine import EngineStatistics, UTKEngine, clip_partitioning

__all__ = [
    "UTKEngine",
    "EngineStatistics",
    "clip_partitioning",
    "BatchQuery",
    "BatchItem",
    "as_batch_query",
    "run_batch",
    "summarize_batch",
    "LRUCache",
    "region_contains",
    "region_signature",
]
