"""Spawn-safe shard workers for the parallel executor.

A shard task carries everything a worker process needs: the sub-region, the
query parameters, and the *parent r-skyband slice* (member indices and
attribute rows of the skyband computed once for the full query region).  The
worker rebuilds only the shard's exact r-skyband from that slice — the
paper's progressiveness property guarantees the parent members are a
candidate superset for every sub-region — and then runs RSA / JAA with the
skyband's own rows as the value matrix.  The full dataset never crosses the
process boundary.

Everything here is module-level and picklable, so the executor works under
every multiprocessing start method (``fork``, ``forkserver`` and ``spawn``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.jaa import JAA
from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result
from repro.core.rsa import RSA
from repro.core.rskyband import skyband_from_candidates
from repro.exceptions import InvalidQueryError

#: Problem versions a shard may be asked to solve.
ALGORITHMS = ("rsa", "jaa", "both")


@dataclass(frozen=True)
class ShardTask:
    """One unit of parallel work: a sub-region plus the parent skyband slice."""

    shard_id: int
    algorithm: str
    region: Region
    k: int
    candidate_indices: np.ndarray
    candidate_rows: np.ndarray
    use_drill: bool = True

    def __post_init__(self):
        if self.algorithm not in ALGORITHMS:
            raise InvalidQueryError(
                f"unknown shard algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )


@dataclass
class ShardOutcome:
    """What a worker sends back: per-version results plus shard accounting."""

    shard_id: int
    utk1: UTK1Result | None = None
    utk2: UTK2Result | None = None
    skyband_size: int = 0
    seconds: float = 0.0
    stats: dict = field(default_factory=dict)


def run_shard(task: ShardTask) -> ShardOutcome:
    """Solve one shard; the module-level entry point executed in the pool.

    Rebuilds the shard's exact r-skyband from the parent slice (one quadratic
    pass over the slice — no index, no dataset scan), then runs the requested
    algorithm(s) against the slice rows.  Results carry dataset indices, so
    they merge directly with the other shards' outcomes.
    """
    started = time.perf_counter()
    skyband = skyband_from_candidates(
        task.candidate_indices, task.candidate_rows, task.region, task.k
    )
    outcome = ShardOutcome(shard_id=task.shard_id, skyband_size=skyband.size)
    if task.algorithm in ("rsa", "both"):
        algorithm = RSA(
            task.candidate_rows,
            task.region,
            task.k,
            skyband=skyband,
            use_drill=task.use_drill,
        )
        outcome.utk1 = algorithm.run()
    if task.algorithm in ("jaa", "both"):
        algorithm = JAA(task.candidate_rows, task.region, task.k, skyband=skyband)
        outcome.utk2 = algorithm.run()
    outcome.seconds = time.perf_counter() - started
    outcome.stats = {"shard_skyband_size": skyband.size}
    return outcome
