"""Spawn-safe shard workers for the parallel executor.

A shard task carries everything a worker process needs: the sub-region, the
query parameters, and the *parent r-skyband slice* (member indices and
attribute rows of the skyband computed once for the full query region).  The
worker rebuilds only the shard's exact r-skyband from that slice — the
paper's progressiveness property guarantees the parent members are a
candidate superset for every sub-region — and then runs RSA / JAA with the
skyband's own rows as the value matrix.  The full dataset never crosses the
process boundary.

Everything here is module-level and picklable, so the executor works under
every multiprocessing start method (``fork``, ``forkserver`` and ``spawn``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.jaa import JAA
from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result
from repro.core.rsa import RSA
from repro.core.rskyband import skyband_from_candidates
from repro.exceptions import InvalidQueryError
from repro.obs import runtime as _obs_runtime
from repro.obs import trace as _obs_trace

#: Problem versions a shard may be asked to solve.
ALGORITHMS = ("rsa", "jaa", "both")


@dataclass(frozen=True)
class ShardTask:
    """One unit of parallel work: a sub-region plus the parent skyband slice.

    ``trace=True`` asks the worker to record a span tree of its own solve and
    serialize it back on the outcome, so the coordinator can graft the shard's
    trace under its query span (:mod:`repro.parallel.merge`).
    """

    shard_id: int
    algorithm: str
    region: Region
    k: int
    candidate_indices: np.ndarray
    candidate_rows: np.ndarray
    use_drill: bool = True
    trace: bool = False

    def __post_init__(self):
        if self.algorithm not in ALGORITHMS:
            raise InvalidQueryError(
                f"unknown shard algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )


@dataclass
class ShardOutcome:
    """What a worker sends back: per-version results plus shard accounting.

    ``trace`` holds the worker's serialized span tree(s)
    (:meth:`repro.obs.trace.Span.to_dict` payloads) when the task asked for
    tracing; empty otherwise.
    """

    shard_id: int
    utk1: UTK1Result | None = None
    utk2: UTK2Result | None = None
    skyband_size: int = 0
    seconds: float = 0.0
    stats: dict = field(default_factory=dict)
    trace: list = field(default_factory=list)


def _solve_shard(task: ShardTask, outcome: ShardOutcome) -> None:
    """Rebuild the shard skyband and run the requested algorithm(s)."""
    skyband = skyband_from_candidates(
        task.candidate_indices, task.candidate_rows, task.region, task.k
    )
    outcome.skyband_size = skyband.size
    if task.algorithm in ("rsa", "both"):
        algorithm = RSA(
            task.candidate_rows,
            task.region,
            task.k,
            skyband=skyband,
            use_drill=task.use_drill,
        )
        outcome.utk1 = algorithm.run()
    if task.algorithm in ("jaa", "both"):
        algorithm = JAA(task.candidate_rows, task.region, task.k, skyband=skyband)
        outcome.utk2 = algorithm.run()
    outcome.stats = {"shard_skyband_size": skyband.size}


def run_shard(task: ShardTask) -> ShardOutcome:
    """Solve one shard; the module-level entry point executed in the pool.

    Rebuilds the shard's exact r-skyband from the parent slice (one quadratic
    pass over the slice — no index, no dataset scan), then runs the requested
    algorithm(s) against the slice rows.  Results carry dataset indices, so
    they merge directly with the other shards' outcomes.

    When ``task.trace`` is set, the solve runs with observability enabled
    under an isolated capture: the shard's whole span tree is rooted at
    ``shard[<id>]`` and shipped back on ``outcome.trace`` as plain dicts (the
    only span form that survives pickling across the pool boundary).
    """
    started = time.perf_counter()
    outcome = ShardOutcome(shard_id=task.shard_id)
    if not task.trace:
        _solve_shard(task, outcome)
    else:
        with _obs_trace.capture() as captured, _obs_runtime.activated(True):
            with _obs_trace.span(
                f"shard[{task.shard_id}]",
                shard=task.shard_id,
                algorithm=task.algorithm,
            ):
                _solve_shard(task, outcome)
        outcome.trace = [finished.to_dict() for finished in captured]
    outcome.seconds = time.perf_counter() - started
    return outcome
