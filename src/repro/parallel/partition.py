"""Region partitioning for parallel UTK execution.

The parallel executor splits the query region ``R`` into ``p`` sub-regions
by recursive *longest-edge bisection*: at every step the sub-region with the
largest axis extent is cut in half perpendicular to that axis.  Because the
sub-regions tile ``R`` (they overlap only on the cutting hyperplanes, which
are measure-zero), solving a UTK query per sub-region and merging the
answers is exact — a record enters some top-k set in ``R`` if and only if it
does so in at least one sub-region, and every full-dimensional partition of
the UTK2 arrangement keeps a full-dimensional piece inside at least one
sub-region.

Splits preserve the vertex representation whenever the vertex enumeration of
:mod:`repro.geometry.linear_programming` applies, so the per-shard
r-dominance tests stay on the vectorized vertex path.
"""

from __future__ import annotations

import numpy as np

from repro.core.region import Region
from repro.exceptions import InvalidQueryError
from repro.geometry.linear_programming import polytope_vertices

#: Sub-regions whose longest edge falls below this are not split further
#: (bisection of a degenerate sliver produces empty-interior pieces).
_MIN_EDGE = 1e-6


def axis_extents(region: Region) -> np.ndarray:
    """Per-axis extent (max minus min) of the region along each coordinate."""
    dim = region.dimension
    vertices = region.vertices
    if vertices is not None:
        return vertices.max(axis=0) - vertices.min(axis=0)
    extents = np.empty(dim, dtype=float)
    for axis in range(dim):
        coef = np.zeros(dim)
        coef[axis] = 1.0
        extents[axis] = region.linear_max(coef) - region.linear_min(coef)
    return extents


def _axis_midpoint(region: Region, axis: int) -> float:
    coef = np.zeros(region.dimension)
    coef[axis] = 1.0
    return 0.5 * (region.linear_min(coef) + region.linear_max(coef))


def _half(region: Region, axis: int, midpoint: float, *, upper: bool) -> Region:
    """The half of ``region`` on one side of ``u[axis] = midpoint``.

    The half is the parent's H-representation plus one axis-parallel row; its
    vertex set is re-enumerated so the vectorized r-dominance path survives
    the split.  Validation is skipped — a subset of a valid region is valid.
    """
    dim = region.dimension
    row = np.zeros((1, dim))
    row[0, axis] = -1.0 if upper else 1.0
    rhs = -midpoint if upper else midpoint
    a, b = region.constraints
    a = np.vstack([a, row])
    b = np.concatenate([b, [rhs]])
    vertices = polytope_vertices(a, b) if region.vertices is not None else None
    if vertices is not None and vertices.shape[0] == 0:
        vertices = None
    return Region(a, b, vertices=vertices, validate=False)


def bisect_region(region: Region) -> tuple[Region, Region]:
    """Split ``region`` in half perpendicular to its longest axis extent."""
    extents = axis_extents(region)
    axis = int(np.argmax(extents))
    midpoint = _axis_midpoint(region, axis)
    return (
        _half(region, axis, midpoint, upper=False),
        _half(region, axis, midpoint, upper=True),
    )


def subdivide_region(region: Region, parts: int) -> list[Region]:
    """Tile ``region`` with ``parts`` sub-regions by longest-edge bisection.

    Deterministic: the sub-region with the largest longest-edge is always
    split next (ties broken by creation order), so the same region and
    ``parts`` produce the same tiling in every process.  Returns fewer than
    ``parts`` pieces only when further splits would produce degenerate
    slivers (longest edge below ``1e-6``).
    """
    if parts < 1:
        raise InvalidQueryError("parts must be at least 1")
    if parts == 1:
        return [region]
    # (negative longest edge, creation order) keeps the pop deterministic.
    pieces: list[tuple[float, int, Region]] = [(-float(axis_extents(region).max()), 0, region)]
    counter = 1
    while len(pieces) < parts:
        pieces.sort(key=lambda item: (item[0], item[1]))
        edge, _, widest = pieces[0]
        if -edge < _MIN_EDGE:
            break
        pieces.pop(0)
        for half in bisect_region(widest):
            pieces.append((-float(axis_extents(half).max()), counter, half))
            counter += 1
    pieces.sort(key=lambda item: item[1])
    return [piece for _, _, piece in pieces]
