"""Region-partitioned parallel execution of UTK queries.

The package splits a query region into sub-regions (longest-edge bisection),
solves RSA / JAA per sub-region in worker processes — each worker rebuilds
only its shard's r-skyband slice from the filtering step computed once — and
merges the per-shard answers into a single result that matches the serial
algorithms: the same UTK1 record set, and a UTK2 partitioning covering the
same top-k sets.

Entry points: :func:`parallel_utk1`, :func:`parallel_utk2` and
:func:`parallel_utk_query`; the serving integration lives in
:class:`repro.engine.engine.UTKEngine` (``parallel_workers=``), and the
one-shot API exposes the same machinery as ``utk1(..., workers=N)``.
"""

from repro.parallel.executor import (
    default_workers,
    parallel_utk1,
    parallel_utk2,
    parallel_utk_query,
)
from repro.parallel.merge import merge_utk1_results, merge_utk2_results
from repro.parallel.partition import axis_extents, bisect_region, subdivide_region
from repro.parallel.worker import ShardOutcome, ShardTask, run_shard

__all__ = [
    "parallel_utk1",
    "parallel_utk2",
    "parallel_utk_query",
    "default_workers",
    "subdivide_region",
    "bisect_region",
    "axis_extents",
    "merge_utk1_results",
    "merge_utk2_results",
    "ShardTask",
    "ShardOutcome",
    "run_shard",
]
