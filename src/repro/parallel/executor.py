"""Region-partitioned parallel execution of RSA and JAA.

The executor answers a UTK query in four steps:

1. **Filter once** — compute (or accept) the r-skyband of the *full* query
   region; this is the same filtering step the serial algorithms run.
2. **Partition** — tile the region into ``shards`` sub-regions by
   longest-edge bisection (:mod:`repro.parallel.partition`).
3. **Fan out** — solve each sub-region in a worker process
   (:mod:`repro.parallel.worker`); every task ships only the skyband slice,
   and each worker rebuilds its shard's exact r-skyband from it.
4. **Merge** — combine the per-shard answers into one result for the full
   region (:mod:`repro.parallel.merge`): the UTK1 union and the concatenated
   UTK2 partitioning are exactly what the serial algorithms report (the
   UTK2 cells are carved differently along the cutting hyperplanes, but the
   covered top-k sets — and therefore the record union — are identical).

``workers <= 1`` (with default ``shards``) degenerates to the serial
algorithms, so callers can thread a single ``workers`` knob through without
branching.  The ``backend="serial"`` mode runs the full
partition/fan-out/merge machinery in-process — deterministic and
pool-free — which the agreement tests use to exercise the parallel code
path cheaply.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.jaa import JAA
from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result
from repro.core.rsa import RSA
from repro.core.rskyband import RSkyband, compute_r_skyband
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree
from repro.obs import names as _metric_names
from repro.obs import runtime as _obs_runtime
from repro.obs.names import observe_phase as _observe_phase
from repro.obs.trace import span

from repro.parallel.merge import merge_outcomes
from repro.parallel.partition import subdivide_region
from repro.parallel.worker import ShardOutcome, ShardTask, run_shard

#: Execution backends: worker processes, or in-process (for tests/debugging).
BACKENDS = ("process", "serial")


def default_workers() -> int:
    """Worker count used when a caller asks for parallelism without a count."""
    return max(1, os.cpu_count() or 1)


def _run_tasks(
    tasks: list[ShardTask],
    *,
    workers: int,
    backend: str,
    start_method: str | None,
    pool: ProcessPoolExecutor | None,
) -> list[ShardOutcome]:
    """Execute shard tasks on the requested backend, preserving task order."""
    if backend == "serial":
        return [run_shard(task) for task in tasks]
    if pool is not None:
        return [future.result() for future in [pool.submit(run_shard, task) for task in tasks]]
    mp_context = None
    if start_method is not None:
        import multiprocessing

        mp_context = multiprocessing.get_context(start_method)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)), mp_context=mp_context
    ) as fresh_pool:
        return list(fresh_pool.map(run_shard, tasks))


def parallel_utk_query(
    values: np.ndarray,
    region: Region,
    k: int,
    *,
    workers: int | None = None,
    shards: int | None = None,
    algorithm: str = "both",
    skyband: RSkyband | None = None,
    tree: RTree | None = None,
    use_drill: bool = True,
    backend: str = "process",
    start_method: str | None = None,
    pool: ProcessPoolExecutor | None = None,
) -> tuple[UTK1Result | None, UTK2Result | None]:
    """Answer a UTK query by region-partitioned parallel execution.

    Parameters
    ----------
    values:
        ``(n, d)`` dataset matrix (already scoring-transformed).
    region, k:
        The UTK query.
    workers:
        Worker-process count; ``None`` uses :func:`default_workers`, values
        ``<= 1`` run the serial algorithms.
    shards:
        Sub-region count; defaults to ``workers``.  More shards than workers
        give the pool smaller units to balance over.
    algorithm:
        ``"rsa"`` (UTK1 only), ``"jaa"`` (UTK2 only) or ``"both"``.
    skyband:
        Optional pre-computed r-skyband of the full region (e.g. an engine
        cache entry); skips the filtering step.
    tree:
        Optional R-tree over ``values``, used only when filtering runs here.
    use_drill:
        RSA drill optimization toggle, forwarded to the shard workers.
    backend:
        ``"process"`` (default) or ``"serial"`` (in-process fan-out).
    start_method:
        Optional multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.
    pool:
        Optional existing :class:`~concurrent.futures.ProcessPoolExecutor`
        to submit to (not shut down afterwards); the engine shares one pool
        across queries this way.

    Returns
    -------
    ``(utk1, utk2)`` — entries are ``None`` for versions not requested.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise InvalidQueryError("values must be an (n, d) matrix")
    if k <= 0:
        raise InvalidQueryError("k must be positive")
    if region.dimension != values.shape[1] - 1:
        raise InvalidQueryError(
            f"region dimension {region.dimension} does not match "
            f"{values.shape[1]}-dimensional data"
        )
    if algorithm not in ("rsa", "jaa", "both"):
        raise InvalidQueryError(f"unknown algorithm {algorithm!r}")
    if backend not in BACKENDS:
        raise InvalidQueryError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    workers = default_workers() if workers is None else max(1, int(workers))
    shard_count = workers if shards is None else max(1, int(shards))

    if skyband is None:
        with span("parallel.filter", k=int(k)) as phase:
            skyband = compute_r_skyband(values, region, k, tree=tree)
        _observe_phase("parallel.filter", phase)

    # Degenerate cases keep the serial path: nothing to fan out.
    if shard_count <= 1 or skyband.size <= k:
        first = second = None
        if algorithm in ("rsa", "both"):
            first = RSA(values, region, int(k), skyband=skyband, use_drill=use_drill).run()
        if algorithm in ("jaa", "both"):
            second = JAA(values, region, int(k), skyband=skyband).run()
        return first, second

    subregions = subdivide_region(region, shard_count)
    if len(subregions) == 1:
        return parallel_utk_query(
            values, region, k, workers=1, algorithm=algorithm,
            skyband=skyband, use_drill=use_drill,
        )
    with span("parallel.query", shards=len(subregions), workers=workers, backend=backend):
        tasks = [
            ShardTask(
                shard_id=shard_id,
                algorithm=algorithm,
                region=subregion,
                k=int(k),
                candidate_indices=skyband.indices,
                candidate_rows=skyband.values,
                use_drill=use_drill,
                trace=_obs_runtime.enabled(),
            )
            for shard_id, subregion in enumerate(subregions)
        ]
        _metric_names.PARALLEL_SHARDS.inc(len(tasks))
        with span("parallel.fanout", shards=len(tasks)) as phase:
            outcomes = _run_tasks(
                tasks, workers=workers, backend=backend, start_method=start_method, pool=pool
            )
        _observe_phase("parallel.fanout", phase)
        # Merged while ``parallel.query`` is the current span, so the shards'
        # serialized traces graft directly under the coordinator span.
        first, second = merge_outcomes(outcomes, region, int(k))
    for result in (first, second):
        if result is None:
            continue
        result.stats["workers"] = workers
        result.stats["parent_skyband_size"] = skyband.size
        result.stats["filter_bbs_nodes_visited"] = skyband.stats.nodes_visited
        result.stats["filter_bbs_records_visited"] = skyband.stats.records_visited
    return first, second


def parallel_utk1(values, region: Region, k: int, **options) -> UTK1Result:
    """UTK1 via the parallel executor (see :func:`parallel_utk_query`)."""
    first, _ = parallel_utk_query(values, region, k, algorithm="rsa", **options)
    return first


def parallel_utk2(values, region: Region, k: int, **options) -> UTK2Result:
    """UTK2 via the parallel executor (see :func:`parallel_utk_query`)."""
    _, second = parallel_utk_query(values, region, k, algorithm="jaa", **options)
    return second
