"""Merging per-shard UTK results into one answer for the full region.

Correctness rests on the tiling property of the partitioner: the sub-regions
cover the query region and overlap only on measure-zero cutting hyperplanes.

* **UTK1** — a record may enter the top-k somewhere in ``R`` iff it does in
  at least one sub-region, so the merged answer is the (deduplicated, sorted)
  union of the shard answers; witnesses are taken from the first shard that
  reported the record.
* **UTK2** — the shard partitionings are concatenated: each is an exact
  partitioning of its sub-region, and together the sub-regions tile ``R``.
  Equal top-k sets from different shards are interned to one shared
  ``frozenset`` so the merged result deduplicates storage and set-identity
  checks, exactly as a single JAA run would share them.

Numeric per-shard statistics are summed under their original keys, so the
merged ``stats`` reads like one big serial run plus shard accounting.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result, UTKPartition
from repro.exceptions import InvalidQueryError
from repro.obs import runtime as _obs_runtime
from repro.obs import trace as _obs_trace

from repro.parallel.worker import ShardOutcome


def _sum_stats(dicts: Sequence[dict]) -> dict:
    """Sum numeric values key-wise; non-numeric values are dropped."""
    merged: dict = {}
    for stats in dicts:
        for key, value in stats.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            merged[key] = merged.get(key, 0) + value
    return merged


def merge_utk1_results(
    results: Sequence[UTK1Result], region: Region, k: int, *, extra_stats: dict | None = None
) -> UTK1Result:
    """Union of per-shard UTK1 answers, reported against the full region."""
    if not results:
        raise InvalidQueryError("cannot merge an empty list of shard results")
    witnesses: dict = {}
    for result in results:
        for index in result.indices:
            witnesses.setdefault(int(index), result.witnesses[int(index)])
    stats = _sum_stats([result.stats for result in results])
    stats["shards"] = len(results)
    stats.update(extra_stats or {})
    return UTK1Result(
        indices=sorted(witnesses), witnesses=witnesses, region=region, k=k, stats=stats
    )


def merge_utk2_results(
    results: Sequence[UTK2Result], region: Region, k: int, *, extra_stats: dict | None = None
) -> UTK2Result:
    """Concatenation of per-shard partitionings with interned top-k sets."""
    if not results:
        raise InvalidQueryError("cannot merge an empty list of shard results")
    interned: dict[frozenset, frozenset] = {}
    partitions: list[UTKPartition] = []
    for result in results:
        for partition in result.partitions:
            top_k = interned.setdefault(partition.top_k, partition.top_k)
            partitions.append(UTKPartition(cell=partition.cell, top_k=top_k))
    stats = _sum_stats([result.stats for result in results])
    stats["shards"] = len(results)
    stats["distinct_top_k_sets"] = len(interned)
    stats.update(extra_stats or {})
    return UTK2Result(partitions=partitions, region=region, k=k, stats=stats)


def merge_outcomes(outcomes: Sequence[ShardOutcome], region: Region, k: int) -> tuple[
    UTK1Result | None, UTK2Result | None
]:
    """Merge shard outcomes (in shard order) into full-region results.

    When observability is enabled, each outcome's serialized worker span tree
    is grafted (in shard order) under the coordinator's current span, so a
    parallel query's trace reads as one tree: the coordinator query span with
    one ``shard[<id>]`` subtree per worker.
    """
    ordered = sorted(outcomes, key=lambda outcome: outcome.shard_id)
    if _obs_runtime.enabled():
        for outcome in ordered:
            if outcome.trace:
                _obs_trace.graft(outcome.trace)
    extra = {
        "shard_seconds_total": sum(outcome.seconds for outcome in ordered),
        "shard_skyband_max": max((outcome.skyband_size for outcome in ordered), default=0),
    }
    first = second = None
    if all(outcome.utk1 is not None for outcome in ordered):
        first = merge_utk1_results(
            [outcome.utk1 for outcome in ordered], region, k, extra_stats=extra
        )
    if all(outcome.utk2 is not None for outcome in ordered):
        second = merge_utk2_results(
            [outcome.utk2 for outcome in ordered], region, k, extra_stats=extra
        )
    return first, second
