"""repro.dynamic — streaming insert/delete maintenance for the UTK stack.

The static stack assumes an immutable dataset: any record change forces a
full rebuild (re-bulk-load the R-tree, recompute every r-skyband, drop every
engine cache).  This subsystem makes the whole stack update-aware:

* :class:`RecordStore` — a growable record buffer with stable ids and
  tombstoned deletes (:mod:`repro.dynamic.store`);
* :func:`repair_insert` / :func:`repair_delete` — exact incremental
  r-skyband maintenance (:mod:`repro.dynamic.maintenance`);
* :class:`DynamicUTKEngine` — a serving engine whose caches are surgically
  repaired or evicted per update instead of cleared
  (:mod:`repro.dynamic.engine`), plus :func:`serve_events` for interleaved
  update/query event streams (the ``repro stream`` CLI mode).
"""

from repro.dynamic.engine import DynamicUTKEngine, UpdateStatistics, serve_events
from repro.dynamic.maintenance import (
    KIND_NOOP,
    KIND_PATCHED,
    KIND_REFILTERED,
    SkybandRepair,
    repair_delete,
    repair_insert,
)
from repro.dynamic.store import RecordStore

__all__ = [
    "DynamicUTKEngine",
    "UpdateStatistics",
    "serve_events",
    "RecordStore",
    "SkybandRepair",
    "repair_insert",
    "repair_delete",
    "KIND_NOOP",
    "KIND_PATCHED",
    "KIND_REFILTERED",
]
