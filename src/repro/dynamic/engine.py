"""Update-aware query serving: :class:`DynamicUTKEngine`.

A :class:`~repro.engine.engine.UTKEngine` binds to an immutable dataset; the
only way to change the data is to rebuild the engine (R-tree bulk load, every
r-skyband recomputed, every cache cold).  ``DynamicUTKEngine`` keeps the full
serving stack exact under record insertion and deletion:

* the dataset lives in a :class:`~repro.dynamic.store.RecordStore` (stable
  ids, tombstoned deletes) and the shared R-tree is maintained in place with
  :meth:`~repro.index.rtree.RTree.insert` / ``delete``;
* every cached r-skyband is *repaired* through
  :mod:`repro.dynamic.maintenance` — a provable no-op costs ``O(m)``
  r-dominance tests, a real change patches the member set and graph in place;
* cached UTK1/UTK2 results are kept whenever the update provably did not
  touch their region's r-skyband (classified against the same-key skyband,
  or any cached containing skyband) and surgically evicted otherwise —
  replacing the all-or-nothing ``clear_caches()``.

Answers stay exact: after any update sequence, every query equals the answer
of a fresh engine rebuilt from the post-update dataset (with stable ids
mapped through :meth:`snapshot`).

Updates mutate shared state and therefore run under the engine lock, and
the index-touching filtering paths (cold r-skyband computation, the
traditional k-skyband) are serialized with them — an R-tree being condensed
by a delete must never be traversed concurrently.  Warm serving (cache
hits, containment clipping, refinement over an already-extracted skyband)
runs outside the lock as before; a query racing an update may therefore
still *serve* the pre-update answer (it was correct when the query
arrived), but it can never poison the caches: every cache write captures
the dataset generation at lookup time and is skipped when an update
committed in between, so post-update queries always see repaired (or
recomputed) state.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.dominance import RDominance
from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result
from repro.dynamic.maintenance import KIND_NOOP, SkybandRepair, repair_delete, repair_insert
from repro.dynamic.store import RecordStore
from repro.engine.engine import UTKEngine, _SkybandEntry
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree
from repro.kernels.dominance import dominators_mask
from repro.obs import runtime as _obs
from repro.obs import names as _metric_names
from repro.obs.trace import span

#: Update operations accepted by :meth:`DynamicUTKEngine.apply_updates`.
OP_INSERT = "insert"
OP_DELETE = "delete"


@dataclass
class UpdateStatistics:
    """Counters describing the maintenance work of an engine's lifetime.

    ``entries_repaired``/``entries_noop`` count cached r-skybands patched vs
    proven unaffected; ``entries_evicted`` counts cached results (and
    traditional skybands) that had to be dropped; ``results_retained`` counts
    the cached results that survived an update untouched.
    """

    updates_applied: int = 0
    inserts: int = 0
    deletes: int = 0
    entries_repaired: int = 0
    entries_noop: int = 0
    entries_evicted: int = 0
    results_retained: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view merged into :meth:`DynamicUTKEngine.statistics`."""
        return dataclasses.asdict(self)


class DynamicUTKEngine(UTKEngine):
    """A UTK serving engine that stays exact under insert/delete streams.

    Construction matches :class:`~repro.engine.engine.UTKEngine`; records of
    the initial dataset receive ids ``0..n-1`` and every insertion returns a
    fresh, never-reused id.  Results are reported in this stable id space.
    An R-tree is always maintained (regardless of dataset size), so the
    filtering step only ever reaches live records.
    """

    def __init__(
        self,
        data,
        *,
        scoring=None,
        cache_size: int = 128,
        parallel_workers: int = 0,
        parallel_min_candidates: int = 48,
        store_factory=None,
    ):
        self._store_factory = store_factory
        super().__init__(
            data,
            scoring=scoring,
            cache_size=cache_size,
            index_threshold=0,
            parallel_workers=parallel_workers,
            parallel_min_candidates=parallel_min_candidates,
        )
        self._store = self._make_store(self._values)
        self._values = self._store.matrix
        if self._tree is None:  # empty initial matrix: below every threshold
            self._tree = RTree(self._values)
        self.update_stats = UpdateStatistics()

    def _make_store(self, values) -> RecordStore:
        """Store factory; the serve tier substitutes a shared-memory store and
        ``store_factory=`` swaps in any other backend (e.g. a
        :class:`~repro.colstore.store.ColumnarRecordStore` bound to a
        directory).  The maintained R-tree stays in memory either way — only
        the record bytes move to the backend."""
        if self._store_factory is not None:
            return self._store_factory(values)
        return RecordStore(values)

    # ------------------------------------------------------------- filtering
    def _skyband_for(self, region, k, signature):
        """Cold filtering traverses the R-tree: serialize it with updates."""
        with self._lock:
            return super()._skyband_for(region, k, signature)

    def k_skyband(self, k: int) -> np.ndarray:
        """Traditional k-skyband (see base class); serialized with updates."""
        with self._lock:
            return super().k_skyband(k)

    # ----------------------------------------------------------------- views
    @property
    def store(self) -> RecordStore:
        """The backing record store (stable ids, tombstoned deletes)."""
        return self._store

    def active_ids(self) -> np.ndarray:
        """Ids of the records currently in the dataset, ascending."""
        return self._store.active_ids()

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, values)`` of the live dataset in the *transformed* space.

        A fresh engine built from ``values`` (with the identity scoring —
        the transform is already applied) answers in row positions;
        ``ids[position]`` maps them back to this engine's stable ids.  The
        exactness tests and the dynamic benchmark rebuild from exactly this.
        """
        return self._store.snapshot()

    # --------------------------------------------------------------- updates
    def insert(self, row) -> int:
        """Insert one record (raw attribute space); returns its stable id."""
        return self.apply_updates([(OP_INSERT, row)])["inserted_ids"][0]

    def delete(self, record_id: int) -> None:
        """Delete the record with the given stable id."""
        self.apply_updates([(OP_DELETE, record_id)])

    def apply_updates(self, updates) -> dict:
        """Apply a batch of updates, repairing caches surgically.

        ``updates`` is an iterable of ``("insert", row)`` / ``("delete", id)``
        pairs or of mappings ``{"op": "insert", "values": [...]}`` /
        ``{"op": "delete", "id": ...}`` (the ``repro stream`` event shape).
        Returns a report with the counters accumulated over this batch
        (:meth:`UpdateStatistics.as_dict` keys) plus the ids assigned to
        inserted records, in order.

        The batch is validated before anything is applied (update shapes,
        record dimensionality/finiteness, delete targets live through the
        batch), so a malformed batch raises without mutating any state.
        """
        normalized = [self._normalize_update(update) for update in updates]
        batch = UpdateStatistics()
        inserted_ids: list[int] = []
        with span("dynamic.apply_updates", updates=len(normalized)), self._lock:
            self._validate_batch(normalized)
            # Any in-flight query that began against the pre-update state
            # must not write its (possibly stale) results into the caches.
            self._generation += 1
            try:
                for op, payload in normalized:
                    if op == OP_INSERT:
                        inserted_ids.append(self._apply_insert(payload, batch))
                        batch.inserts += 1
                    else:
                        self._apply_delete(payload, batch)
                        batch.deletes += 1
                    batch.updates_applied += 1
            finally:
                # Even if an update fails unexpectedly mid-batch, the engine
                # counters must reflect the prefix that was applied.
                for field in dataclasses.fields(UpdateStatistics):
                    setattr(self.update_stats, field.name,
                            getattr(self.update_stats, field.name) + getattr(batch, field.name))
                self._publish_maintenance(batch)
        return {**batch.as_dict(), "inserted_ids": inserted_ids}

    @staticmethod
    def _publish_maintenance(batch: UpdateStatistics) -> None:
        """Fold one batch's maintenance tallies into the registry schema.

        The legacy ``UpdateStatistics`` keys map onto two labeled series:
        ``inserts``/``deletes`` ↔ ``repro_maintenance_updates_total{op}`` and
        ``entries_repaired``/``entries_noop``/``entries_evicted``/
        ``results_retained`` ↔ ``repro_maintenance_outcomes_total{kind}``.
        """
        if not _obs._ENABLED:
            return
        _metric_names.MAINTENANCE_UPDATES.inc(batch.inserts, op="insert")
        _metric_names.MAINTENANCE_UPDATES.inc(batch.deletes, op="delete")
        _metric_names.MAINTENANCE_OUTCOMES.inc(batch.entries_repaired, kind="repaired")
        _metric_names.MAINTENANCE_OUTCOMES.inc(batch.entries_noop, kind="noop")
        _metric_names.MAINTENANCE_OUTCOMES.inc(batch.entries_evicted, kind="evicted")
        _metric_names.MAINTENANCE_OUTCOMES.inc(batch.results_retained, kind="retained")

    def validate_updates(self, updates) -> None:
        """Run :meth:`apply_updates`'s up-front checks without applying.

        Callers that must persist an update *before* applying it (the
        serving tier's write-ahead log) use this to reject malformed events
        first, so nothing unapplyable is ever written to the log.  Raises
        exactly what :meth:`apply_updates` would have raised pre-mutation.
        """
        normalized = [self._normalize_update(update) for update in updates]
        with self._lock:
            self._validate_batch(normalized)

    def _validate_batch(self, normalized: list[tuple[str, object]]) -> None:
        """Reject a batch up front if any update could not be applied.

        Simulates record liveness through the batch: a delete may target an
        id that is active now or one the same batch inserts earlier; a
        repeated or dead target raises :class:`KeyError` before any state
        changed.  Insert rows are checked for shape and finiteness.
        """
        dimensionality = self._store.dimensionality
        virtual_next = self._store.high_water
        born: set[int] = set()
        dead: set[int] = set()
        for op, payload in normalized:
            if op == OP_INSERT:
                try:
                    row = np.asarray(payload, dtype=float).reshape(-1)
                except (TypeError, ValueError) as exc:
                    raise InvalidQueryError(f"insert row is not numeric: {exc}") from exc
                if row.shape[0] != dimensionality:
                    raise InvalidQueryError(
                        f"insert has {row.shape[0]} attributes, dataset holds {dimensionality}"
                    )
                if not np.all(np.isfinite(row)):
                    raise InvalidQueryError("insert contains NaN or infinite values")
                born.add(virtual_next)
                virtual_next += 1
            else:
                try:
                    record_id = int(payload)
                except (TypeError, ValueError) as exc:
                    raise InvalidQueryError(f"delete id is not an integer: {exc}") from exc
                alive = (self._store.is_active(record_id) or record_id in born)
                if not alive or record_id in dead:
                    raise KeyError(f"record {record_id} is not active")
                dead.add(record_id)

    @staticmethod
    def _normalize_update(update) -> tuple[str, object]:
        if isinstance(update, dict):
            op = update.get("op")
            if op == OP_INSERT and "values" in update:
                return OP_INSERT, update["values"]
            if op == OP_DELETE and "id" in update:
                return OP_DELETE, update["id"]
        elif isinstance(update, tuple) and len(update) == 2 and update[0] in (
            OP_INSERT, OP_DELETE
        ):
            return update
        raise InvalidQueryError(
            f"cannot interpret {update!r} as an update; expected "
            "('insert', row) / ('delete', id) or the equivalent mapping"
        )

    # ------------------------------------------------------------- internals
    def _apply_insert(self, raw_row, batch: UpdateStatistics) -> int:
        row = np.asarray(raw_row, dtype=float).reshape(-1)
        transformed = self.scoring.transform(row.reshape(1, -1))[0]
        record_id = self._store.insert(transformed)
        self._values = self._store.matrix
        stored = self._store.row(record_id)
        self._tree.insert(record_id, stored)

        # Repair every cached skyband against the pre-update state first …
        outcomes = {
            key: (entry, repair_insert(entry.skyband, record_id, stored, entry.k))
            for key, entry in self._skybands.scan()
        }

        # … classify cached results while the skyband caches still describe
        # the pre-update dataset (the classification proofs need that state).
        # The verdict depends on the entry only through its (signature, k)
        # key, so utk1/utk2 twins share one donor lookup and dominance pass.
        verdicts: dict = {}

        def survives(key, entry) -> bool:
            if key in verdicts:
                return verdicts[key]
            outcome = outcomes.get(key)
            if outcome is not None:
                verdict = not outcome[1].changed
            else:
                donor = self._find_containing(
                    self._skybands, entry.region, entry.k, allow_larger_k=True
                )
                verdict = donor is not None and int(
                    RDominance(donor.region).dominators_of(stored, donor.skyband.values).sum()
                ) >= entry.k
            verdicts[key] = verdict
            return verdict

        self._sweep_results(survives, batch)
        self._commit_skybands(outcomes, batch)

        # Traditional (region-free) k-skybands: same membership test with
        # traditional dominance; entries the record provably cannot join are
        # kept, the rest evicted.
        def unaffected(key_k, indices) -> bool:
            rows = self._values[np.asarray(indices, dtype=int)]
            return int(dominators_mask(stored, rows).sum()) >= key_k

        batch.entries_evicted += self._traditional_skybands.evict_where(
            lambda key_k, indices: not unaffected(key_k, indices)
        )
        return record_id

    def _apply_delete(self, record_id, batch: UpdateStatistics) -> None:
        record_id = int(record_id)
        row = self._store.delete(record_id)  # raises KeyError when not active
        self._values = self._store.matrix
        self._tree.delete(record_id, row)

        # The O(n) pool snapshot is only needed to re-filter skybands the
        # deleted record was a member of; the common non-member delete
        # never pays for it.
        pool = None
        outcomes = {}
        for key, entry in self._skybands.scan():
            if not entry.skyband.has_member(record_id):
                outcomes[key] = (entry, SkybandRepair(entry.skyband, False, KIND_NOOP))
                continue
            if pool is None:
                pool = self._store.snapshot()
            outcomes[key] = (
                entry,
                repair_delete(
                    entry.skyband, record_id, entry.k, pool_ids=pool[0], pool_rows=pool[1]
                ),
            )

        verdicts: dict = {}

        def survives(key, entry) -> bool:
            if key in verdicts:
                return verdicts[key]
            outcome = outcomes.get(key)
            if outcome is not None:
                verdict = not outcome[1].changed
            else:
                donor = self._find_containing(
                    self._skybands, entry.region, entry.k, allow_larger_k=True
                )
                # A containing skyband is a superset of the entry's: the
                # deleted record being no member there proves it was no
                # member here.
                verdict = donor is not None and not donor.skyband.has_member(record_id)
            verdicts[key] = verdict
            return verdict

        self._sweep_results(survives, batch)
        self._commit_skybands(outcomes, batch)

        batch.entries_evicted += self._traditional_skybands.evict_where(
            lambda _key_k, indices: bool(np.any(np.asarray(indices, dtype=int) == record_id))
        )

    def _sweep_results(self, survives, batch: UpdateStatistics) -> None:
        """Evict cached results an update may have invalidated; keep the rest."""
        for cache in (self._utk1_cache, self._utk2_cache):
            total = len(cache)
            evicted = cache.evict_where(lambda key, entry: not survives(key, entry))
            batch.entries_evicted += evicted
            batch.results_retained += total - evicted

    def _commit_skybands(self, outcomes: dict, batch: UpdateStatistics) -> None:
        """Swap repaired skybands into the cache and tally the outcome kinds.

        The swap is in place (:meth:`LRUCache.replace`): maintenance must
        not record phantom cache hits or promote repaired entries over
        genuinely recently-queried ones in the recency order.
        """
        for key, (entry, outcome) in outcomes.items():
            if outcome.changed:
                self._skybands.replace(
                    key, _SkybandEntry(entry.region, entry.k, outcome.skyband)
                )
                batch.entries_repaired += 1
            else:
                batch.entries_noop += 1

    # ------------------------------------------------------------------ stats
    def statistics(self) -> dict:
        """Engine counters plus per-cache and update-maintenance statistics."""
        merged = super().statistics()
        merged["dynamic"] = self.update_stats.as_dict()
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicUTKEngine(active={len(self._store)}, "
            f"high_water={self._store.high_water}, "
            f"updates={self.update_stats.updates_applied}, "
            f"queries={self.stats.queries})"
        )


def serve_events(engine: DynamicUTKEngine, events) -> list[dict]:
    """Process an interleaved update/query event stream; returns per-event reports.

    Each event is a mapping: ``{"op": "insert", "values": [...]}`` /
    ``{"op": "delete", "id": ...}`` or ``{"op": "query", "lower": [...],
    "upper": [...], "k": ..., "version": "utk1"|"utk2"|"both"}`` (the exact
    shape the ``repro stream`` CLI reads from JSONL and
    :func:`repro.datasets.synthetic.update_stream` generates).  Query events
    may alternatively carry a prebuilt ``"region"``.
    """
    from repro.core.region import hyperrectangle

    # Streams revisit hot regions; constructing a Region runs a Chebyshev
    # LP, so identical corner pairs are interned instead of rebuilt.
    region_memo: dict[tuple, Region] = {}

    def corners_region(lower, upper) -> Region:
        key = (tuple(float(v) for v in lower), tuple(float(v) for v in upper))
        cached = region_memo.get(key)
        if cached is None:
            cached = region_memo[key] = hyperrectangle(lower, upper)
        return cached

    reports: list[dict] = []
    for number, event in enumerate(events):
        op = event.get("op") if isinstance(event, dict) else None
        if op in (OP_INSERT, OP_DELETE):
            outcome = engine.apply_updates([event])
            record = {"event": number, "op": op,
                      "entries_repaired": outcome["entries_repaired"],
                      "entries_evicted": outcome["entries_evicted"]}
            if op == OP_INSERT:
                record["id"] = outcome["inserted_ids"][0]
            else:
                record["id"] = int(event["id"])
            reports.append(record)
            continue
        if op != "query":
            raise InvalidQueryError(f"event {number}: unknown op {op!r}")
        region = event.get("region")
        if region is None:
            region = corners_region(event["lower"], event["upper"])
        elif not isinstance(region, Region):
            raise InvalidQueryError(f"event {number}: region must be a Region")
        k = int(event["k"])
        version = event.get("version", "utk1")
        if version not in ("utk1", "utk2", "both"):
            raise InvalidQueryError(f"event {number}: unknown version {version!r}")
        record = {"event": number, "op": "query", "k": k, "version": version, "sources": {}}
        first: UTK1Result | None = None
        second: UTK2Result | None = None
        if version in ("utk2", "both"):
            second, record["sources"]["utk2"] = engine.serve_utk2(region, k)
        if version in ("utk1", "both"):
            first, record["sources"]["utk1"] = engine.serve_utk1(region, k)
        if first is not None:
            record["utk1"] = {"records": first.indices}
        if second is not None:
            record["utk2"] = {
                "partitions": len(second),
                "distinct_top_k_sets": sorted(sorted(s) for s in second.distinct_top_k_sets),
            }
        reports.append(record)
    return reports
