"""Mutable record storage with stable identifiers.

The static stack identifies a record by its row position in an immutable
``(n, d)`` matrix.  Under insertions and deletions positions shift, so the
dynamic subsystem stores records in a :class:`RecordStore`: an
amortized-growth buffer in which every record keeps the id it was assigned at
insertion for its whole lifetime.  Deletion tombstones the row (ids are never
reused), so cached answers, r-skyband graphs and R-tree entries all keep
referring to stable ids across any update sequence.

The store deliberately exposes the raw buffer prefix (:attr:`matrix`): the
serving engine hands it to the algorithm layer, whose index-driven filtering
only ever reads rows that are reachable through the R-tree — tombstoned rows
are physically present but unreachable.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidDatasetError


class RecordStore:
    """A growable ``(n, d)`` record buffer with stable ids and tombstones.

    Parameters
    ----------
    values:
        Initial ``(n, d)`` matrix; record ``i`` of it receives id ``i``.
    capacity:
        Optional initial buffer capacity (grows geometrically when exceeded).

    **Storage-backend hook contract.**  Every storage backend —
    :class:`~repro.serve.shm.SharedRecordStore` over shared memory,
    :class:`~repro.colstore.store.ColumnarRecordStore` over memory-mapped
    column files — is this class plus exactly two overridden hooks:

    * :meth:`_allocate` produces the backing arrays for one capacity
      generation;
    * :meth:`_discard` releases the generation a grow retired.

    All id assignment, tombstoning, bounds/validity checks and the geometric
    growth schedule stay in this base class, so backends cannot diverge on
    semantics — only on where the bytes live.
    """

    #: Geometric growth factor: both the initial headroom over ``values`` and
    #: every :meth:`_grow` step multiply capacity by this, so ``n`` inserts
    #: cost O(n) amortized copying for every backend.
    GROWTH_FACTOR = 2

    #: Smallest capacity ever allocated (keeps tiny stores from re-growing
    #: on their first few inserts).
    MIN_CAPACITY = 16

    def __init__(self, values, *, capacity: int | None = None):
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise InvalidDatasetError("record store expects an (n, d) matrix")
        n, d = values.shape
        size = max(capacity or 0, self._next_capacity(n))
        self._buffer, self._active = self._allocate(size, d)
        self._buffer[:n] = values
        self._active[:n] = True
        self._count = n
        self._n_active = n

    @classmethod
    def _next_capacity(cls, occupied: int) -> int:
        """The geometric over-allocation target for ``occupied`` records."""
        return max(occupied * cls.GROWTH_FACTOR, cls.MIN_CAPACITY)

    def _allocate(self, size: int, d: int) -> tuple[np.ndarray, np.ndarray]:
        """Allocate one capacity generation: zeroed backing arrays.

        Contract (every storage backend implements exactly this):

        * return a ``(size, d)`` float64 value array and a ``(size,)`` bool
          liveness array, both **zero-filled** and indexable/assignable with
          ordinary numpy semantics (views over shared memory, transposed
          views over memory-mapped column files, ... are all fine);
        * the arrays must stay valid until passed to :meth:`_discard` — the
          base class never re-allocates behind the backend's back;
        * called once from ``__init__`` and once per :meth:`_grow`, so a
          backend that needs per-generation resources (segment names,
          on-disk files) should create them here keyed by generation.
        """
        return np.zeros((size, d), dtype=float), np.zeros(size, dtype=bool)

    def _discard(self, buffer: np.ndarray, active: np.ndarray) -> None:
        """Release the capacity generation a :meth:`_grow` just replaced.

        Contract: ``buffer``/``active`` are exactly the arrays a prior
        :meth:`_allocate` returned, already copied into the new generation.
        Backends unlink the backing resource here (shm segment, mmap file);
        per POSIX semantics existing mappings stay readable in processes
        that attached the retired generation, while *new* attachments fail
        and trigger the stale-descriptor retry protocol.  The in-memory
        backend lets the garbage collector do the work.
        """

    # ------------------------------------------------------------------ views
    @property
    def dimensionality(self) -> int:
        """Number of attributes ``d``."""
        return self._buffer.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The buffer prefix holding every id ever assigned (incl. tombstones)."""
        return self._buffer[: self._count]

    @property
    def high_water(self) -> int:
        """One past the largest id ever assigned."""
        return self._count

    def __len__(self) -> int:
        """Number of *active* (not deleted) records."""
        return self._n_active

    def is_active(self, record_id: int) -> bool:
        """Whether ``record_id`` exists and has not been deleted."""
        record_id = int(record_id)
        return 0 <= record_id < self._count and bool(self._active[record_id])

    def row(self, record_id: int) -> np.ndarray:
        """Attribute row of an active record (copy)."""
        if not self.is_active(record_id):
            raise KeyError(f"record {record_id} is not active")
        return self._buffer[int(record_id)].copy()

    def column(self, axis: int) -> np.ndarray:
        """One attribute column over the id prefix (zero-copy view).

        Columnar backends override this with a contiguous on-disk view; here
        it is a strided view into the row-major buffer.
        """
        if not 0 <= axis < self.dimensionality:
            raise IndexError(f"column {axis} out of range for d={self.dimensionality}")
        return self._buffer[: self._count, axis]

    def active_mask(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Liveness flags for ids ``[start, stop)`` (read-only intent, view).

        Lets chunked consumers (the streaming bulk loader, ``repro inspect``)
        scan liveness without materializing :meth:`active_ids` at once.
        """
        stop = self._count if stop is None else min(int(stop), self._count)
        return self._active[start:stop]

    def active_ids(self) -> np.ndarray:
        """Ids of all active records, ascending."""
        return np.flatnonzero(self._active[: self._count])

    def active_values(self) -> np.ndarray:
        """Rows of all active records, in :meth:`active_ids` order (copy)."""
        return self._buffer[self.active_ids()].copy()

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, values)`` of the active records — the rebuild reference.

        A static engine built from ``values`` answers in row positions;
        ``ids[position]`` maps those back into this store's stable id space.
        """
        ids = self.active_ids()
        return ids, self._buffer[ids].copy()

    # ---------------------------------------------------------------- updates
    def insert(self, row) -> int:
        """Append a record and return its freshly assigned id."""
        row = np.asarray(row, dtype=float).reshape(-1)
        if row.shape[0] != self.dimensionality:
            raise InvalidDatasetError(
                f"record has {row.shape[0]} attributes, store holds {self.dimensionality}"
            )
        if not np.all(np.isfinite(row)):
            raise InvalidDatasetError("record contains NaN or infinite values")
        if self._count == self._buffer.shape[0]:
            self._grow()
        record_id = self._count
        self._buffer[record_id] = row
        self._active[record_id] = True
        self._count += 1
        self._n_active += 1
        return record_id

    def extend(self, rows) -> np.ndarray:
        """Append a chunk of records at once; returns their assigned ids.

        Semantically ``[insert(row) for row in rows]``, but one bounds check
        and one buffer write per chunk — the bulk-ingestion path for
        streaming builders that feed millions of rows.
        """
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2 or rows.shape[1] != self.dimensionality:
            raise InvalidDatasetError(
                f"extend expects an (m, {self.dimensionality}) matrix"
            )
        if not np.all(np.isfinite(rows)):
            raise InvalidDatasetError("records contain NaN or infinite values")
        m = rows.shape[0]
        while self._count + m > self._buffer.shape[0]:
            self._grow()
        ids = np.arange(self._count, self._count + m)
        self._buffer[self._count:self._count + m] = rows
        self._active[self._count:self._count + m] = True
        self._count += m
        self._n_active += m
        return ids

    def delete(self, record_id: int) -> np.ndarray:
        """Tombstone a record; returns its row (the id is never reused)."""
        if not self.is_active(record_id):
            raise KeyError(f"record {record_id} is not active")
        record_id = int(record_id)
        self._active[record_id] = False
        self._n_active -= 1
        return self._buffer[record_id].copy()

    def _grow(self) -> None:
        size, d = self._buffer.shape
        buffer, active = self._allocate(self._next_capacity(size), d)
        buffer[:size] = self._buffer
        active[:size] = self._active
        old_buffer, old_active = self._buffer, self._active
        self._buffer = buffer
        self._active = active
        self._discard(old_buffer, old_active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RecordStore(active={self._n_active}, high_water={self._count}, "
                f"d={self.dimensionality})")
