"""Mutable record storage with stable identifiers.

The static stack identifies a record by its row position in an immutable
``(n, d)`` matrix.  Under insertions and deletions positions shift, so the
dynamic subsystem stores records in a :class:`RecordStore`: an
amortized-growth buffer in which every record keeps the id it was assigned at
insertion for its whole lifetime.  Deletion tombstones the row (ids are never
reused), so cached answers, r-skyband graphs and R-tree entries all keep
referring to stable ids across any update sequence.

The store deliberately exposes the raw buffer prefix (:attr:`matrix`): the
serving engine hands it to the algorithm layer, whose index-driven filtering
only ever reads rows that are reachable through the R-tree — tombstoned rows
are physically present but unreachable.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidDatasetError


class RecordStore:
    """A growable ``(n, d)`` record buffer with stable ids and tombstones.

    Parameters
    ----------
    values:
        Initial ``(n, d)`` matrix; record ``i`` of it receives id ``i``.
    capacity:
        Optional initial buffer capacity (grows by doubling when exceeded).
    """

    def __init__(self, values, *, capacity: int | None = None):
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise InvalidDatasetError("record store expects an (n, d) matrix")
        n, d = values.shape
        size = max(capacity or 0, 2 * n, 16)
        self._buffer, self._active = self._allocate(size, d)
        self._buffer[:n] = values
        self._active[:n] = True
        self._count = n
        self._n_active = n

    def _allocate(self, size: int, d: int) -> tuple[np.ndarray, np.ndarray]:
        """Allocate zeroed ``(size, d)`` value and ``(size,)`` liveness arrays.

        Subclasses back these with other storage (the serve tier returns
        views over ``multiprocessing.shared_memory`` segments).
        """
        return np.zeros((size, d), dtype=float), np.zeros(size, dtype=bool)

    def _discard(self, buffer: np.ndarray, active: np.ndarray) -> None:
        """Release arrays replaced by :meth:`_grow` (hook for shared stores)."""

    # ------------------------------------------------------------------ views
    @property
    def dimensionality(self) -> int:
        """Number of attributes ``d``."""
        return self._buffer.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The buffer prefix holding every id ever assigned (incl. tombstones)."""
        return self._buffer[: self._count]

    @property
    def high_water(self) -> int:
        """One past the largest id ever assigned."""
        return self._count

    def __len__(self) -> int:
        """Number of *active* (not deleted) records."""
        return self._n_active

    def is_active(self, record_id: int) -> bool:
        """Whether ``record_id`` exists and has not been deleted."""
        record_id = int(record_id)
        return 0 <= record_id < self._count and bool(self._active[record_id])

    def row(self, record_id: int) -> np.ndarray:
        """Attribute row of an active record (copy)."""
        if not self.is_active(record_id):
            raise KeyError(f"record {record_id} is not active")
        return self._buffer[int(record_id)].copy()

    def active_ids(self) -> np.ndarray:
        """Ids of all active records, ascending."""
        return np.flatnonzero(self._active[: self._count])

    def active_values(self) -> np.ndarray:
        """Rows of all active records, in :meth:`active_ids` order (copy)."""
        return self._buffer[self.active_ids()].copy()

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, values)`` of the active records — the rebuild reference.

        A static engine built from ``values`` answers in row positions;
        ``ids[position]`` maps those back into this store's stable id space.
        """
        ids = self.active_ids()
        return ids, self._buffer[ids].copy()

    # ---------------------------------------------------------------- updates
    def insert(self, row) -> int:
        """Append a record and return its freshly assigned id."""
        row = np.asarray(row, dtype=float).reshape(-1)
        if row.shape[0] != self.dimensionality:
            raise InvalidDatasetError(
                f"record has {row.shape[0]} attributes, store holds {self.dimensionality}"
            )
        if not np.all(np.isfinite(row)):
            raise InvalidDatasetError("record contains NaN or infinite values")
        if self._count == self._buffer.shape[0]:
            self._grow()
        record_id = self._count
        self._buffer[record_id] = row
        self._active[record_id] = True
        self._count += 1
        self._n_active += 1
        return record_id

    def delete(self, record_id: int) -> np.ndarray:
        """Tombstone a record; returns its row (the id is never reused)."""
        if not self.is_active(record_id):
            raise KeyError(f"record {record_id} is not active")
        record_id = int(record_id)
        self._active[record_id] = False
        self._n_active -= 1
        return self._buffer[record_id].copy()

    def _grow(self) -> None:
        size, d = self._buffer.shape
        buffer, active = self._allocate(2 * size, d)
        buffer[:size] = self._buffer
        active[:size] = self._active
        old_buffer, old_active = self._buffer, self._active
        self._buffer = buffer
        self._active = active
        self._discard(old_buffer, old_active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RecordStore(active={self._n_active}, high_water={self._count}, "
                f"d={self.dimensionality})")
