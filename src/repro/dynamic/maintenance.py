"""Incremental r-skyband maintenance under record insertion and deletion.

The r-skyband of a region ``R`` (records r-dominated by fewer than ``k``
others) is the expensive filtering product the serving engine caches.  This
module repairs a cached :class:`~repro.core.rskyband.RSkyband` for a single
dataset update instead of recomputing it, using two standard properties of
(transitive) r-dominance:

* **Membership is decidable inside the skyband** — a record has ``>= k``
  r-dominators in the dataset iff it has ``>= k`` r-dominators among the
  skyband members (every dominator chain ends in members), so an inserted
  record can be classified against the cached members alone.
* **A deleted record's influence is bounded by its descendants** — removing
  ``q`` can only lower the dominator counts of records ``q`` r-dominated, so
  the post-delete skyband is contained in ``(members - q) ∪ descendants(q)``
  and one scoped re-filter over that small candidate set is exact.

Three outcomes exist:

* ``"noop"`` — provably unaffected (inserted record r-dominated by ``>= k``
  members; deleted record not a member).  The cached object is returned
  unchanged, so callers can also keep any *result* derived from it.
* ``"patched"`` — an inserted record joins: its graph row/column is computed
  against the members (``O(m)`` r-dominance tests) and spliced into the
  cached adjacency; members it pushes to ``k`` dominators are evicted.
* ``"refiltered"`` — a deleted member: the scoped candidate set is re-run
  through :func:`~repro.core.rskyband.skyband_from_candidates`.

Every repair is exact: the repaired skyband equals (same members, rows,
r-dominance graph) a from-scratch recomputation over the updated dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.dominance import DOMINANCE_TOL, RDominance
from repro.core.rskyband import RSkyband, skyband_from_candidates

#: Repair outcome kinds, in increasing order of work performed.
KIND_NOOP = "noop"
KIND_PATCHED = "patched"
KIND_REFILTERED = "refiltered"


@dataclass(frozen=True)
class SkybandRepair:
    """Outcome of one incremental repair.

    ``skyband`` is the repaired object (the original instance when
    ``changed`` is false); ``kind`` records which path produced it.
    """

    skyband: RSkyband
    changed: bool
    kind: str


def repair_insert(
    skyband: RSkyband, record_id: int, row, k: int, *, tol: float = DOMINANCE_TOL
) -> SkybandRepair:
    """Repair a cached skyband for the insertion of record ``record_id``.

    ``row`` is the inserted record's attribute row in the same (transformed)
    space as ``skyband.values``; ``record_id`` must be a fresh id not already
    present.  Returns a no-op when the record is r-dominated by at least
    ``k`` members; otherwise splices it into the member set and graph and
    evicts members whose dominator count it pushes to ``k``.
    """
    record_id = int(record_id)
    row = np.asarray(row, dtype=float).reshape(-1)
    tester = RDominance(skyband.region, tol)
    if skyband.size:
        dominators = tester.dominators_of(row, skyband.values)
        if int(dominators.sum()) >= k:
            return SkybandRepair(skyband=skyband, changed=False, kind=KIND_NOOP)
        dominated = tester.dominated_by(row, skyband.values)
    else:
        dominators = np.zeros(0, dtype=bool)
        dominated = np.zeros(0, dtype=bool)

    # Members' dataset-wide dominator counts are their ancestor-set sizes;
    # the insertion adds one to every member the new record r-dominates.
    counts = np.fromiter(
        (len(skyband.ancestors[int(i)]) for i in skyband.indices), dtype=int, count=skyband.size
    )
    keep = (counts + dominated.astype(int)) < k
    survivors = np.flatnonzero(keep)

    old_indices = skyband.indices[survivors]
    position = int(np.searchsorted(old_indices, record_id))
    indices = np.insert(old_indices, position, record_id)
    values = np.insert(skyband.values[survivors], position, row, axis=0)

    # Splice the new record's graph row/column into the surviving adjacency.
    # Its dominators all survive (an evicted member is one the new record
    # r-dominates, which excludes dominating it back).
    count = survivors.size + 1
    adjacency = np.zeros((count, count), dtype=bool)
    others = np.delete(np.arange(count), position)
    adjacency[np.ix_(others, others)] = skyband.adjacency[np.ix_(survivors, survivors)]
    adjacency[others, position] = dominators[survivors]
    adjacency[position, others] = dominated[survivors]

    # Splice the ancestor/descendant dicts the same way — O(m) set updates
    # instead of rebuilding the whole graph.  No survivor has an evicted
    # member as ancestor (it would have been evicted too), so only the
    # *descendant* sets need the evicted ids removed.
    evicted = frozenset(int(i) for i in skyband.indices[~keep])
    ancestors = {}
    descendants = {}
    for local in survivors:
        member = int(skyband.indices[local])
        member_ancestors = skyband.ancestors[member]
        if dominated[local]:
            member_ancestors |= {record_id}
        ancestors[member] = member_ancestors
        member_descendants = skyband.descendants[member] - evicted
        if dominators[local]:
            member_descendants |= {record_id}
        descendants[member] = member_descendants
    ancestors[record_id] = frozenset(
        int(skyband.indices[i]) for i in np.flatnonzero(dominators)
    )
    descendants[record_id] = frozenset(
        int(skyband.indices[i]) for i in np.flatnonzero(dominated) if keep[i]
    )
    stats = replace(skyband.stats, candidate_count=int(indices.shape[0]))
    repaired = RSkyband(
        indices=indices,
        values=values,
        ancestors=ancestors,
        descendants=descendants,
        region=skyband.region,
        stats=stats,
        adjacency=adjacency,
    )
    return SkybandRepair(skyband=repaired, changed=True, kind=KIND_PATCHED)


def repair_delete(
    skyband: RSkyband,
    record_id: int,
    k: int,
    *,
    pool_ids,
    pool_rows,
    tol: float = DOMINANCE_TOL,
) -> SkybandRepair:
    """Repair a cached skyband for the deletion of record ``record_id``.

    ``pool_ids``/``pool_rows`` describe the records that remain in the
    dataset *after* the deletion (ids aligned with rows, in the transformed
    space).  A deleted non-member is a no-op; a deleted member triggers a
    scoped re-filter over the surviving members plus the pool records the
    deleted member r-dominated — the only records whose dominator count the
    deletion lowered, hence an exact candidate superset.
    """
    record_id = int(record_id)
    if not skyband.has_member(record_id):
        return SkybandRepair(skyband=skyband, changed=False, kind=KIND_NOOP)
    pool_ids = np.asarray(pool_ids, dtype=int)
    pool_rows = np.asarray(pool_rows, dtype=float)
    if pool_rows.size == 0:
        pool_rows = pool_rows.reshape(0, skyband.values.shape[1])

    row = skyband.row_of(record_id)
    keep = skyband.indices != record_id
    member_idx = skyband.indices[keep]
    member_rows = skyband.values[keep]

    tester = RDominance(skyband.region, tol)
    if pool_rows.shape[0]:
        dominated = tester.dominated_by(row, pool_rows)
    else:
        dominated = np.zeros(0, dtype=bool)
    member_set = {int(i) for i in member_idx}
    extra = [p for p in np.flatnonzero(dominated) if int(pool_ids[p]) not in member_set]

    candidate_idx = np.concatenate([member_idx, pool_ids[extra]])
    candidate_rows = np.vstack([member_rows, pool_rows[extra]])
    repaired = skyband_from_candidates(candidate_idx, candidate_rows, skyband.region, k, tol=tol)
    return SkybandRepair(skyband=repaired, changed=True, kind=KIND_REFILTERED)
