"""JAA — the Joint Arrangement Algorithm for UTK2 (Section 5 of the paper).

JAA shares RSA's filtering step (r-skyband + r-dominance graph) but its
refinement builds one *common global arrangement*: a partitioning of the
query region in which every partition ends up associated with its exact
top-k set.

The recursion works on an *anchor* record per partition.  A verification-like
process partitions the cell with the half-spaces of the anchor's strongest
competitors and classifies each resulting piece:

* **equal-to** — exactly ``k`` records provably score above-or-at the anchor's
  level; the piece is finalized with that top-k set;
* **less-than** — the anchor is in the top-k with room to spare; the known
  prefix is extended and a new (lower-ranked) anchor continues the recursion;
* **greater-than** — at least ``k`` records beat the anchor; the anchor and
  its descendants are excluded and a new anchor is chosen;
* otherwise the same anchor recurses with the already-inserted competitors
  accumulated.

Bookkeeping sets carried through the recursion:

``prefix``
    The exact top-``|prefix|`` set everywhere in the current cell.
``pending``
    Records proven to score above the current anchor throughout the cell
    (anchor ancestors plus covering competitors accumulated so far).
``excluded``
    Records proven to be outside the top-k everywhere in the cell
    (discarded anchors and their descendants).
``skip``
    Competitors already handled for the *current* anchor (reset whenever the
    anchor changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.arrangement import Arrangement
from repro.core.cell import Cell
from repro.core.halfspace import halfspaces_against
from repro.core.preference import scores as _scores_at
from repro.core.region import Region
from repro.core.result import UTK2Result, UTKPartition
from repro.core.rskyband import RSkyband, compute_r_skyband
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree
from repro.obs.geometry import COUNTERS, publish_delta
from repro.obs.names import observe_phase as _observe_phase
from repro.obs.trace import span


@dataclass
class JAAStatistics:
    """Counters describing the work performed by one JAA run."""

    candidates: int = 0
    partition_calls: int = 0
    arrangements_built: int = 0
    halfspaces_inserted: int = 0
    finalized_partitions: int = 0
    anchor_changes: int = 0
    lp_calls: int = 0
    vertex_clip_calls: int = 0
    enumeration_calls: int = 0
    fallback_calls: int = 0
    filtering_stats: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view used by the result container and the harness."""
        return {
            "candidates": self.candidates,
            "partition_calls": self.partition_calls,
            "arrangements_built": self.arrangements_built,
            "halfspaces_inserted": self.halfspaces_inserted,
            "finalized_partitions": self.finalized_partitions,
            "anchor_changes": self.anchor_changes,
            "lp_calls": self.lp_calls,
            "vertex_clip_calls": self.vertex_clip_calls,
            "enumeration_calls": self.enumeration_calls,
            "fallback_calls": self.fallback_calls,
            **{f"filter_{key}": value for key, value in self.filtering_stats.items()},
        }


class JAA:
    """Joint Arrangement Algorithm for the UTK2 problem.

    Parameters mirror :class:`repro.core.rsa.RSA`; ``skyband`` allows reusing
    a pre-computed r-skyband (e.g. when answering both UTK versions for the
    same query).
    """

    def __init__(
        self,
        values,
        region: Region,
        k: int,
        *,
        tree: RTree | None = None,
        skyband: RSkyband | None = None,
        use_lemma1: bool = True,
    ):
        self.values = np.asarray(values, dtype=float)
        if self.values.ndim != 2:
            raise InvalidQueryError("values must be an (n, d) matrix")
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        if region.dimension != self.values.shape[1] - 1:
            raise InvalidQueryError(
                f"region dimension {region.dimension} does not match "
                f"{self.values.shape[1]}-dimensional data"
            )
        self.region = region
        self.k = int(k)
        self.tree = tree
        self.use_lemma1 = use_lemma1
        self._skyband = skyband
        self.stats = JAAStatistics()

    # ------------------------------------------------------------------ public
    def _capture_geometry(self, snapshot: tuple[int, int, int, int]) -> None:
        """Record the run's geometry-telemetry deltas into the statistics."""
        delta = COUNTERS.since(snapshot)
        self.stats.lp_calls = delta["lp_calls"]
        self.stats.vertex_clip_calls = delta["vertex_clip_calls"]
        self.stats.enumeration_calls = delta["enumeration_calls"]
        self.stats.fallback_calls = delta["fallback_calls"]
        publish_delta(delta)

    def run(self) -> UTK2Result:
        """Execute the query and return the UTK2 partitioning."""
        with span("jaa.run", k=self.k) as run_span:
            result = self._run(run_span)
        return result

    def _run(self, run_span) -> UTK2Result:
        geometry_snapshot = COUNTERS.snapshot()
        skyband = self._skyband
        if skyband is None:
            with span("jaa.skyband") as phase:
                skyband = compute_r_skyband(self.values, self.region, self.k, tree=self.tree)
            _observe_phase("jaa.skyband", phase)
        self._sky = skyband
        run_span.set(candidates=skyband.size)
        self.stats.candidates = skyband.size
        self.stats.filtering_stats = {
            "bbs_nodes_visited": skyband.stats.nodes_visited,
            "bbs_records_visited": skyband.stats.records_visited,
            "skyband_size": skyband.size,
        }
        members = skyband.members()
        self._partitions: list[UTKPartition] = []
        root_cell = Cell(self.region)
        if not members:
            self._capture_geometry(geometry_snapshot)
            return UTK2Result(
                partitions=[], region=self.region, k=self.k, stats=self.stats.as_dict()
            )
        if len(members) <= self.k:
            partition = UTKPartition(cell=root_cell, top_k=frozenset(members))
            self._capture_geometry(geometry_snapshot)
            return UTK2Result(
                partitions=[partition], region=self.region, k=self.k, stats=self.stats.as_dict()
            )

        self._members = members
        self._rows = {index: skyband.row_of(index) for index in members}
        self._ancestors = skyband.ancestors
        self._descendants = skyband.descendants

        anchor = self._choose_anchor(root_cell, excluded=frozenset())
        pending = frozenset(self._ancestors[anchor])
        with span("jaa.refine") as phase:
            self._partition(
                anchor,
                root_cell,
                prefix=frozenset(),
                pending=pending,
                excluded=frozenset(),
                skip=frozenset(),
            )
        _observe_phase("jaa.refine", phase)
        self.stats.finalized_partitions = len(self._partitions)
        self._capture_geometry(geometry_snapshot)
        return UTK2Result(
            partitions=list(self._partitions),
            region=self.region,
            k=self.k,
            stats=self.stats.as_dict(),
        )

    # --------------------------------------------------------------- internals
    def _choose_anchor(self, cell: Cell, excluded: frozenset[int],
                       forbidden: frozenset[int] = frozenset()) -> int:
        """The k-th scoring non-excluded candidate at a representative vector.

        The representative vector is the cell's interior point (the region's
        pivot for the initial call), per the anchor-choosing strategy of
        Section 5.1: the chosen anchor is guaranteed to belong to the top-k
        set for at least one vector of the cell, and to be its lowest-scoring
        member there.  ``forbidden`` records (the known top prefix) are never
        returned; in the generic case the k-th ranked record is already
        outside the prefix, and the guard only matters under exact score
        ties.
        """
        probe = cell.interior_point
        eligible = [index for index in self._members if index not in excluded]
        rows = self._sky.subset_values(eligible)
        ordered = np.lexsort((np.arange(rows.shape[0]), -_scores_at(rows, probe)))
        for position in ordered[self.k - 1:]:
            candidate = eligible[int(position)]
            if candidate not in forbidden:
                return candidate
        # Fall back to the best-ranked non-forbidden candidate; only reachable
        # on pathologically tied inputs.
        for position in ordered:
            candidate = eligible[int(position)]
            if candidate not in forbidden:
                return candidate
        raise InvalidQueryError("no eligible anchor candidate remains")

    def _partition(
        self,
        anchor: int,
        cell: Cell,
        prefix: frozenset[int],
        pending: frozenset[int],
        excluded: frozenset[int],
        skip: frozenset[int],
    ) -> None:
        """Verification-like recursion on ``anchor`` inside ``cell`` (Algorithm 4)."""
        self.stats.partition_calls += 1
        known_above = len(prefix) + len(pending)

        competitors = [index for index in self._members
                       if index not in prefix and index not in pending
                       and index not in excluded and index not in skip
                       and index != anchor
                       and index not in self._descendants[anchor]]

        arrangement = Arrangement(cell)
        self.stats.arrangements_built += 1
        chosen: list[int] = []
        if competitors:
            # Restricted r-dominance counts come from one adjacency-submatrix
            # column sum; the chosen competitors' half-spaces from one kernel
            # broadcast.
            counts = self._sky.restricted_counts(competitors)
            minimum = counts.min()
            chosen = [c for c, count in zip(competitors, counts) if count == minimum]
            with span("jaa.halfspace_build", competitors=len(chosen)):
                halfspaces = halfspaces_against(
                    self._rows[anchor], self._sky.subset_values(chosen), chosen
                )
            with span("jaa.arrangement", halfspaces=len(halfspaces)):
                for halfspace in halfspaces:
                    arrangement.insert(halfspace)
                    self.stats.halfspaces_inserted += 1
        remaining = [c for c in competitors if c not in set(chosen)]
        chosen_set = set(chosen)

        for leaf in arrangement.partitions():
            covering = frozenset(leaf.covering)
            above_count = known_above + len(covering)
            if above_count >= self.k:
                self._handle_greater_than(anchor, leaf.cell, prefix, excluded)
                continue
            if self.use_lemma1:
                disregarded = {c for c in remaining if self._ancestors[c] & (chosen_set - covering)}
            else:
                disregarded = set()
            confirmed = len(disregarded) == len(remaining)
            if confirmed:
                if above_count + 1 == self.k:
                    top_k = prefix | pending | {anchor} | covering
                    self._finalize(leaf.cell, top_k)
                else:
                    self._handle_less_than(anchor, leaf.cell, prefix, pending, covering, excluded)
            else:
                new_pending = pending | covering
                new_skip = skip | chosen_set | disregarded
                self._partition(
                    anchor, leaf.cell, prefix, new_pending, excluded, frozenset(new_skip)
                )

    def _handle_less_than(
        self,
        anchor: int,
        cell: Cell,
        prefix: frozenset[int],
        pending: frozenset[int],
        covering: frozenset[int],
        excluded: frozenset[int],
    ) -> None:
        """A confirmed partition where the anchor ranks strictly above k."""
        new_prefix = prefix | pending | {anchor} | covering
        new_anchor = self._choose_anchor(cell, excluded, forbidden=new_prefix)
        self.stats.anchor_changes += 1
        new_pending = frozenset(self._ancestors[new_anchor]) - new_prefix - excluded
        self._partition(new_anchor, cell, new_prefix, new_pending, excluded, frozenset())

    def _handle_greater_than(
        self, anchor: int, cell: Cell, prefix: frozenset[int], excluded: frozenset[int]
    ) -> None:
        """A partition where the anchor provably falls outside the top-k."""
        new_excluded = excluded | {anchor} | (frozenset(self._descendants[anchor]) - prefix)
        new_anchor = self._choose_anchor(cell, new_excluded, forbidden=prefix)
        self.stats.anchor_changes += 1
        new_pending = frozenset(self._ancestors[new_anchor]) - prefix - new_excluded
        self._partition(new_anchor, cell, prefix, new_pending, new_excluded, frozenset())

    def _finalize(self, cell: Cell, top_k: frozenset[int]) -> None:
        """Record a finalized equal-to partition of the common global arrangement."""
        self._partitions.append(UTKPartition(cell=cell, top_k=frozenset(top_k)))
