"""Result containers for the two UTK problem versions.

UTK1 returns the minimal set of records that may enter the top-k somewhere in
the query region, together with a *witness* weight vector per record (a point
of the region where the record is provably in the top-k).  UTK2 returns a
partitioning of the region where every partition carries its exact top-k set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cell import Cell
from repro.core.region import Region


@dataclass
class UTK1Result:
    """Output of the UTK1 problem (Section 4).

    Attributes
    ----------
    indices:
        Sorted dataset indices of the records that may appear in a top-k set.
    witnesses:
        For every reported record, a weight vector in the region for which
        the record belongs to the top-k set.
    region, k:
        The query that produced this result.
    stats:
        Free-form counters describing the work performed (candidates,
        verifications, drill hits, ...).
    """

    indices: list[int]
    witnesses: dict[int, np.ndarray]
    region: Region
    k: int
    stats: dict = field(default_factory=dict)

    def __contains__(self, index: int) -> bool:
        return int(index) in set(self.indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __iter__(self):
        return iter(self.indices)

    def witness_of(self, index: int) -> np.ndarray | None:
        """Witness weight vector for a reported record (``None`` if unknown)."""
        return self.witnesses.get(int(index))

    def labels(self, dataset) -> list[str]:
        """Labels of the reported records for a :class:`~repro.core.records.Dataset`."""
        return [dataset.label_of(i) for i in self.indices]


@dataclass
class UTKPartition:
    """One partition of the UTK2 output: a cell and its exact top-k set."""

    cell: Cell
    top_k: frozenset[int]

    @property
    def interior_point(self) -> np.ndarray | None:
        """A representative weight vector strictly inside the partition."""
        return self.cell.interior_point

    def contains(self, weights, tol: float = 1e-9) -> bool:
        """Whether the partition contains the weight vector."""
        return self.cell.contains(weights, tol)


@dataclass
class UTK2Result:
    """Output of the UTK2 problem (Section 5): a partitioning of the region.

    Every weight vector of the region belongs to (at least) one partition;
    vectors on partition boundaries may match several, in which case
    :meth:`top_k_at` returns the first match.
    """

    partitions: list[UTKPartition]
    region: Region
    k: int
    stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self):
        return iter(self.partitions)

    @property
    def distinct_top_k_sets(self) -> set[frozenset[int]]:
        """The distinct top-k sets appearing across all partitions."""
        return {partition.top_k for partition in self.partitions}

    @property
    def result_records(self) -> list[int]:
        """Union of all top-k sets (equals the UTK1 answer), sorted."""
        union: set[int] = set()
        for partition in self.partitions:
            union.update(partition.top_k)
        return sorted(union)

    def top_k_at(self, weights, tol: float = 1e-9) -> frozenset[int] | None:
        """The exact top-k set for a specific weight vector of the region."""
        weights = np.asarray(weights, dtype=float).reshape(-1)
        best = None
        for partition in self.partitions:
            if partition.contains(weights, tol):
                best = partition.top_k
                break
        return best

    def to_utk1(self) -> UTK1Result:
        """Collapse the UTK2 output into the corresponding UTK1 result."""
        witnesses = {}
        for partition in self.partitions:
            point = partition.interior_point
            if point is None:
                continue
            for index in partition.top_k:
                witnesses.setdefault(int(index), point)
        return UTK1Result(
            indices=self.result_records,
            witnesses=witnesses,
            region=self.region,
            k=self.k,
            stats=dict(self.stats),
        )
