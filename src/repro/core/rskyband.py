"""r-skyband computation and the r-dominance graph (Section 4.1).

The r-skyband contains exactly the records that are r-dominated by fewer than
``k`` others; it is a subset of the traditional k-skyband and a superset of
the UTK1 answer, which makes it the filtering step of both RSA and JAA.

Alongside the member set we record every pairwise r-dominance relationship in
the *r-dominance graph* ``G`` (a DAG); RSA and JAA use ancestor/descendant
sets and r-dominance counts throughout their refinement steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dominance import DOMINANCE_TOL, RDominance
from repro.core.preference import scores
from repro.core.region import Region
from repro.index.rtree import RTree
from repro.skyline.bbs import BBSStatistics, bbs_candidates

#: Datasets at most this large skip the R-tree and use the vectorized
#: brute-force path (faster than building the index).
_BRUTE_FORCE_LIMIT = 512


@dataclass
class RSkyband:
    """The r-skyband of a dataset together with its r-dominance graph.

    Attributes
    ----------
    indices:
        Dataset indices of the r-skyband members, sorted ascending.
    values:
        Attribute rows of the members (aligned with ``indices``).
    ancestors:
        ``ancestors[i]`` is the frozenset of dataset indices r-dominating
        member ``i`` (its full ancestor set in ``G``).
    descendants:
        Inverse mapping of ``ancestors``.
    region:
        The query region the skyband was computed for.
    stats:
        BBS traversal statistics (empty for the brute-force path).
    adjacency:
        Boolean ``(m, m)`` matrix over member *positions*:
        ``adjacency[i, j]`` iff member ``i`` r-dominates member ``j``.  The
        dense form of ``G`` that the refinement steps use for vectorized
        restricted-count computations; reconstructed from ``ancestors`` when
        not supplied.
    """

    indices: np.ndarray
    values: np.ndarray
    ancestors: dict[int, frozenset[int]]
    descendants: dict[int, frozenset[int]]
    region: Region
    stats: BBSStatistics = field(default_factory=BBSStatistics)
    adjacency: np.ndarray | None = None

    @property
    def size(self) -> int:
        """Number of r-skyband members."""
        return int(self.indices.shape[0])

    def count_of(self, index: int) -> int:
        """r-dominance count of member ``index`` (number of its ancestors)."""
        return len(self.ancestors[index])

    def row_of(self, index: int) -> np.ndarray:
        """Attribute row of member ``index``."""
        return self.values[self._position[index]]

    def __post_init__(self):
        self._position = {int(idx): pos for pos, idx in enumerate(self.indices)}
        if self.adjacency is None:
            size = int(self.indices.shape[0])
            adjacency = np.zeros((size, size), dtype=bool)
            for column, dataset_index in enumerate(self.indices):
                for ancestor in self.ancestors[int(dataset_index)]:
                    adjacency[self._position[int(ancestor)], column] = True
            self.adjacency = adjacency

    def members(self) -> list[int]:
        """Member indices as a plain list."""
        return [int(i) for i in self.indices]

    def has_member(self, index: int) -> bool:
        """Whether dataset record ``index`` is an r-skyband member."""
        return int(index) in self._position

    def positions_of(self, indices) -> np.ndarray:
        """Row positions (into ``values``/``adjacency``) of member indices."""
        return np.fromiter((self._position[int(i)] for i in indices), dtype=int, count=len(indices))

    def subset_values(self, indices) -> np.ndarray:
        """Attribute rows for a list of member indices (one fancy index)."""
        return self.values[self.positions_of(indices)]

    def restricted_counts(self, indices) -> np.ndarray:
        """r-dominance counts restricted to the given member subset.

        ``result[i]`` is the number of members of ``indices`` that r-dominate
        ``indices[i]`` — the quantity RSA/JAA rank competitors by — computed
        as column sums of an adjacency submatrix instead of per-candidate
        ancestor-set intersections.
        """
        positions = self.positions_of(indices)
        return self.adjacency[np.ix_(positions, positions)].sum(axis=0)


def compute_r_skyband(
    values: np.ndarray,
    region: Region,
    k: int,
    *,
    tree: RTree | None = None,
    tol: float = DOMINANCE_TOL,
) -> RSkyband:
    """Compute the r-skyband of ``values`` for ``region`` and parameter ``k``.

    Small datasets use a fully vectorized quadratic pass; larger datasets (or
    callers that supply an R-tree) run the adapted BBS traversal of the paper
    — max-heap keyed by the score at the region's pivot, r-dominance tests
    against the growing member set — and finalize the candidate superset with
    an exact quadratic pass.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    tester = RDominance(region, tol)
    stats = BBSStatistics()

    if tree is None and n <= _BRUTE_FORCE_LIMIT:
        candidate_idx = np.arange(n, dtype=int)
        candidate_rows = values
    else:
        if tree is None:
            tree = RTree(values)
        pivot = region.pivot

        def key(point: np.ndarray) -> float:
            return float(scores(point.reshape(1, -1), pivot)[0])

        def dominators_of(point: np.ndarray, members: np.ndarray) -> np.ndarray:
            return tester.dominators_of(point, members)

        idx_list, row_list, stats = bbs_candidates(tree, k, key=key, dominators_of=dominators_of)
        if not idx_list:
            empty = np.zeros(0, dtype=int)
            return RSkyband(
                indices=empty,
                values=values[:0],
                ancestors={},
                descendants={},
                region=region,
                stats=stats,
            )
        candidate_idx = np.asarray(idx_list, dtype=int)
        candidate_rows = np.vstack(row_list)

    return _finalize_skyband(candidate_idx, candidate_rows, tester, region, k, stats)


def refilter_r_skyband(
    skyband: RSkyband, region: Region, k: int, *, tol: float = DOMINANCE_TOL
) -> RSkyband:
    """Re-filter a cached r-skyband for a contained sub-query.

    When ``region`` is contained in ``skyband.region`` and ``k`` does not
    exceed the ``k`` the skyband was computed for, r-dominance relationships
    only grow as the region shrinks, so the cached member set is a candidate
    superset of the sub-query's r-skyband (the paper's progressiveness
    property).  The exact sub-query skyband is then obtained with a single
    quadratic pass over the (small) cached member set — no index traversal,
    no scan of the full dataset.

    Callers are responsible for the containment check; this function only
    performs the re-filtering.
    """
    return skyband_from_candidates(skyband.indices, skyband.values, region, k, tol=tol)


def skyband_from_candidates(
    candidate_idx: np.ndarray,
    candidate_rows: np.ndarray,
    region: Region,
    k: int,
    *,
    tol: float = DOMINANCE_TOL,
) -> RSkyband:
    """The exact r-skyband of ``region`` from a candidate superset.

    ``candidate_idx``/``candidate_rows`` must contain every r-skyband member
    of ``region`` for parameter ``k`` (for example the members of a skyband
    computed for a containing region, or for a larger ``k``).  One quadratic
    pass over the candidates produces the exact skyband and its r-dominance
    graph.  This is the rebuild entry of the parallel shard workers, which
    ship only the parent skyband slice across the process boundary instead of
    the full dataset.
    """
    candidate_idx = np.asarray(candidate_idx, dtype=int)
    candidate_rows = np.asarray(candidate_rows, dtype=float)
    tester = RDominance(region, tol)
    return _finalize_skyband(candidate_idx, candidate_rows, tester, region, k, BBSStatistics())


def _finalize_skyband(
    candidate_idx: np.ndarray,
    candidate_rows: np.ndarray,
    tester: RDominance,
    region: Region,
    k: int,
    stats: BBSStatistics,
) -> RSkyband:
    """Exact quadratic pass turning a candidate superset into the r-skyband."""
    matrix = tester.dominance_matrix(candidate_rows)
    counts = matrix.sum(axis=0)
    keep = counts < k
    member_positions = np.flatnonzero(keep)
    order = np.argsort(candidate_idx[member_positions])
    member_positions = member_positions[order]
    member_idx = candidate_idx[member_positions]
    member_rows = candidate_rows[member_positions]

    # Restrict the dominance matrix to the final members; every true ancestor
    # of a member is itself a member, so this restriction loses nothing.
    sub = matrix[np.ix_(member_positions, member_positions)]
    ancestors: dict[int, frozenset[int]] = {}
    descendants: dict[int, frozenset[int]] = {}
    for local, dataset_index in enumerate(member_idx):
        anc = frozenset(int(member_idx[i]) for i in np.flatnonzero(sub[:, local]))
        ancestors[int(dataset_index)] = anc
    for local, dataset_index in enumerate(member_idx):
        desc = frozenset(int(member_idx[i]) for i in np.flatnonzero(sub[local, :]))
        descendants[int(dataset_index)] = desc

    stats.candidate_count = int(member_idx.shape[0])
    return RSkyband(
        indices=member_idx,
        values=member_rows,
        ancestors=ancestors,
        descendants=descendants,
        region=region,
        stats=stats,
        adjacency=sub,
    )
