"""Incremental half-space arrangements bounded by a cell.

The refinement steps of RSA and JAA repeatedly build *local* arrangements:
starting from a region (or a partition of a previous arrangement), they
insert the half-spaces of selected competitors one by one, keeping track of
which half-spaces cover each resulting partition.  The arrangement here
follows the implicit binary-tree representation the paper adopts: every
insertion may split existing leaves in two, and each leaf remembers the
*labels* (competitor identities) of the half-spaces covering it.

Arrangements are intentionally small and disposable — one per ``Verify`` /
``Partition`` call — exactly as prescribed in Section 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cell import Cell
from repro.core.halfspace import HalfSpace
from repro.kernels.vertexops import halfspace_side_bounds


@dataclass
class ArrangementLeaf:
    """A leaf partition of the arrangement.

    Attributes
    ----------
    cell:
        Geometry of the partition.
    covering:
        Labels of the inserted half-spaces that fully cover the partition.
    frozen:
        Leaves can be frozen (e.g. once their count reaches ``k`` in the
        baseline's reverse top-k); frozen leaves are no longer split.
    """

    cell: Cell
    covering: set[int] = field(default_factory=set)
    frozen: bool = False

    @property
    def count(self) -> int:
        """Number of half-spaces covering the partition."""
        return len(self.covering)


class Arrangement:
    """An incremental arrangement of half-spaces inside a root cell."""

    def __init__(self, root: Cell):
        self.root = root
        self.leaves: list[ArrangementLeaf] = [ArrangementLeaf(cell=root)]
        self.inserted: list[HalfSpace] = []
        self.split_operations = 0

    @property
    def inserted_labels(self) -> set[int]:
        """Labels of every half-space inserted so far."""
        return {h.label for h in self.inserted}

    def insert(self, halfspace: HalfSpace, *, freeze_at: int | None = None) -> None:
        """Insert a half-space, splitting leaves that straddle it.

        Parameters
        ----------
        halfspace:
            The half-space to insert; its ``label`` is recorded on covered
            leaves.
        freeze_at:
            When given, leaves whose covering count reaches this value are
            frozen: they stop being split by future insertions (they can only
            accumulate covering labels if fully covered).  This implements
            the count-based pruning of the baseline's reverse top-k building
            block.
        """
        self.inserted.append(halfspace)
        bounds = self._leaf_bounds(halfspace)
        new_leaves: list[ArrangementLeaf] = []
        for position, leaf in enumerate(self.leaves):
            if leaf.frozen:
                new_leaves.append(leaf)
                continue
            side = leaf.cell.classify(halfspace, bounds=bounds.get(position))
            if side == "inside":
                leaf.covering.add(halfspace.label)
            elif side == "split":
                self.split_operations += 1
                inside_cell = leaf.cell.restricted(halfspace, True)
                outside_cell = leaf.cell.restricted(halfspace, False)
                inside_leaf = ArrangementLeaf(
                    cell=inside_cell, covering=set(leaf.covering) | {halfspace.label}
                )
                outside_leaf = ArrangementLeaf(cell=outside_cell, covering=set(leaf.covering))
                if freeze_at is not None and inside_leaf.count >= freeze_at:
                    inside_leaf.frozen = True
                new_leaves.append(inside_leaf)
                new_leaves.append(outside_leaf)
                continue
            # "outside": nothing to record.
            if freeze_at is not None and leaf.count >= freeze_at:
                leaf.frozen = True
            new_leaves.append(leaf)
        self.leaves = new_leaves

    def _leaf_bounds(self, halfspace: HalfSpace) -> dict[int, tuple[float, float]]:
        """Per-leaf ``(min, max)`` of ``normal @ u`` over cached vertices.

        All V-represented unfrozen leaves are classified against the inserted
        half-space with one stacked matmul
        (:func:`repro.kernels.vertexops.halfspace_side_bounds`); the bounds
        are handed to :meth:`Cell.classify`, which resolves clear
        inside/outside leaves without touching their vertex arrays again.
        Leaves without a cache are simply absent and classify on their own.
        """
        positions: list[int] = []
        arrays: list[np.ndarray] = []
        for position, leaf in enumerate(self.leaves):
            if leaf.frozen:
                continue
            cache = leaf.cell.vertex_cache()
            if cache is None or cache.is_empty:
                continue
            positions.append(position)
            arrays.append(cache.vertices)
        if len(arrays) < 2:
            # A single cached leaf gains nothing from stacking.
            return {}
        counts = [array.shape[0] for array in arrays]
        starts = np.concatenate([[0], np.cumsum(counts[:-1])])
        mins, maxs = halfspace_side_bounds(np.concatenate(arrays, axis=0), starts,
                                           halfspace.normal)
        return {position: (float(mins[i]), float(maxs[i]))
                for i, position in enumerate(positions)}

    def insert_many(self, halfspaces, *, freeze_at: int | None = None) -> None:
        """Insert a sequence of half-spaces in order."""
        for halfspace in halfspaces:
            self.insert(halfspace, freeze_at=freeze_at)

    # ------------------------------------------------------------------ views
    def partitions(self) -> list[ArrangementLeaf]:
        """All current leaves."""
        return list(self.leaves)

    def partitions_below(self, threshold: int) -> list[ArrangementLeaf]:
        """Leaves covered by fewer than ``threshold`` half-spaces."""
        return [leaf for leaf in self.leaves if leaf.count < threshold]

    def min_count(self) -> int:
        """Smallest covering count over all leaves (0 for an empty arrangement)."""
        if not self.leaves:
            return 0
        return min(leaf.count for leaf in self.leaves)

    def locate(self, point) -> ArrangementLeaf | None:
        """The leaf containing ``point`` (None when outside the root cell)."""
        point = np.asarray(point, dtype=float).reshape(-1)
        best = None
        for leaf in self.leaves:
            if leaf.cell.contains(point, tol=1e-9):
                best = leaf
                break
        return best

    def __len__(self) -> int:
        return len(self.leaves)
