"""Preference-domain algebra.

A top-k query scores record ``x`` with ``S(x) = sum_i w_i * x_i`` where the
weights are positive and sum to one.  Because ranking only depends on the
direction of ``w``, the last weight can be eliminated:
``w_d = 1 - sum_{i<d} w_i``.  The remaining ``d - 1`` coordinates form the
*preference domain* in which all UTK geometry lives.

With reduced weights ``u`` the score becomes an affine function of ``u``::

    S(x; u) = x[d-1] + (x[:d-1] - x[d-1]) . u

This module provides the conversions between full and reduced weight vectors
and vectorized score evaluation, which every other core module builds upon.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.kernels.halfspace import score_decomposition


def preference_dimension(data_dimension: int) -> int:
    """Dimensionality of the preference domain for ``data_dimension``-d data."""
    if data_dimension < 2:
        raise InvalidQueryError("data dimensionality must be at least 2")
    return data_dimension - 1


def reduce_weights(weights) -> np.ndarray:
    """Map a full ``d``-dimensional weight vector to the preference domain.

    The vector is normalized to sum to one first, so callers may pass any
    positive vector describing the intended direction.
    """
    w = np.asarray(weights, dtype=float).reshape(-1)
    if w.shape[0] < 2:
        raise InvalidQueryError("weight vector must have at least two components")
    if np.any(w < 0.0):
        raise InvalidQueryError("weights must be non-negative")
    total = float(w.sum())
    if total <= 0.0:
        raise InvalidQueryError("weight vector must have a positive sum")
    return w[:-1] / total


def expand_weights(reduced) -> np.ndarray:
    """Map a reduced preference-domain vector back to a full weight vector."""
    u = np.asarray(reduced, dtype=float).reshape(-1)
    last = 1.0 - float(u.sum())
    if last < -1e-9 or np.any(u < -1e-9):
        raise InvalidQueryError("reduced weights do not describe a valid point of the simplex")
    return np.concatenate([u, [max(last, 0.0)]])


def score_gradients(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Affine representation of every record's score over reduced weights.

    Returns ``(gradients, offsets)`` with shapes ``(n, d-1)`` and ``(n,)`` such
    that ``S(values[i]; u) = offsets[i] + gradients[i] @ u``.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or values.shape[1] < 2:
        raise InvalidQueryError("values must be an (n, d) matrix with d >= 2")
    return score_decomposition(values)


def scores(values: np.ndarray, reduced_weights) -> np.ndarray:
    """Scores of every record at one or many reduced weight vectors.

    Parameters
    ----------
    values:
        ``(n, d)`` record matrix.
    reduced_weights:
        Either a single ``(d-1,)`` vector or an ``(m, d-1)`` batch.

    Returns
    -------
    ``(n,)`` array for a single weight vector, ``(m, n)`` for a batch.
    """
    gradients, offsets = score_gradients(values)
    u = np.asarray(reduced_weights, dtype=float)
    if u.ndim == 1:
        return offsets + gradients @ u
    return offsets[None, :] + u @ gradients.T


def scores_full(values: np.ndarray, weights) -> np.ndarray:
    """Scores using a full (un-reduced) weight vector; provided for clarity."""
    w = np.asarray(weights, dtype=float).reshape(-1)
    values = np.asarray(values, dtype=float)
    if values.shape[1] != w.shape[0]:
        raise InvalidQueryError(
            f"weight vector has {w.shape[0]} components for {values.shape[1]}-d data"
        )
    return values @ w


def top_k_at(values: np.ndarray, reduced_weights, k: int) -> np.ndarray:
    """Indices of the ``k`` highest-scoring records at ``reduced_weights``.

    Ties are broken by record index, which keeps the function deterministic.
    """
    if k <= 0:
        raise InvalidQueryError("k must be positive")
    s = scores(values, reduced_weights)
    if s.ndim != 1:
        raise InvalidQueryError("top_k_at expects a single weight vector")
    k = min(k, s.shape[0])
    order = np.lexsort((np.arange(s.shape[0]), -s))
    return order[:k]
