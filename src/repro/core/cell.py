"""Arrangement cells (partitions of the query region).

Following the arrangement-indexing discussion of the paper (Section 4.5), a
cell is *defined* by half-spaces: the base region plus a list of signed
half-space constraints.  On top of that H-representation every cell also
carries its exact V-representation — a cached vertex array maintained
incrementally by :mod:`repro.geometry.vertex_clip`: the root's vertices are
seeded from the region (or enumerated once) and each child's are derived from
its parent's by a single clip.  Interior points, full-dimensionality tests
and half-space classification are then dot products over the cached vertices;
the linear-programming route survives only as a fallback for cells whose
cache is unavailable (enumeration out of budget, or a degenerate clip).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.core.halfspace import HalfSpace
from repro.core.region import Region
from repro.geometry.linear_programming import chebyshev_center, maximize, minimize
from repro.obs.geometry import COUNTERS
from repro.obs.trace import span
from repro.geometry.vertex_clip import VertexCache, build_cache, clip

#: A cell whose inscribed-ball radius does not exceed this is treated as
#: lower-dimensional (not a genuine partition).
CELL_INTERIOR_TOL = 1e-7

#: Tolerance for deciding that a half-space fully covers / misses a cell.
CELL_SIDE_TOL = 1e-9

#: Vertex sets thinner than this count as measure-zero (mirrors the LP
#: path's "Chebyshev radius <= 0" emptiness contract for interior points).
CELL_DEGENERATE_TOL = 1e-12

#: Marker for a vertex cache that has not been built yet (``None`` means the
#: build was attempted and is not applicable — the cell stays on the LP path).
_UNSET = object()

#: Module-wide switch for the cached-vertex fast path (see
#: :func:`vertex_cache_disabled`).
_VERTEX_CACHE_ENABLED = True


@contextmanager
def vertex_cache_disabled():
    """Force every :class:`Cell` onto the LP (H-representation) path.

    Used by the A/B property tests and by ``bench_cell_geometry`` to compare
    the incremental vertex path against the LP path it replaced.  The switch
    is module-global and therefore not thread-safe; only flip it from
    single-threaded code.
    """
    global _VERTEX_CACHE_ENABLED
    previous = _VERTEX_CACHE_ENABLED
    _VERTEX_CACHE_ENABLED = False
    try:
        yield
    finally:
        _VERTEX_CACHE_ENABLED = previous


class Cell:
    """A convex cell: the base region intersected with signed half-spaces.

    Parameters
    ----------
    region:
        The base :class:`~repro.core.region.Region` the cell lives in.
    extra_a, extra_b:
        Additional constraint rows ``a @ u <= b`` accumulated by half-space
        insertions (both the covering and the complement side are expressed
        in this canonical "<=" form).
    history:
        Tuple of ``(halfspace, inside)`` pairs describing how the cell was
        carved out of the base region; useful for reporting and debugging.
    """

    __slots__ = ("region", "_extra_a", "_extra_b", "history", "_chebyshev", "_radius",
                 "_children", "_vcache", "_full_dim")

    def __init__(self, region: Region, extra_a: np.ndarray | None = None,
                 extra_b: np.ndarray | None = None,
                 history: tuple = ()):  # type: ignore[assignment]
        self.region = region
        dim = region.dimension
        if extra_a is None:
            extra_a = np.zeros((0, dim), dtype=float)
            extra_b = np.zeros(0, dtype=float)
        self._extra_a = extra_a
        self._extra_b = extra_b
        self.history = history
        self._chebyshev = None
        self._radius = None
        self._children = {}
        self._vcache = _UNSET
        self._full_dim = {}

    # ---------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Pickle the cell without its memoized children.

        The child memo exists to avoid recomputing split geometry during
        arrangement construction; for a finished cell (as shipped back from
        parallel shard workers) it is dead weight that can dwarf the cell
        itself.  The vertex cache *is* shipped, so geometric queries against
        unpickled cells (and shard results) stay on the vertex fast path; an
        unbuilt (or inapplicable) cache travels as ``None`` and is simply
        rebuilt on demand.
        """
        return {
            "region": self.region,
            "extra_a": self._extra_a,
            "extra_b": self._extra_b,
            "history": self.history,
            "chebyshev": self._chebyshev,
            "radius": self._radius,
            "vcache": self._vcache if isinstance(self._vcache, VertexCache) else None,
        }

    def __setstate__(self, state: dict) -> None:
        self.region = state["region"]
        self._extra_a = state["extra_a"]
        self._extra_b = state["extra_b"]
        self.history = state["history"]
        self._chebyshev = state["chebyshev"]
        self._radius = state["radius"]
        self._children = {}
        vcache = state.get("vcache")
        self._vcache = vcache if vcache is not None else _UNSET
        self._full_dim = {}

    # --------------------------------------------------------------- geometry
    @property
    def dimension(self) -> int:
        """Dimensionality of the preference domain."""
        return self.region.dimension

    @property
    def constraints(self) -> tuple[np.ndarray, np.ndarray]:
        """Full H-representation of the cell (region + accumulated rows)."""
        base_a, base_b = self.region.constraints
        if self._extra_a.shape[0] == 0:
            return base_a, base_b
        return np.vstack([base_a, self._extra_a]), np.concatenate([base_b, self._extra_b])

    def vertex_cache(self) -> VertexCache | None:
        """The cell's V-representation, built lazily.

        Root cells seed the build from the region's own vertex set (the same
        vertices :func:`repro.geometry.linear_programming.polytope_vertices`
        maintains across the parallel executor's region bisections); cells
        created with pre-accumulated rows enumerate from the H-representation
        once.  Children created through :meth:`restricted` inherit a clipped
        copy of the parent's cache instead.  ``None`` means the cache is not
        applicable and the cell answers through linear programming.
        """
        if not _VERTEX_CACHE_ENABLED:
            return None
        if self._vcache is _UNSET:
            a, b = self.constraints
            seed = self.region.vertices if self._extra_a.shape[0] == 0 else None
            with span("cell.build_cache", rows=int(a.shape[0]), seeded=seed is not None):
                self._vcache = build_cache(a, b, vertices=seed)
        return self._vcache

    def _ensure_chebyshev(self) -> None:
        if self._radius is None:
            cache = self.vertex_cache()
            if cache is not None and cache.is_empty:
                # An empty vertex set certifies an empty (pointed) polytope.
                self._chebyshev = None
                self._radius = -np.inf
                return
            if cache is not None:
                # The pruned active rows describe the same polytope with far
                # fewer constraints, keeping the residual LP small.
                a, b = cache.active_a, cache.active_b
            else:
                a, b = self.constraints
            # Cells are subsets of the (bounded) query region, so every LP
            # here may take the vertex-enumeration fast path.
            COUNTERS.lp_calls += 1
            with span("cell.lp", op="chebyshev"):
                centre, radius = chebyshev_center(a, b, dim=self.dimension,
                                                  assume_bounded=True)
            self._chebyshev = centre
            self._radius = radius

    @property
    def inradius(self) -> float:
        """Radius of the largest ball inscribed in the cell (negative if empty)."""
        self._ensure_chebyshev()
        return float(self._radius)

    @property
    def interior_point(self) -> np.ndarray | None:
        """A point strictly inside the cell, or ``None`` when the cell is empty.

        On the vertex path this is the vertex centroid (interior by
        convexity); the LP fallback keeps the Chebyshev centre.  Both paths
        honour the same contract: measure-zero (lower-dimensional) cells
        report ``None`` exactly like empty ones.
        """
        cache = self.vertex_cache()
        if cache is not None:
            if cache.is_empty or not self.is_full_dimensional(CELL_DEGENERATE_TOL):
                return None
            return cache.centroid()
        self._ensure_chebyshev()
        if self._chebyshev is None or self._radius <= 0.0:
            return None
        return self._chebyshev

    def is_full_dimensional(self, tol: float = CELL_INTERIOR_TOL) -> bool:
        """Whether the cell has a non-empty interior.

        On the vertex path this is an affine-rank/width test over the cached
        vertices (see :meth:`VertexCache.is_full_dimensional`); its rare
        uncertain band — slivers whose width is within a dimensional constant
        of ``tol`` — is resolved by the exact Chebyshev LP over the pruned
        active rows, so the verdict matches the LP path.  The memo is
        bypassed under :func:`vertex_cache_disabled` so A/B runs on shared
        cells never reuse a vertex-path verdict as an LP one.
        """
        if not _VERTEX_CACHE_ENABLED:
            self._ensure_chebyshev()
            return self._radius is not None and self._radius > tol
        known = self._full_dim.get(tol)
        if known is not None:
            return known
        cache = self.vertex_cache()
        result = cache.is_full_dimensional(tol) if cache is not None else None
        if result is None:
            self._ensure_chebyshev()
            result = self._radius is not None and self._radius > tol
        self._full_dim[tol] = result
        return result

    def contains(self, point, tol: float = 1e-9) -> bool:
        """Whether ``point`` satisfies all the cell's constraints."""
        a, b = self.constraints
        point = np.asarray(point, dtype=float).reshape(-1)
        return bool(np.all(a @ point <= b + tol))

    # --------------------------------------------------------------- children
    def restricted(self, halfspace: HalfSpace, inside: bool) -> "Cell":
        """The sub-cell on the requested side of ``halfspace``.

        The child's vertex cache is derived from the parent's in one clip —
        no enumeration, no LP.  Children are memoized per ``(halfspace,
        side)``: :meth:`classify` builds both sides of a candidate split to
        test full-dimensionality, and the arrangement then asks for the same
        children again.
        """
        key = (halfspace, inside)
        child = self._children.get(key)
        if child is not None:
            return child
        if inside:
            row, rhs = halfspace.as_upper_constraint()
        else:
            row, rhs = halfspace.as_lower_constraint()
        extra_a = np.vstack([self._extra_a, row.reshape(1, -1)])
        extra_b = np.concatenate([self._extra_b, [rhs]])
        child = Cell(self.region, extra_a, extra_b, history=self.history + ((halfspace, inside),))
        if _VERTEX_CACHE_ENABLED:
            cache = self.vertex_cache()
            if cache is None:
                # From-scratch enumeration already failed for the parent; the
                # child has strictly more rows, so don't retry per descendant.
                child._vcache = None
            else:
                clipped = clip(cache, row, rhs)
                if clipped is not None:
                    child._vcache = clipped
                # A degenerate clip leaves the child unset: it may still
                # enumerate its own vertices from scratch on first use.
        self._children[key] = child
        return child

    def classify(self, halfspace: HalfSpace, tol: float = CELL_SIDE_TOL, *,
                 bounds: tuple[float, float] | None = None) -> str:
        """Position of the cell relative to ``halfspace``.

        Returns ``"inside"`` when the whole cell satisfies
        ``normal @ u >= offset``, ``"outside"`` when no interior point does,
        and ``"split"`` when the half-space properly crosses the cell.

        With a vertex cache the test is a min/max dot product over the cached
        vertices — zero LPs.  ``bounds`` lets the arrangement pass the
        ``(min, max)`` pair precomputed by its batched one-matmul
        classification (:func:`repro.kernels.vertexops.halfspace_side_bounds`,
        equal to the per-cell product within the last ulp).  Cells without a
        cache keep the LP route, probe-guided by the Chebyshev centre's slack.
        """
        cache = self.vertex_cache()
        if cache is not None:
            if cache.is_empty:
                # Empty cell: report "outside" so callers simply drop it.
                return "outside"
            if bounds is None:
                values = cache.vertices @ halfspace.normal
                low_value, high_value = float(values.min()), float(values.max())
            else:
                low_value, high_value = bounds
            if low_value >= halfspace.offset - tol:
                return "inside"
            if high_value <= halfspace.offset + tol:
                return "outside"
            return self._classify_crossing(halfspace)
        self._ensure_chebyshev()
        if self._chebyshev is None or self._radius <= 0.0:
            return "outside"
        a, b = self.constraints
        probe = halfspace.value(self._chebyshev)
        if probe >= -tol:
            COUNTERS.lp_calls += 1
            with span("cell.lp", op="classify-min"):
                low = minimize(halfspace.normal, a, b, assume_bounded=True)
            if not low.is_optimal:
                return "outside"
            if low.value >= halfspace.offset - tol:
                return "inside"
        if probe <= tol:
            COUNTERS.lp_calls += 1
            with span("cell.lp", op="classify-max"):
                high = maximize(halfspace.normal, a, b, assume_bounded=True)
            if not high.is_optimal:
                # A numerically-infeasible maximize certifies the same empty
                # cell the minimize branch reports; never compare its value.
                return "outside"
            if high.value <= halfspace.offset + tol:
                return "outside"
        return self._classify_crossing(halfspace)

    def _classify_crossing(self, halfspace: HalfSpace) -> str:
        """Resolve a hyperplane that crosses the cell's affine hull.

        Only a genuine split when both sides keep a full-dimensional piece.
        """
        inside_part = self.restricted(halfspace, True)
        outside_part = self.restricted(halfspace, False)
        inside_full = inside_part.is_full_dimensional()
        outside_full = outside_part.is_full_dimensional()
        if inside_full and outside_full:
            return "split"
        if inside_full:
            return "inside"
        return "outside"

    def linear_range(self, coef) -> tuple[float, float]:
        """Minimum and maximum of ``coef @ u`` over the cell."""
        cache = self.vertex_cache()
        if cache is not None:
            return cache.linear_bounds(coef)
        a, b = self.constraints
        COUNTERS.lp_calls += 2
        with span("cell.lp", op="linear-range"):
            low = minimize(coef, a, b, assume_bounded=True)
            high = maximize(coef, a, b, assume_bounded=True)
        if not (low.is_optimal and high.is_optimal):
            return np.nan, np.nan
        return float(low.value), float(high.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell(dim={self.dimension}, extra={self._extra_a.shape[0]})"
