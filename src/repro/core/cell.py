"""Arrangement cells (partitions of the query region).

Following the arrangement-indexing discussion of the paper (Section 4.5), a
cell is represented *implicitly* by the half-spaces that define it rather
than by its explicit geometry: a cell is the base region plus a list of
signed half-space constraints.  Interior points, full-dimensionality tests
and half-space classification are answered with small linear programs
(analytic in one-dimensional preference domains).
"""

from __future__ import annotations

import numpy as np

from repro.core.halfspace import HalfSpace
from repro.core.region import Region
from repro.geometry.linear_programming import chebyshev_center, maximize, minimize

#: A cell whose inscribed-ball radius does not exceed this is treated as
#: lower-dimensional (not a genuine partition).
CELL_INTERIOR_TOL = 1e-7

#: Tolerance for deciding that a half-space fully covers / misses a cell.
CELL_SIDE_TOL = 1e-9


class Cell:
    """A convex cell: the base region intersected with signed half-spaces.

    Parameters
    ----------
    region:
        The base :class:`~repro.core.region.Region` the cell lives in.
    extra_a, extra_b:
        Additional constraint rows ``a @ u <= b`` accumulated by half-space
        insertions (both the covering and the complement side are expressed
        in this canonical "<=" form).
    history:
        Tuple of ``(halfspace, inside)`` pairs describing how the cell was
        carved out of the base region; useful for reporting and debugging.
    """

    __slots__ = ("region", "_extra_a", "_extra_b", "history", "_chebyshev", "_radius", "_children")

    def __init__(self, region: Region, extra_a: np.ndarray | None = None,
                 extra_b: np.ndarray | None = None,
                 history: tuple = ()):  # type: ignore[assignment]
        self.region = region
        dim = region.dimension
        if extra_a is None:
            extra_a = np.zeros((0, dim), dtype=float)
            extra_b = np.zeros(0, dtype=float)
        self._extra_a = extra_a
        self._extra_b = extra_b
        self.history = history
        self._chebyshev = None
        self._radius = None
        self._children = {}

    # ---------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Pickle the cell without its memoized children.

        The child memo exists to avoid recomputing Chebyshev data during
        arrangement construction; for a finished cell (as shipped back from
        parallel shard workers) it is dead weight that can dwarf the cell
        itself.  The cached Chebyshev centre is kept — interior-point queries
        on the unpickled cell stay free.
        """
        return {
            "region": self.region,
            "extra_a": self._extra_a,
            "extra_b": self._extra_b,
            "history": self.history,
            "chebyshev": self._chebyshev,
            "radius": self._radius,
        }

    def __setstate__(self, state: dict) -> None:
        self.region = state["region"]
        self._extra_a = state["extra_a"]
        self._extra_b = state["extra_b"]
        self.history = state["history"]
        self._chebyshev = state["chebyshev"]
        self._radius = state["radius"]
        self._children = {}

    # --------------------------------------------------------------- geometry
    @property
    def dimension(self) -> int:
        """Dimensionality of the preference domain."""
        return self.region.dimension

    @property
    def constraints(self) -> tuple[np.ndarray, np.ndarray]:
        """Full H-representation of the cell (region + accumulated rows)."""
        base_a, base_b = self.region.constraints
        if self._extra_a.shape[0] == 0:
            return base_a, base_b
        return np.vstack([base_a, self._extra_a]), np.concatenate([base_b, self._extra_b])

    def _ensure_chebyshev(self) -> None:
        if self._radius is None:
            a, b = self.constraints
            # Cells are subsets of the (bounded) query region, so every LP
            # here may take the vertex-enumeration fast path.
            centre, radius = chebyshev_center(a, b, dim=self.dimension,
                                              assume_bounded=True)
            self._chebyshev = centre
            self._radius = radius

    @property
    def inradius(self) -> float:
        """Radius of the largest ball inscribed in the cell (negative if empty)."""
        self._ensure_chebyshev()
        return float(self._radius)

    @property
    def interior_point(self) -> np.ndarray | None:
        """A point strictly inside the cell, or ``None`` when the cell is empty."""
        self._ensure_chebyshev()
        if self._chebyshev is None or self._radius <= 0.0:
            return None
        return self._chebyshev

    def is_full_dimensional(self, tol: float = CELL_INTERIOR_TOL) -> bool:
        """Whether the cell has a non-empty interior."""
        self._ensure_chebyshev()
        return self._radius is not None and self._radius > tol

    def contains(self, point, tol: float = 1e-9) -> bool:
        """Whether ``point`` satisfies all the cell's constraints."""
        a, b = self.constraints
        point = np.asarray(point, dtype=float).reshape(-1)
        return bool(np.all(a @ point <= b + tol))

    # --------------------------------------------------------------- children
    def restricted(self, halfspace: HalfSpace, inside: bool) -> "Cell":
        """The sub-cell on the requested side of ``halfspace``.

        Children are memoized per ``(halfspace, side)``: :meth:`classify`
        builds both sides of a candidate split to test full-dimensionality,
        and the arrangement then asks for the same children again — without
        the memo their (LP-computed) Chebyshev data would be thrown away and
        recomputed.
        """
        key = (halfspace, inside)
        child = self._children.get(key)
        if child is not None:
            return child
        if inside:
            row, rhs = halfspace.as_upper_constraint()
        else:
            row, rhs = halfspace.as_lower_constraint()
        extra_a = np.vstack([self._extra_a, row.reshape(1, -1)])
        extra_b = np.concatenate([self._extra_b, [rhs]])
        child = Cell(self.region, extra_a, extra_b, history=self.history + ((halfspace, inside),))
        self._children[key] = child
        return child

    def classify(self, halfspace: HalfSpace, tol: float = CELL_SIDE_TOL) -> str:
        """Position of the cell relative to ``halfspace``.

        Returns ``"inside"`` when the whole cell satisfies
        ``normal @ u >= offset``, ``"outside"`` when no interior point does,
        and ``"split"`` when the half-space properly crosses the cell.

        The (cached) Chebyshev centre is a feasible point, so its slack
        brackets both linear programs: the minimum cannot exceed it and the
        maximum cannot fall below it.  Each bound test is therefore only run
        when the probe leaves it any chance of succeeding, which skips one of
        the two LPs for every cell the hyperplane clearly crosses.
        """
        self._ensure_chebyshev()
        if self._chebyshev is None or self._radius <= 0.0:
            # Empty cell: report "outside" so callers simply drop it.
            return "outside"
        a, b = self.constraints
        probe = halfspace.value(self._chebyshev)
        if probe >= -tol:
            low = minimize(halfspace.normal, a, b, assume_bounded=True)
            if not low.is_optimal:
                return "outside"
            if low.value >= halfspace.offset - tol:
                return "inside"
        if probe <= tol:
            high = maximize(halfspace.normal, a, b, assume_bounded=True)
            if high.value <= halfspace.offset + tol:
                return "outside"
        # The hyperplane crosses the cell's affine hull; only a genuine split
        # when both sides keep a full-dimensional piece.
        inside_part = self.restricted(halfspace, True)
        outside_part = self.restricted(halfspace, False)
        inside_full = inside_part.is_full_dimensional()
        outside_full = outside_part.is_full_dimensional()
        if inside_full and outside_full:
            return "split"
        if inside_full:
            return "inside"
        return "outside"

    def linear_range(self, coef) -> tuple[float, float]:
        """Minimum and maximum of ``coef @ u`` over the cell."""
        a, b = self.constraints
        low = minimize(coef, a, b, assume_bounded=True)
        high = maximize(coef, a, b, assume_bounded=True)
        if not (low.is_optimal and high.is_optimal):
            return np.nan, np.nan
        return float(low.value), float(high.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell(dim={self.dimension}, extra={self._extra_a.shape[0]})"
