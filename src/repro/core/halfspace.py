"""Half-spaces in the preference domain.

The central geometric object of the paper: for two records ``p`` and ``q``,
the inequality ``S(q) >= S(p)`` corresponds to a half-space of the preference
domain.  The UTK refinement steps partition the query region with such
half-spaces and count how many cover each partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.preference import score_gradients
from repro.kernels.halfspace import halfspace_coefficients


@dataclass(frozen=True)
class HalfSpace:
    """The half-space ``{u : normal @ u >= offset}``.

    ``label`` carries the identity of the competitor that induced the
    half-space, which the arrangement index needs in order to report *which*
    records outrank a candidate in each partition (Section 4.5).
    """

    normal: np.ndarray
    offset: float
    label: int = -1
    _normal_tuple: tuple = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self):
        normal = np.asarray(self.normal, dtype=float).reshape(-1)
        normal.setflags(write=False)
        object.__setattr__(self, "normal", normal)
        object.__setattr__(self, "offset", float(self.offset))
        object.__setattr__(self, "_normal_tuple", tuple(normal.tolist()))

    def __hash__(self) -> int:
        return hash((self._normal_tuple, self.offset, self.label))

    def __eq__(self, other) -> bool:
        if not isinstance(other, HalfSpace):
            return NotImplemented
        return (self._normal_tuple == other._normal_tuple
                and self.offset == other.offset
                and self.label == other.label)

    @property
    def dimension(self) -> int:
        """Dimensionality of the preference domain."""
        return self.normal.shape[0]

    def value(self, point) -> float:
        """Signed slack ``normal @ point - offset`` (non-negative inside)."""
        return float(self.normal @ np.asarray(point, dtype=float).reshape(-1) - self.offset)

    def contains(self, point, tol: float = 0.0) -> bool:
        """Whether ``point`` lies inside the half-space (within ``tol``)."""
        return self.value(point) >= -tol

    def as_upper_constraint(self) -> tuple[np.ndarray, float]:
        """The half-space as an ``a @ u <= b`` row (i.e. its *inside*)."""
        return -self.normal, -self.offset

    def as_lower_constraint(self) -> tuple[np.ndarray, float]:
        """The complement half-space ``normal @ u <= offset`` as an ``a @ u <= b`` row."""
        return self.normal.copy(), self.offset

    def complement_contains(self, point, tol: float = 0.0) -> bool:
        """Whether ``point`` lies in the complement (strictly outside within ``tol``)."""
        return self.value(point) <= tol


def halfspace_between(winner, loser, label: int = -1) -> HalfSpace:
    """Half-space of the preference domain where ``S(winner) >= S(loser)``.

    Parameters
    ----------
    winner, loser:
        ``d``-dimensional records.
    label:
        Identifier stored on the half-space (conventionally the dataset index
        of ``winner``).
    """
    pair = np.vstack([np.asarray(winner, dtype=float), np.asarray(loser, dtype=float)])
    gradients, offsets = score_gradients(pair)
    normal = gradients[0] - gradients[1]
    offset = offsets[1] - offsets[0]
    return HalfSpace(normal=normal, offset=offset, label=label)


def halfspaces_against(candidate, competitors: np.ndarray, labels) -> list[HalfSpace]:
    """Half-spaces ``S(competitor) >= S(candidate)`` for a batch of competitors.

    Vectorized variant of :func:`halfspace_between` used by the refinement
    steps, which build one half-space per competitor of the candidate/anchor.
    All coefficients come from one kernel broadcast
    (:func:`repro.kernels.halfspace.halfspace_coefficients`); only the
    ``HalfSpace`` wrappers are created per row.
    """
    normals, offsets = halfspace_coefficients(candidate, competitors)
    return [HalfSpace(normal=normals[row], offset=offsets[row], label=int(labels[row]))
            for row in range(normals.shape[0])]
