"""Preference regions.

The third input to a UTK query is a convex region ``R`` of the preference
domain: the approximate description of the user's weights.  The paper uses
axis-parallel hyper-rectangles for presentation but the techniques apply to
arbitrary convex polytopes; :class:`Region` supports both.

A region is stored in H-representation (``A u <= b``) and, whenever possible,
also carries its vertex set.  Vertices make r-dominance tests a cheap
vectorized evaluation (the minimum of a linear function over a polytope is
attained at a vertex); when they are unavailable the region falls back to
linear programming.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.exceptions import InvalidRegionError
from repro.geometry.linear_programming import chebyshev_center, maximize, minimize

#: Numerical slack used when validating that a region lies inside the simplex.
_SIMPLEX_TOL = 1e-9


class Region:
    """A convex polytope in the preference domain.

    Parameters
    ----------
    a_ub, b_ub:
        H-representation ``{u : a_ub @ u <= b_ub}``.
    vertices:
        Optional ``(m, dim)`` array of the polytope's vertices.  When given,
        min/max of linear functions and the pivot are computed from them.
    validate:
        When true (default), check that the region has a non-empty interior
        and is contained in the valid preference simplex
        ``{u : u >= 0, sum(u) <= 1}``.
    """

    def __init__(self, a_ub, b_ub, vertices=None, *, validate: bool = True):
        a = np.asarray(a_ub, dtype=float)
        b = np.asarray(b_ub, dtype=float).reshape(-1)
        if a.ndim != 2 or a.shape[0] != b.shape[0]:
            raise InvalidRegionError("inconsistent region constraint shapes")
        self._a = a
        self._b = b
        self._dim = a.shape[1]
        self._vertices = None
        if vertices is not None:
            verts = np.asarray(vertices, dtype=float)
            if verts.ndim != 2 or verts.shape[1] != self._dim:
                raise InvalidRegionError("vertex matrix does not match region dimension")
            self._vertices = verts
        centre, radius = chebyshev_center(a, b, dim=self._dim)
        if centre is None or radius <= 0.0:
            raise InvalidRegionError("region has an empty interior")
        self._chebyshev = centre
        self._radius = float(radius)
        if validate:
            self._validate_simplex()

    def _validate_simplex(self) -> None:
        """Ensure the region is inside ``{u >= 0, sum(u) <= 1}``."""
        dim = self._dim
        for axis in range(dim):
            coef = np.zeros(dim)
            coef[axis] = 1.0
            if self.linear_min(coef) < -_SIMPLEX_TOL:
                raise InvalidRegionError(f"region allows negative weight on axis {axis}")
        if self.linear_max(np.ones(dim)) > 1.0 + _SIMPLEX_TOL:
            raise InvalidRegionError("region exceeds the weight simplex (sum of weights > 1)")

    # ------------------------------------------------------------------ basic
    @property
    def dimension(self) -> int:
        """Dimensionality of the preference domain (``d - 1``)."""
        return self._dim

    @property
    def constraints(self) -> tuple[np.ndarray, np.ndarray]:
        """H-representation ``(A, b)`` of the region."""
        return self._a, self._b

    @property
    def vertices(self) -> np.ndarray | None:
        """Vertex matrix, or ``None`` when unknown."""
        return self._vertices

    @property
    def pivot(self) -> np.ndarray:
        """The pivot vector of the region (Section 4.1 of the paper).

        The pivot averages the region's vertices; convexity guarantees it lies
        inside.  Regions without a vertex representation use the Chebyshev
        centre, which is also interior.
        """
        if self._vertices is not None:
            return self._vertices.mean(axis=0)
        return self._chebyshev

    @property
    def interior_point(self) -> np.ndarray:
        """A point strictly inside the region (the Chebyshev centre)."""
        return self._chebyshev

    @property
    def inradius(self) -> float:
        """Radius of the largest ball that fits inside the region."""
        return self._radius

    def contains(self, point, tol: float = 1e-9) -> bool:
        """Whether ``point`` satisfies every constraint (within ``tol``)."""
        point = np.asarray(point, dtype=float).reshape(-1)
        return bool(np.all(self._a @ point <= self._b + tol))

    # ------------------------------------------------------ linear functionals
    def linear_min(self, coef) -> float:
        """Minimum of ``coef @ u`` over the region."""
        coef = np.asarray(coef, dtype=float).reshape(-1)
        if self._vertices is not None:
            return float((self._vertices @ coef).min())
        result = minimize(coef, self._a, self._b)
        if not result.is_optimal:
            raise InvalidRegionError("region LP failed while minimizing a linear function")
        return float(result.value)

    def linear_max(self, coef) -> float:
        """Maximum of ``coef @ u`` over the region."""
        coef = np.asarray(coef, dtype=float).reshape(-1)
        if self._vertices is not None:
            return float((self._vertices @ coef).max())
        result = maximize(coef, self._a, self._b)
        if not result.is_optimal:
            raise InvalidRegionError("region LP failed while maximizing a linear function")
        return float(result.value)

    # ----------------------------------------------------------------- sampling
    def sample(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Random points inside the region.

        Regions with a vertex representation draw Dirichlet-weighted convex
        combinations of the vertices (guaranteed interior up to boundary
        effects); others perturb the Chebyshev centre within the inradius.
        """
        rng = np.random.default_rng() if rng is None else rng
        if count <= 0:
            return np.zeros((0, self._dim), dtype=float)
        if self._vertices is not None:
            weights = rng.dirichlet(np.ones(self._vertices.shape[0]), size=count)
            return weights @ self._vertices
        directions = rng.normal(size=(count, self._dim))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        radii = rng.uniform(0.0, self._radius * 0.95, size=(count, 1))
        return self._chebyshev[None, :] + directions / norms * radii

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region(dim={self._dim}, constraints={self._a.shape[0]})"


def hyperrectangle(lower, upper, *, validate: bool = True) -> Region:
    """Axis-parallel hyper-rectangle region ``[lower, upper]`` (per axis).

    This is the region shape used throughout the paper's experiments: a
    hyper-cube of side length ``sigma`` placed in the preference domain.
    """
    lower = np.asarray(lower, dtype=float).reshape(-1)
    upper = np.asarray(upper, dtype=float).reshape(-1)
    if lower.shape != upper.shape:
        raise InvalidRegionError("lower and upper corners have different shapes")
    if np.any(upper <= lower):
        raise InvalidRegionError("hyper-rectangle must have positive extent on every axis")
    dim = lower.shape[0]
    a = np.vstack([np.eye(dim), -np.eye(dim)])
    b = np.concatenate([upper, -lower])
    corners = np.array(list(itertools.product(*zip(lower, upper))), dtype=float)
    return Region(a, b, vertices=corners, validate=validate)


def simplex_region(dimension: int, margin: float = 0.0) -> Region:
    """The entire preference domain ``{u : u >= margin, sum(u) <= 1 - margin}``.

    Useful for running UTK with *no* restriction on the weight vector, which
    degenerates UTK1 into "all records appearing in any top-k set".
    """
    if dimension < 1:
        raise InvalidRegionError("preference dimension must be at least 1")
    a = np.vstack([-np.eye(dimension), np.ones((1, dimension))])
    b = np.concatenate([-np.full(dimension, margin), [1.0 - margin]])
    vertices = [np.full(dimension, margin)]
    for axis in range(dimension):
        vertex = np.full(dimension, margin)
        vertex[axis] = 1.0 - margin * dimension
        vertices.append(vertex)
    return Region(a, b, vertices=np.asarray(vertices, dtype=float))


def region_from_vertices(vertices, *, validate: bool = True) -> Region:
    """Build a region from an explicit vertex set (convex polytope).

    For one-dimensional preference domains the H-representation is derived
    analytically; in higher dimensions qhull supplies the facet inequalities.
    """
    verts = np.asarray(vertices, dtype=float)
    if verts.ndim != 2 or verts.shape[0] < 2:
        raise InvalidRegionError("need at least two vertices")
    dim = verts.shape[1]
    if dim == 1:
        lo, hi = float(verts.min()), float(verts.max())
        a = np.array([[1.0], [-1.0]])
        b = np.array([hi, -lo])
        return Region(a, b, vertices=np.array([[lo], [hi]]), validate=validate)
    from scipy.spatial import ConvexHull, QhullError

    try:
        hull = ConvexHull(verts)
    except (QhullError, ValueError) as exc:
        raise InvalidRegionError(f"could not build region from vertices: {exc}") from exc
    a = hull.equations[:, :-1]
    b = -hull.equations[:, -1]
    return Region(a, b, vertices=verts[hull.vertices], validate=validate)
