"""Dataset container.

A :class:`Dataset` wraps a ``(n, d)`` numpy array of records together with
optional human-readable labels.  Every attribute is assumed to be
"higher is better"; helpers are provided to flip or rescale attributes that
arrive in the opposite orientation (e.g. price).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import InvalidDatasetError


class Dataset:
    """An immutable collection of ``d``-dimensional records.

    Parameters
    ----------
    values:
        ``(n, d)`` array-like of numeric attribute values (higher preferred).
    labels:
        Optional sequence of ``n`` record labels (names/identifiers).
    """

    def __init__(self, values, labels: Sequence[str] | None = None):
        array = np.array(values, dtype=float)
        if array.ndim != 2:
            raise InvalidDatasetError(f"dataset must be 2-dimensional, got shape {array.shape}")
        n, d = array.shape
        if n == 0:
            raise InvalidDatasetError("dataset must contain at least one record")
        if d < 2:
            raise InvalidDatasetError("dataset must have at least two attributes")
        if not np.all(np.isfinite(array)):
            raise InvalidDatasetError("dataset contains NaN or infinite values")
        array.setflags(write=False)
        self._values = array
        if labels is not None:
            labels = list(labels)
            if len(labels) != n:
                raise InvalidDatasetError(f"got {len(labels)} labels for {n} records")
        self._labels = labels

    @property
    def values(self) -> np.ndarray:
        """The read-only ``(n, d)`` attribute matrix."""
        return self._values

    @property
    def labels(self) -> list[str] | None:
        """Record labels, or ``None`` when no labels were supplied."""
        return None if self._labels is None else list(self._labels)

    @property
    def size(self) -> int:
        """Number of records ``n``."""
        return self._values.shape[0]

    @property
    def dimensionality(self) -> int:
        """Number of attributes ``d``."""
        return self._values.shape[1]

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> np.ndarray:
        return self._values[index]

    def label_of(self, index: int) -> str:
        """Label of record ``index`` (falls back to ``"p<index>"``)."""
        if self._labels is None:
            return f"p{index}"
        return self._labels[index]

    def subset(self, indices) -> "Dataset":
        """A new dataset containing only ``indices`` (labels preserved)."""
        indices = np.asarray(indices, dtype=int)
        labels = None
        if self._labels is not None:
            labels = [self._labels[i] for i in indices]
        return Dataset(self._values[indices], labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset(n={self.size}, d={self.dimensionality})"

    @staticmethod
    def from_columns(
        columns: dict[str, Sequence[float]], labels: Sequence[str] | None = None
    ) -> "Dataset":
        """Build a dataset from named attribute columns (dict of sequences)."""
        if not columns:
            raise InvalidDatasetError("no columns supplied")
        matrix = np.column_stack([np.asarray(col, dtype=float) for col in columns.values()])
        return Dataset(matrix, labels)


def normalize_higher_is_better(values, invert_columns: Sequence[int] = ()) -> np.ndarray:
    """Rescale every attribute to [0, 1], flipping ``invert_columns``.

    Columns listed in ``invert_columns`` are treated as "lower is better"
    (e.g. price) and are mirrored so the returned matrix is uniformly
    "higher is better".  Constant columns map to 0.5.
    """
    array = np.array(values, dtype=float)
    if array.ndim != 2:
        raise InvalidDatasetError("expected a 2-dimensional matrix")
    lo = array.min(axis=0)
    hi = array.max(axis=0)
    span = hi - lo
    span[span == 0.0] = 1.0
    scaled = (array - lo) / span
    constant = (hi - lo) == 0.0
    scaled[:, constant] = 0.5
    for col in invert_columns:
        scaled[:, col] = 1.0 - scaled[:, col]
    return scaled
