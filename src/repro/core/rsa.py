"""RSA — the r-Skyband Algorithm for UTK1 (Section 4 of the paper).

RSA processes a UTK1 query in two steps:

1. **Filtering** — compute the r-skyband (records r-dominated by fewer than
   ``k`` others) with the adapted BBS traversal, and build the r-dominance
   graph ``G`` over it.
2. **Refinement** — verify candidates one by one, in decreasing order of
   their r-dominance count.  Verification of a candidate ``p`` builds small,
   recursive, local half-space arrangements of its strongest competitors
   inside the query region, confirms promising partitions with Lemma 1, and
   is short-circuited by the *drill* optimization.  Confirming a candidate
   also confirms all its ancestors in ``G``; disqualified candidates are
   removed from ``G`` so later verifications ignore them.

The implementation additionally records a *witness* weight vector for every
reported record, which the test-suite uses as an exactness certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.arrangement import Arrangement
from repro.core.cell import Cell
from repro.core.drill import drill_vector, is_in_top_k
from repro.core.halfspace import halfspaces_against
from repro.core.region import Region
from repro.core.result import UTK1Result
from repro.core.rskyband import RSkyband, compute_r_skyband
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree
from repro.obs.geometry import COUNTERS, publish_delta
from repro.obs.names import observe_phase as _observe_phase
from repro.obs.trace import span


@dataclass
class RSAStatistics:
    """Counters describing the work performed by one RSA run."""

    candidates: int = 0
    verify_calls: int = 0
    drill_hits: int = 0
    arrangements_built: int = 0
    halfspaces_inserted: int = 0
    lemma1_confirmations: int = 0
    verified_by_ancestry: int = 0
    disqualified: int = 0
    lp_calls: int = 0
    vertex_clip_calls: int = 0
    enumeration_calls: int = 0
    fallback_calls: int = 0
    filtering_stats: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view used by the result container and the harness."""
        return {
            "candidates": self.candidates,
            "verify_calls": self.verify_calls,
            "drill_hits": self.drill_hits,
            "arrangements_built": self.arrangements_built,
            "halfspaces_inserted": self.halfspaces_inserted,
            "lemma1_confirmations": self.lemma1_confirmations,
            "verified_by_ancestry": self.verified_by_ancestry,
            "disqualified": self.disqualified,
            "lp_calls": self.lp_calls,
            "vertex_clip_calls": self.vertex_clip_calls,
            "enumeration_calls": self.enumeration_calls,
            "fallback_calls": self.fallback_calls,
            **{f"filter_{key}": value for key, value in self.filtering_stats.items()},
        }


class RSA:
    """r-Skyband Algorithm for the UTK1 problem.

    Parameters
    ----------
    values:
        ``(n, d)`` dataset matrix (higher attribute values preferred).
    region:
        Query region ``R`` in the preference domain (dimension ``d - 1``).
    k:
        Top-k parameter.
    tree:
        Optional pre-built R-tree over ``values`` (reused across queries).
    use_drill:
        Enable the drill optimization (Section 4.3).  Disabling it is only
        useful for ablation studies.
    use_lemma1:
        Enable Lemma-1 pruning of remaining competitors.  Disabling it forces
        the verification to recurse until no competitors remain.
    candidate_order:
        ``"count_desc"`` (paper default), ``"count_asc"`` or ``"index"`` —
        the order in which candidates are verified; an ablation knob.
    skyband:
        Optionally, a pre-computed r-skyband (skips the filtering step).
    """

    def __init__(
        self,
        values,
        region: Region,
        k: int,
        *,
        tree: RTree | None = None,
        use_drill: bool = True,
        use_lemma1: bool = True,
        candidate_order: str = "count_desc",
        skyband: RSkyband | None = None,
    ):
        self.values = np.asarray(values, dtype=float)
        if self.values.ndim != 2:
            raise InvalidQueryError("values must be an (n, d) matrix")
        if k <= 0:
            raise InvalidQueryError("k must be positive")
        if region.dimension != self.values.shape[1] - 1:
            raise InvalidQueryError(
                f"region dimension {region.dimension} does not match "
                f"{self.values.shape[1]}-dimensional data"
            )
        self.region = region
        self.k = int(k)
        self.tree = tree
        self.use_drill = use_drill
        self.use_lemma1 = use_lemma1
        if candidate_order not in ("count_desc", "count_asc", "index"):
            raise InvalidQueryError(f"unknown candidate order: {candidate_order!r}")
        self.candidate_order = candidate_order
        self._skyband = skyband
        self.stats = RSAStatistics()

    # ------------------------------------------------------------------ public
    def _capture_geometry(self, snapshot: tuple[int, int, int, int]) -> None:
        """Record the run's geometry-telemetry deltas into the statistics."""
        delta = COUNTERS.since(snapshot)
        self.stats.lp_calls = delta["lp_calls"]
        self.stats.vertex_clip_calls = delta["vertex_clip_calls"]
        self.stats.enumeration_calls = delta["enumeration_calls"]
        self.stats.fallback_calls = delta["fallback_calls"]
        publish_delta(delta)

    def run(self) -> UTK1Result:
        """Execute the query and return the UTK1 result."""
        with span("rsa.run", k=self.k) as run_span:
            result = self._run(run_span)
        return result

    def _run(self, run_span) -> UTK1Result:
        geometry_snapshot = COUNTERS.snapshot()
        skyband = self._skyband
        if skyband is None:
            with span("rsa.skyband") as phase:
                skyband = compute_r_skyband(self.values, self.region, self.k, tree=self.tree)
            _observe_phase("rsa.skyband", phase)
        self._sky = skyband
        run_span.set(candidates=skyband.size)
        self.stats.candidates = skyband.size
        self.stats.filtering_stats = {
            "bbs_nodes_visited": skyband.stats.nodes_visited,
            "bbs_records_visited": skyband.stats.records_visited,
            "skyband_size": skyband.size,
        }
        members = skyband.members()
        if not members:
            self._capture_geometry(geometry_snapshot)
            return UTK1Result(
                indices=[], witnesses={}, region=self.region, k=self.k, stats=self.stats.as_dict()
            )
        if len(members) <= self.k:
            # Every candidate is in the top-k set for every weight vector.
            pivot = self.region.pivot
            witnesses = {index: pivot for index in members}
            self._capture_geometry(geometry_snapshot)
            return UTK1Result(
                indices=sorted(members),
                witnesses=witnesses,
                region=self.region,
                k=self.k,
                stats=self.stats.as_dict(),
            )

        self._rows = {index: skyband.row_of(index) for index in members}
        self._ancestors = skyband.ancestors
        self._descendants = skyband.descendants
        self._alive: set[int] = set(members)
        self._verified: dict[int, np.ndarray] = {}

        with span("rsa.refine") as phase:
            for candidate in self._candidate_sequence(members):
                if candidate in self._verified or candidate not in self._alive:
                    continue
                ancestors = self._ancestors[candidate]
                quota = self.k - len(ancestors)
                skip = set(ancestors) | {candidate} | set(self._descendants[candidate])
                ok, witness = self._verify(candidate, Cell(self.region), quota, skip)
                if ok:
                    self._confirm(candidate, witness)
                else:
                    self._alive.discard(candidate)
                    self.stats.disqualified += 1
        _observe_phase("rsa.refine", phase)

        indices = sorted(self._verified)
        witnesses = {index: self._verified[index] for index in indices}
        self._capture_geometry(geometry_snapshot)
        return UTK1Result(
            indices=indices,
            witnesses=witnesses,
            region=self.region,
            k=self.k,
            stats=self.stats.as_dict(),
        )

    # --------------------------------------------------------------- internals
    def _candidate_sequence(self, members: list[int]) -> list[int]:
        """Verification order of the candidates (paper: descending r-dom count)."""
        if self.candidate_order == "index":
            return sorted(members)
        reverse = self.candidate_order == "count_desc"
        return sorted(members, key=lambda idx: (len(self._ancestors[idx]), idx), reverse=reverse)

    def _confirm(self, candidate: int, witness: np.ndarray) -> None:
        """Mark a candidate (and all its ancestors) as part of the UTK1 result."""
        self._verified[candidate] = witness
        for ancestor in self._ancestors[candidate]:
            if ancestor not in self._verified:
                self._verified[ancestor] = witness
                self.stats.verified_by_ancestry += 1

    def _competitor_pool(self, skip: set[int]) -> list[int]:
        """Candidates that can still outrank the one under verification."""
        pool = (self._alive | set(self._verified)) - skip
        return sorted(pool)

    def _restricted_counts(self, competitors: list[int]) -> np.ndarray:
        """r-dominance counts restricted to the competitor set itself.

        One adjacency-submatrix column sum (see
        :meth:`~repro.core.rskyband.RSkyband.restricted_counts`) instead of a
        per-candidate ancestor-set intersection.
        """
        return self._sky.restricted_counts(competitors)

    def _verify(self, candidate: int, cell: Cell, quota: int, skip: set[int]) -> tuple[
        bool, np.ndarray | None
    ]:
        """Recursive verification of ``candidate`` inside ``cell`` (Algorithm 2)."""
        self.stats.verify_calls += 1
        if quota <= 0:
            return False, None

        pool_indices = sorted((self._alive | set(self._verified)) - {candidate})
        pool_rows = self._sky.subset_values(pool_indices + [candidate])
        candidate_position = pool_rows.shape[0] - 1

        # Drill: probe the cell at the vector maximizing the candidate's score.
        if self.use_drill:
            probe = drill_vector(cell, self._rows[candidate])
            if probe is not None and is_in_top_k(pool_rows, probe, candidate_position, self.k):
                self.stats.drill_hits += 1
                return True, probe

        competitors = self._competitor_pool(skip)
        if not competitors:
            point = cell.interior_point
            return point is not None, point

        # Insert half-spaces of the strongest competitors (smallest restricted
        # r-dominance count) into a fresh local arrangement.
        counts = self._restricted_counts(competitors)
        minimum = counts.min()
        chosen = [c for c, count in zip(competitors, counts) if count == minimum]
        remaining = [c for c, count in zip(competitors, counts) if count != minimum]

        arrangement = Arrangement(cell)
        self.stats.arrangements_built += 1
        with span("rsa.halfspace_build", competitors=len(chosen)):
            halfspaces = list(halfspaces_against(
                self._rows[candidate], self._sky.subset_values(chosen), chosen
            ))
        with span("rsa.arrangement", halfspaces=len(halfspaces)):
            for halfspace in halfspaces:
                arrangement.insert(halfspace)
                self.stats.halfspaces_inserted += 1
            promising = [leaf for leaf in arrangement.partitions() if leaf.count < quota]
        promising.sort(key=lambda leaf: leaf.count)
        chosen_set = set(chosen)
        for leaf in promising:
            if self.use_lemma1:
                disregarded = {
                    c for c in remaining if self._ancestors[c] & (chosen_set - leaf.covering)
                }
            else:
                disregarded = set()
            if len(disregarded) == len(remaining):
                # Lemma 1: no remaining competitor can raise this partition's
                # count, so the candidate's rank here is final.
                self.stats.lemma1_confirmations += 1
                point = leaf.cell.interior_point
                if point is not None:
                    return True, point
                continue
            new_skip = skip | chosen_set | disregarded
            ok, witness = self._verify(candidate, leaf.cell, quota - leaf.count, new_skip)
            if ok:
                return True, witness
        return False, None
