"""Convenience API for UTK queries.

``utk1`` and ``utk2`` are the recommended entry points: they accept either a
raw matrix or a :class:`~repro.core.records.Dataset`, an optional scoring
function, and the query region, and they run the paper's RSA / JAA
algorithms.  ``utk_query`` answers both problem versions while computing the
shared filtering step only once.

For repeated queries against the same dataset, pass an ``engine`` (built with
:func:`make_engine`): the call is then served through the persistent
:class:`~repro.engine.engine.UTKEngine`, which shares the scoring transform
and the R-tree across calls and reuses cached r-skybands and answers.
"""

from __future__ import annotations

import numpy as np

from repro.core.jaa import JAA
from repro.core.records import Dataset
from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband
from repro.core.scoring import LinearScoring, ScoringFunction
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree


def _as_matrix(data) -> np.ndarray:
    """Accept either a Dataset or an array-like and return the value matrix."""
    if isinstance(data, Dataset):
        return data.values
    return np.asarray(data, dtype=float)


def _check_engine_call(scoring, tree) -> None:
    """Reject per-call options the engine cannot honour.

    An engine fixes its scoring transform and R-tree at construction; silently
    ignoring a per-call override would return answers for the wrong query.
    """
    if scoring is not None or tree is not None:
        raise InvalidQueryError(
            "scoring/tree cannot be overridden per call when engine= is "
            "given; configure them when building the engine (make_engine)"
        )


def make_engine(data, *, scoring: ScoringFunction | None = None, cache_size: int = 128):
    """Bind a persistent :class:`~repro.engine.engine.UTKEngine` to ``data``.

    The engine applies the scoring transform and builds the shared R-tree
    once, then serves every subsequent ``utk1``/``utk2``/batch call through
    its caches.  Imported lazily to keep the one-shot path dependency-free.
    """
    from repro.engine import UTKEngine
    return UTKEngine(data, scoring=scoring, cache_size=cache_size)


def k_skyband(
    data, k: int, *, scoring: ScoringFunction | None = None, tree: RTree | None = None, engine=None
) -> np.ndarray:
    """Indices of the traditional k-skyband of the (transformed) dataset.

    The one-shot path silently built (and threw away) an R-tree on every call
    for datasets above the index threshold; callers that issue repeated
    skyband queries should either pass a pre-built ``tree`` or — preferably —
    an ``engine``, whose cached R-tree and per-``k`` skyband memo are shared
    with the UTK query paths.

    Parameters
    ----------
    data:
        A :class:`~repro.core.records.Dataset` or an ``(n, d)`` matrix.
        Ignored when ``engine`` is given (the engine is already bound).
    k:
        Skyband parameter: records dominated by fewer than ``k`` others.
    scoring, tree:
        As in :func:`utk1`; rejected when ``engine`` is given.
    engine:
        Optional :class:`~repro.engine.engine.UTKEngine`; the skyband is then
        computed over the engine's transformed matrix with its cached R-tree
        and memoized per ``k``.
    """
    if engine is not None:
        _check_engine_call(scoring, tree)
        return engine.k_skyband(k)
    # Imported lazily (as make_engine does) to keep repro.core importable
    # independently of the skyline package.
    from repro.skyline.skyband import k_skyband as traditional_k_skyband
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    return traditional_k_skyband(values, k, tree=tree)


def utk1(
    data,
    region: Region,
    k: int,
    *,
    scoring: ScoringFunction | None = None,
    tree: RTree | None = None,
    use_drill: bool | None = None,
    engine=None,
) -> UTK1Result:
    """Answer a UTK1 query: which records may enter the top-k within ``region``.

    Parameters
    ----------
    data:
        A :class:`~repro.core.records.Dataset` or an ``(n, d)`` matrix.
        Ignored when ``engine`` is given (the engine is already bound).
    region:
        Convex preference region (dimension ``d - 1``).
    k:
        Top-k parameter.
    scoring:
        Optional scoring function from :mod:`repro.core.scoring`; defaults to
        the linear weighted sum.
    tree:
        Optional pre-built R-tree over the (transformed) data.
    use_drill:
        Enable the drill optimization (Section 4.3); defaults to enabled.
    engine:
        Optional :class:`~repro.engine.engine.UTKEngine`; when given, the
        query is served through the engine's caches (fast path) and the
        per-call ``scoring``/``tree``/``use_drill`` options are rejected —
        they are fixed at engine construction.
    """
    if engine is not None:
        _check_engine_call(scoring, tree)
        if use_drill is not None:
            raise InvalidQueryError("use_drill cannot be overridden per call when engine= is given")
        return engine.utk1(region, k)
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    algorithm = RSA(
        values, region, k, tree=tree, use_drill=True if use_drill is None else use_drill
    )
    return algorithm.run()


def utk2(
    data,
    region: Region,
    k: int,
    *,
    scoring: ScoringFunction | None = None,
    tree: RTree | None = None,
    engine=None,
) -> UTK2Result:
    """Answer a UTK2 query: the exact top-k set for every weight vector in ``region``."""
    if engine is not None:
        _check_engine_call(scoring, tree)
        return engine.utk2(region, k)
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    algorithm = JAA(values, region, k, tree=tree)
    return algorithm.run()


def utk_query(data, region: Region, k: int, *,
              scoring: ScoringFunction | None = None,
              tree: RTree | None = None,
              engine=None) -> tuple[UTK1Result, UTK2Result]:
    """Answer both UTK versions, sharing the r-skyband filtering step."""
    if engine is not None:
        _check_engine_call(scoring, tree)
        return engine.query(region, k)
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    skyband = compute_r_skyband(values, region, k, tree=tree)
    first = RSA(values, region, k, tree=tree, skyband=skyband).run()
    second = JAA(values, region, k, tree=tree, skyband=skyband).run()
    return first, second
