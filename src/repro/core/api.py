"""Convenience API for UTK queries.

``utk1`` and ``utk2`` are the recommended entry points: they accept either a
raw matrix or a :class:`~repro.core.records.Dataset`, an optional scoring
function, and the query region, and they run the paper's RSA / JAA
algorithms.  ``utk_query`` answers both problem versions while computing the
shared filtering step only once.

Heavy queries can fan out across worker processes: ``workers=N`` (or
``parallel=True``) routes the refinement step through the region-partitioned
executor of :mod:`repro.parallel`, which splits the query region, solves
each sub-region in parallel, and merges the answers — same record sets,
same top-k sets as the serial run.

For repeated queries against the same dataset, pass an ``engine`` (built with
:func:`make_engine`): the call is then served through the persistent
:class:`~repro.engine.engine.UTKEngine`, which shares the scoring transform
and the R-tree across calls and reuses cached r-skybands and answers.
"""

from __future__ import annotations

import numpy as np

from repro.core.jaa import JAA
from repro.core.records import Dataset
from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband
from repro.core.scoring import LinearScoring, ScoringFunction
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree
from repro.obs.trace import span


def _as_matrix(data) -> np.ndarray:
    """Accept either a Dataset or an array-like and return the value matrix."""
    if isinstance(data, Dataset):
        return data.values
    return np.asarray(data, dtype=float)


def _check_engine_call(scoring, tree, workers=None, parallel=None) -> None:
    """Reject per-call options the engine cannot honour.

    An engine fixes its scoring transform, R-tree and parallel configuration
    at construction; silently ignoring a per-call override would return
    answers for the wrong query (or with the wrong execution plan).
    """
    if scoring is not None or tree is not None:
        raise InvalidQueryError(
            "scoring/tree cannot be overridden per call when engine= is "
            "given; configure them when building the engine (make_engine)"
        )
    if workers is not None or parallel is not None:
        raise InvalidQueryError(
            "workers/parallel cannot be overridden per call when engine= is "
            "given; configure parallel_workers when building the engine"
        )


def _resolve_workers(workers: int | None, parallel: bool | None) -> int:
    """Worker count from the ``workers``/``parallel`` knob pair.

    ``parallel=False`` forces the serial path regardless of ``workers``;
    ``parallel=True`` without a count uses one worker per CPU; otherwise the
    explicit ``workers`` (defaulting to 1, the serial path) wins.
    """
    if parallel is False:
        return 1
    if workers is None:
        if parallel:
            from repro.parallel import default_workers

            return default_workers()
        return 1
    return max(1, int(workers))


def make_engine(
    data,
    *,
    scoring: ScoringFunction | None = None,
    cache_size: int = 128,
    parallel_workers: int = 0,
    parallel_min_candidates: int | None = None,
    store: str = "memory",
    store_dir=None,
):
    """Bind a persistent :class:`~repro.engine.engine.UTKEngine` to ``data``.

    The engine applies the scoring transform and builds the shared R-tree
    once, then serves every subsequent ``utk1``/``utk2``/batch call through
    its caches.  ``parallel_workers`` enables the region-partitioned parallel
    path for heavy cache-miss queries (see :class:`UTKEngine`).  Imported
    lazily to keep the one-shot path dependency-free.

    ``store`` selects the storage backend.  ``"memory"`` (default) holds the
    dataset in RAM.  ``"colstore"`` binds to memory-mapped columnar storage
    under ``store_dir``: when ``data`` is ``None`` the persisted store there
    is attached read-only together with its paged R-tree (built on demand);
    otherwise ``data`` is first materialized into a fresh colstore at
    ``store_dir``.  The colstore path queries the mmap views zero-copy, so
    it requires the identity (linear) scoring transform.
    """
    from repro.engine import UTKEngine

    options: dict = {}
    if parallel_min_candidates is not None:
        options["parallel_min_candidates"] = parallel_min_candidates
    if store == "colstore":
        from repro.core.scoring import LinearScoring
        from repro.colstore.attach import attach_engine_inputs

        if scoring is not None and not isinstance(scoring, LinearScoring):
            raise InvalidQueryError(
                "the colstore backend indexes raw attribute values; only the "
                "identity (linear) scoring transform is supported"
            )
        values, tree = attach_engine_inputs(data, store_dir)
        return UTKEngine(
            values,
            scoring=scoring,
            cache_size=cache_size,
            parallel_workers=parallel_workers,
            tree=tree,
            **options,
        )
    if store != "memory":
        raise InvalidQueryError(f"unknown store backend {store!r} (memory|colstore)")
    return UTKEngine(
        data,
        scoring=scoring,
        cache_size=cache_size,
        parallel_workers=parallel_workers,
        **options,
    )


def k_skyband(
    data, k: int, *, scoring: ScoringFunction | None = None, tree: RTree | None = None, engine=None
) -> np.ndarray:
    """Indices of the traditional k-skyband of the (transformed) dataset.

    The one-shot path silently built (and threw away) an R-tree on every call
    for datasets above the index threshold; callers that issue repeated
    skyband queries should either pass a pre-built ``tree`` or — preferably —
    an ``engine``, whose cached R-tree and per-``k`` skyband memo are shared
    with the UTK query paths.

    Parameters
    ----------
    data:
        A :class:`~repro.core.records.Dataset` or an ``(n, d)`` matrix.
        Ignored when ``engine`` is given (the engine is already bound).
    k:
        Skyband parameter: records dominated by fewer than ``k`` others.
    scoring, tree:
        As in :func:`utk1`; rejected when ``engine`` is given.
    engine:
        Optional :class:`~repro.engine.engine.UTKEngine`; the skyband is then
        computed over the engine's transformed matrix with its cached R-tree
        and memoized per ``k``.
    """
    if engine is not None:
        _check_engine_call(scoring, tree)
        return engine.k_skyband(k)
    # Imported lazily (as make_engine does) to keep repro.core importable
    # independently of the skyline package.
    from repro.skyline.skyband import k_skyband as traditional_k_skyband

    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    return traditional_k_skyband(values, k, tree=tree)


def utk1(
    data,
    region: Region,
    k: int,
    *,
    scoring: ScoringFunction | None = None,
    tree: RTree | None = None,
    use_drill: bool | None = None,
    workers: int | None = None,
    parallel: bool | None = None,
    engine=None,
) -> UTK1Result:
    """Answer a UTK1 query: which records may enter the top-k within ``region``.

    Parameters
    ----------
    data:
        A :class:`~repro.core.records.Dataset` or an ``(n, d)`` matrix.
        Ignored when ``engine`` is given (the engine is already bound).
    region:
        Convex preference region (dimension ``d - 1``).
    k:
        Top-k parameter.
    scoring:
        Optional scoring function from :mod:`repro.core.scoring`; defaults to
        the linear weighted sum.
    tree:
        Optional pre-built R-tree over the (transformed) data.
    use_drill:
        Enable the drill optimization (Section 4.3); defaults to enabled.
    workers:
        Fan the refinement out over this many worker processes via the
        region-partitioned executor (:mod:`repro.parallel`); ``None`` or
        ``1`` runs serially.  The answer is the same either way.
    parallel:
        ``True`` enables the parallel path with one worker per CPU when
        ``workers`` is not given; ``False`` forces the serial path.
    engine:
        Optional :class:`~repro.engine.engine.UTKEngine`; when given, the
        query is served through the engine's caches (fast path) and the
        per-call ``scoring``/``tree``/``use_drill``/``workers`` options are
        rejected — they are fixed at engine construction.
    """
    if engine is not None:
        _check_engine_call(scoring, tree, workers, parallel)
        if use_drill is not None:
            raise InvalidQueryError("use_drill cannot be overridden per call when engine= is given")
        return engine.utk1(region, k)
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    drill = True if use_drill is None else use_drill
    worker_count = _resolve_workers(workers, parallel)
    with span("query.utk1", k=int(k), workers=worker_count):
        if worker_count > 1:
            from repro.parallel import parallel_utk1

            return parallel_utk1(
                values, region, k, workers=worker_count, tree=tree, use_drill=drill
            )
        return RSA(values, region, k, tree=tree, use_drill=drill).run()


def utk2(
    data,
    region: Region,
    k: int,
    *,
    scoring: ScoringFunction | None = None,
    tree: RTree | None = None,
    workers: int | None = None,
    parallel: bool | None = None,
    engine=None,
) -> UTK2Result:
    """Answer a UTK2 query: the exact top-k set for every weight vector in ``region``.

    ``workers``/``parallel`` fan the arrangement construction out across
    worker processes (see :func:`utk1`); the merged partitioning covers the
    same top-k sets as the serial run.
    """
    if engine is not None:
        _check_engine_call(scoring, tree, workers, parallel)
        return engine.utk2(region, k)
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    worker_count = _resolve_workers(workers, parallel)
    with span("query.utk2", k=int(k), workers=worker_count):
        if worker_count > 1:
            from repro.parallel import parallel_utk2

            return parallel_utk2(values, region, k, workers=worker_count, tree=tree)
        return JAA(values, region, k, tree=tree).run()


def utk_query(
    data,
    region: Region,
    k: int,
    *,
    scoring: ScoringFunction | None = None,
    tree: RTree | None = None,
    workers: int | None = None,
    parallel: bool | None = None,
    engine=None,
) -> tuple[UTK1Result, UTK2Result]:
    """Answer both UTK versions, sharing the r-skyband filtering step.

    With ``workers=N`` (or ``parallel=True``) the shared filtering still runs
    once; the refinement of both problem versions is then solved per
    sub-region in one pool pass and merged.
    """
    if engine is not None:
        _check_engine_call(scoring, tree, workers, parallel)
        return engine.query(region, k)
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    worker_count = _resolve_workers(workers, parallel)
    with span("query.utk_query", k=int(k), workers=worker_count):
        with span("query.filter"):
            skyband = compute_r_skyband(values, region, k, tree=tree)
        if worker_count > 1:
            from repro.parallel import parallel_utk_query

            first, second = parallel_utk_query(
                values, region, k, workers=worker_count, skyband=skyband
            )
            return first, second
        first = RSA(values, region, k, tree=tree, skyband=skyband).run()
        second = JAA(values, region, k, tree=tree, skyband=skyband).run()
        return first, second
