"""Convenience API for UTK queries.

``utk1`` and ``utk2`` are the recommended entry points: they accept either a
raw matrix or a :class:`~repro.core.records.Dataset`, an optional scoring
function, and the query region, and they run the paper's RSA / JAA
algorithms.  ``utk_query`` answers both problem versions while computing the
shared filtering step only once.
"""

from __future__ import annotations

import numpy as np

from repro.core.jaa import JAA
from repro.core.records import Dataset
from repro.core.region import Region
from repro.core.result import UTK1Result, UTK2Result
from repro.core.rsa import RSA
from repro.core.rskyband import compute_r_skyband
from repro.core.scoring import LinearScoring, ScoringFunction
from repro.index.rtree import RTree


def _as_matrix(data) -> np.ndarray:
    """Accept either a Dataset or an array-like and return the value matrix."""
    if isinstance(data, Dataset):
        return data.values
    return np.asarray(data, dtype=float)


def utk1(data, region: Region, k: int, *,
         scoring: ScoringFunction | None = None,
         tree: RTree | None = None,
         use_drill: bool = True) -> UTK1Result:
    """Answer a UTK1 query: which records may enter the top-k within ``region``.

    Parameters
    ----------
    data:
        A :class:`~repro.core.records.Dataset` or an ``(n, d)`` matrix.
    region:
        Convex preference region (dimension ``d - 1``).
    k:
        Top-k parameter.
    scoring:
        Optional scoring function from :mod:`repro.core.scoring`; defaults to
        the linear weighted sum.
    tree:
        Optional pre-built R-tree over the (transformed) data.
    use_drill:
        Enable the drill optimization (Section 4.3).
    """
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    algorithm = RSA(values, region, k, tree=tree, use_drill=use_drill)
    return algorithm.run()


def utk2(data, region: Region, k: int, *,
         scoring: ScoringFunction | None = None,
         tree: RTree | None = None) -> UTK2Result:
    """Answer a UTK2 query: the exact top-k set for every weight vector in ``region``."""
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    algorithm = JAA(values, region, k, tree=tree)
    return algorithm.run()


def utk_query(data, region: Region, k: int, *,
              scoring: ScoringFunction | None = None,
              tree: RTree | None = None) -> tuple[UTK1Result, UTK2Result]:
    """Answer both UTK versions, sharing the r-skyband filtering step."""
    scoring = scoring or LinearScoring()
    values = scoring.transform(_as_matrix(data))
    skyband = compute_r_skyband(values, region, k, tree=tree)
    first = RSA(values, region, k, tree=tree, skyband=skyband).run()
    second = JAA(values, region, k, tree=tree, skyband=skyband).run()
    return first, second
