"""Scoring functions.

The paper's default scoring function is the weighted sum of attributes.
Section 6 observes that everything extends to any function that is (i)
monotone in the data attributes and (ii) linear in the weights, e.g.
``sum_i w_i * x_i**p`` or ``sum_i w_i * f_i(x_i)`` for monotone ``f_i``.

The library supports this by transforming the data once with the monotone
per-attribute functions and then running the unchanged linear machinery on
the transformed attributes.  :class:`MonotoneScoring` packages that pattern.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import InvalidQueryError


class ScoringFunction:
    """Base class: maps raw attribute values to the linear-scoring space."""

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Return the attribute matrix on which linear scoring should run."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return type(self).__name__


class LinearScoring(ScoringFunction):
    """The standard weighted sum ``S(p) = sum_i w_i * x_i`` (identity transform)."""

    def transform(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float)

    def describe(self) -> str:
        return "linear (weighted sum)"


class PowerScoring(ScoringFunction):
    """``S(p) = sum_i w_i * x_i ** exponent`` for a positive exponent.

    With ``exponent = p`` this covers the weighted-``L_p``-norm family the
    paper mentions (ranking by the norm or by its ``p``-th power is the same).
    Attributes must be non-negative.
    """

    def __init__(self, exponent: float):
        if exponent <= 0.0:
            raise InvalidQueryError("exponent must be positive for monotonicity")
        self.exponent = float(exponent)

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if np.any(values < 0.0):
            raise InvalidQueryError("PowerScoring requires non-negative attributes")
        return values ** self.exponent

    def describe(self) -> str:
        return f"power (exponent={self.exponent})"


class MonotoneScoring(ScoringFunction):
    """``S(p) = sum_i w_i * f_i(x_i)`` for user-supplied monotone ``f_i``.

    Parameters
    ----------
    transforms:
        One callable per attribute.  Each must be non-decreasing; the
        constructor spot-checks monotonicity on a coarse grid and refuses
        obviously decreasing functions.
    check_range:
        ``(low, high)`` range used for the monotonicity spot check.
    """

    def __init__(
        self,
        transforms: Sequence[Callable[[np.ndarray], np.ndarray]],
        check_range: tuple[float, float] = (0.0, 1.0),
    ):
        if not transforms:
            raise InvalidQueryError("at least one transform is required")
        self.transforms = list(transforms)
        grid = np.linspace(check_range[0], check_range[1], 16)
        for position, func in enumerate(self.transforms):
            sampled = np.asarray([float(func(np.asarray(value))) for value in grid])
            if np.any(np.diff(sampled) < -1e-12):
                raise InvalidQueryError(f"transform {position} is not monotone non-decreasing")

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.shape[1] != len(self.transforms):
            raise InvalidQueryError(
                f"{len(self.transforms)} transforms supplied for " f"{values.shape[1]} attributes"
            )
        columns = [np.asarray(func(values[:, i]), dtype=float).reshape(-1)
                   for i, func in enumerate(self.transforms)]
        return np.column_stack(columns)

    def describe(self) -> str:
        return f"monotone per-attribute transform ({len(self.transforms)} attributes)"
