"""The drill optimization (Section 4.3) and related point probes.

A *drill* executes a plain top-k query at a carefully chosen weight vector
inside a cell: if the candidate under verification appears in the top-k set
there, it is immediately confirmed without building any arrangement.  The
drill vector is chosen by linear programming so that the candidate's score is
maximized over the cell, making the probe as favourable as possible.

The same machinery provides the *anchor selection* probes of JAA (the k-th
scoring candidate at a representative vector of a cell).
"""

from __future__ import annotations

import numpy as np

from repro.core.cell import Cell
from repro.core.preference import score_gradients, scores
from repro.geometry.linear_programming import maximize
from repro.obs.geometry import COUNTERS

#: Tolerance used when comparing candidate scores at a drill vector.
SCORE_TOL = 1e-9


def drill_vector(cell: Cell, record) -> np.ndarray | None:
    """Weight vector inside ``cell`` maximizing the score of ``record``.

    With a vertex cache the drill is an argmax dot product over the cell's
    cached vertices (the maximum of a linear score over a bounded cell sits
    at a vertex).  The LP route remains for cache-less cells and falls back
    to the cell's interior point when it fails; returns ``None`` for empty
    cells.
    """
    gradients, _ = score_gradients(np.asarray(record, dtype=float).reshape(1, -1))
    cache = cell.vertex_cache()
    if cache is not None:
        if cache.is_empty:
            return None
        values = cache.vertices @ gradients[0]
        return np.array(cache.vertices[int(np.argmax(values))], dtype=float)
    a, b = cell.constraints
    COUNTERS.lp_calls += 1
    result = maximize(gradients[0], a, b, assume_bounded=True)
    if result.is_optimal:
        return result.x
    return cell.interior_point


def rank_of(values: np.ndarray, weights, target_position: int, tol: float = SCORE_TOL) -> int:
    """1-based rank of ``values[target_position]`` at ``weights``.

    Ties (within ``tol``) count *against* the target, which makes every
    caller's decision conservative: a record is only declared inside the
    top-k when it beats its competitors by a clear margin.
    """
    all_scores = scores(values, weights)
    target = all_scores[target_position]
    better = np.sum(all_scores >= target - tol) - 1  # exclude the target itself
    return int(better) + 1


def is_in_top_k(
    values: np.ndarray, weights, target_position: int, k: int, tol: float = SCORE_TOL
) -> bool:
    """Whether ``values[target_position]`` ranks within the top ``k`` at ``weights``."""
    return rank_of(values, weights, target_position, tol) <= k


def kth_ranked(values: np.ndarray, weights, k: int) -> int:
    """Position (row index into ``values``) of the k-th highest score at ``weights``.

    Ties are broken by row index so the choice is deterministic.
    """
    all_scores = scores(values, weights)
    order = np.lexsort((np.arange(all_scores.shape[0]), -all_scores))
    k = min(k, order.shape[0])
    return int(order[k - 1])


def top_k_positions(values: np.ndarray, weights, k: int) -> list[int]:
    """Row indices of the ``k`` highest scores at ``weights`` (ties by row index)."""
    all_scores = scores(values, weights)
    order = np.lexsort((np.arange(all_scores.shape[0]), -all_scores))
    return [int(i) for i in order[:min(k, order.shape[0])]]
