"""Traditional dominance and r-dominance (Definition 1 of the paper).

*Traditional* dominance compares records attribute by attribute and is what
skylines and k-skybands build on.  *r-dominance* is specific to a preference
region ``R``: record ``p`` r-dominates ``p'`` when ``S(p) >= S(p')`` for every
weight vector in ``R`` (strictly for at least one).  Because the score
difference is linear in the weights, the test reduces to evaluating the
difference at the vertices of ``R`` (or to two LPs for regions without a
vertex representation).
"""

from __future__ import annotations

import numpy as np

from repro.core.preference import score_gradients
from repro.core.region import Region

#: Tie tolerance used by dominance tests on floating-point data.
DOMINANCE_TOL = 1e-9


def dominates(p, q, tol: float = DOMINANCE_TOL) -> bool:
    """Traditional dominance: ``p`` is no worse anywhere and better somewhere."""
    p = np.asarray(p, dtype=float).reshape(-1)
    q = np.asarray(q, dtype=float).reshape(-1)
    return bool(np.all(p >= q - tol) and np.any(p > q + tol))


def dominance_counts(values: np.ndarray, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """For every record, the number of records that traditionally dominate it.

    Quadratic brute force intended for oracles and small candidate sets; the
    index-based path lives in :mod:`repro.skyline.bbs`.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    counts = np.zeros(n, dtype=int)
    for i in range(n):
        geq = np.all(values >= values[i] - tol, axis=1)
        gt = np.any(values > values[i] + tol, axis=1)
        dominators = geq & gt
        dominators[i] = False
        counts[i] = int(dominators.sum())
    return counts


def r_dominates(p, q, region: Region, tol: float = DOMINANCE_TOL) -> bool:
    """Whether ``p`` r-dominates ``q`` with respect to ``region``.

    ``p`` r-dominates ``q`` when its score is at least that of ``q`` for every
    weight vector in the region, and strictly larger for at least one.
    """
    pair = np.vstack([np.asarray(p, dtype=float), np.asarray(q, dtype=float)])
    gradients, offsets = score_gradients(pair)
    diff_grad = gradients[0] - gradients[1]
    diff_off = offsets[0] - offsets[1]
    lo = diff_off + region.linear_min(diff_grad)
    hi = diff_off + region.linear_max(diff_grad)
    return lo >= -tol and hi > tol


class RDominance:
    """Vectorized r-dominance tests against a fixed region.

    The helper caches the region's vertices (or a fallback LP handle) and the
    score decomposition of the records it is asked about, so the BBS-style
    r-skyband computation and the r-dominance graph construction can run as
    dense numpy operations.
    """

    def __init__(self, region: Region, tol: float = DOMINANCE_TOL):
        self.region = region
        self.tol = tol
        self._vertices = region.vertices

    # ------------------------------------------------------------- primitives
    def _vertex_scores(self, values: np.ndarray) -> np.ndarray:
        """Scores of ``values`` at every region vertex, shape ``(v, n)``."""
        gradients, offsets = score_gradients(np.asarray(values, dtype=float))
        return offsets[None, :] + self._vertices @ gradients.T

    def dominates(self, p, q) -> bool:
        """Single-pair r-dominance test."""
        if self._vertices is None:
            return r_dominates(p, q, self.region, self.tol)
        scores = self._vertex_scores(np.vstack([p, q]))
        diff = scores[:, 0] - scores[:, 1]
        return bool(np.all(diff >= -self.tol) and np.any(diff > self.tol))

    def dominators_of(self, point, pool: np.ndarray) -> np.ndarray:
        """Boolean mask over ``pool`` marking records that r-dominate ``point``.

        ``point`` may be a data record or the top corner of an index node's
        MBB (the BBS convention for node pruning).
        """
        pool = np.asarray(pool, dtype=float)
        if pool.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        if self._vertices is None:
            return np.array([r_dominates(row, point, self.region, self.tol)
                             for row in pool], dtype=bool)
        stacked = np.vstack([np.asarray(point, dtype=float).reshape(1, -1), pool])
        scores = self._vertex_scores(stacked)
        diff = scores[:, 1:] - scores[:, 0:1]
        return np.all(diff >= -self.tol, axis=0) & np.any(diff > self.tol, axis=0)

    def dominance_matrix(self, values: np.ndarray) -> np.ndarray:
        """Full pairwise matrix ``M[i, j] = True`` iff record ``i`` r-dominates ``j``.

        Quadratic in the number of records; intended for the (small) r-skyband
        candidate set when building the r-dominance graph.
        """
        values = np.asarray(values, dtype=float)
        n = values.shape[0]
        if n == 0:
            return np.zeros((0, 0), dtype=bool)
        if self._vertices is None:
            matrix = np.zeros((n, n), dtype=bool)
            for i in range(n):
                for j in range(n):
                    if i != j and r_dominates(values[i], values[j], self.region, self.tol):
                        matrix[i, j] = True
            return matrix
        scores = self._vertex_scores(values)                    # (v, n)
        diff = scores[:, :, None] - scores[:, None, :]          # (v, i, j)
        matrix = np.all(diff >= -self.tol, axis=0) & np.any(diff > self.tol, axis=0)
        np.fill_diagonal(matrix, False)
        return matrix

    def dominance_counts(self, values: np.ndarray) -> np.ndarray:
        """Number of records (within ``values``) r-dominating each record."""
        return self.dominance_matrix(values).sum(axis=0)
