"""Traditional dominance and r-dominance (Definition 1 of the paper).

*Traditional* dominance compares records attribute by attribute and is what
skylines and k-skybands build on.  *r-dominance* is specific to a preference
region ``R``: record ``p`` r-dominates ``p'`` when ``S(p) >= S(p')`` for every
weight vector in ``R`` (strictly for at least one).  Because the score
difference is linear in the weights, the test reduces to evaluating the
difference at the vertices of ``R`` (or to two LPs for regions without a
vertex representation).
"""

from __future__ import annotations

import numpy as np

from repro.core.preference import score_gradients
from repro.core.region import Region
from repro.kernels.dominance import DOMINANCE_TOL
from repro.kernels.dominance import dominance_counts as _kernel_dominance_counts
from repro.kernels.halfspace import (
    r_dominance_matrix as _kernel_r_dominance_matrix,
    r_dominators_mask as _kernel_r_dominators_mask,
    vertex_scores as _kernel_vertex_scores,
)

__all__ = [
    "DOMINANCE_TOL",
    "dominates",
    "dominance_counts",
    "r_dominates",
    "RDominance",
]


def dominates(p, q, tol: float = DOMINANCE_TOL) -> bool:
    """Traditional dominance: ``p`` is no worse anywhere and better somewhere."""
    p = np.asarray(p, dtype=float).reshape(-1)
    q = np.asarray(q, dtype=float).reshape(-1)
    return bool(np.all(p >= q - tol) and np.any(p > q + tol))


def dominance_counts(values: np.ndarray, tol: float = DOMINANCE_TOL) -> np.ndarray:
    """For every record, the number of records that traditionally dominate it.

    Served by the batched kernel (:mod:`repro.kernels.dominance`); the
    per-record loop this replaced survives there as
    :func:`~repro.kernels.dominance.dominance_counts_loop`, the oracle of the
    property tests.  The index-based path lives in :mod:`repro.skyline.bbs`.
    """
    return _kernel_dominance_counts(values, tol)


def r_dominates(p, q, region: Region, tol: float = DOMINANCE_TOL) -> bool:
    """Whether ``p`` r-dominates ``q`` with respect to ``region``.

    ``p`` r-dominates ``q`` when its score is at least that of ``q`` for every
    weight vector in the region, and strictly larger for at least one.
    """
    pair = np.vstack([np.asarray(p, dtype=float), np.asarray(q, dtype=float)])
    gradients, offsets = score_gradients(pair)
    diff_grad = gradients[0] - gradients[1]
    diff_off = offsets[0] - offsets[1]
    lo = diff_off + region.linear_min(diff_grad)
    hi = diff_off + region.linear_max(diff_grad)
    return lo >= -tol and hi > tol


class RDominance:
    """Vectorized r-dominance tests against a fixed region.

    The helper caches the region's vertices (or a fallback LP handle) and the
    score decomposition of the records it is asked about, so the BBS-style
    r-skyband computation and the r-dominance graph construction can run as
    dense numpy operations.
    """

    def __init__(self, region: Region, tol: float = DOMINANCE_TOL):
        self.region = region
        self.tol = tol
        self._vertices = region.vertices

    # ------------------------------------------------------------- primitives
    def _vertex_scores(self, values: np.ndarray) -> np.ndarray:
        """Scores of ``values`` at every region vertex, shape ``(v, n)``."""
        return _kernel_vertex_scores(values, self._vertices)

    def dominates(self, p, q) -> bool:
        """Single-pair r-dominance test."""
        if self._vertices is None:
            return r_dominates(p, q, self.region, self.tol)
        scores = self._vertex_scores(np.vstack([p, q]))
        diff = scores[:, 0] - scores[:, 1]
        return bool(np.all(diff >= -self.tol) and np.any(diff > self.tol))

    def dominators_of(self, point, pool: np.ndarray) -> np.ndarray:
        """Boolean mask over ``pool`` marking records that r-dominate ``point``.

        ``point`` may be a data record or the top corner of an index node's
        MBB (the BBS convention for node pruning).
        """
        pool = np.asarray(pool, dtype=float)
        if pool.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        if self._vertices is None:
            return np.array(
                [r_dominates(row, point, self.region, self.tol) for row in pool], dtype=bool
            )
        # One vertex_scores call on the stacked records keeps the probe and
        # pool scores bit-identical to the pre-kernel implementation.
        stacked = np.vstack([np.asarray(point, dtype=float).reshape(1, -1), pool])
        scores = self._vertex_scores(stacked)
        return _kernel_r_dominators_mask(scores[:, 0], scores[:, 1:], self.tol)

    def dominated_by(self, point, pool: np.ndarray) -> np.ndarray:
        """Boolean mask over ``pool`` marking records that ``point`` r-dominates.

        The converse of :meth:`dominators_of`: the incremental-maintenance
        layer uses it to scope a deleted record's influence to exactly the
        records it r-dominated.
        """
        pool = np.asarray(pool, dtype=float)
        if pool.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        if self._vertices is None:
            return np.array(
                [r_dominates(point, row, self.region, self.tol) for row in pool], dtype=bool
            )
        stacked = np.vstack([np.asarray(point, dtype=float).reshape(1, -1), pool])
        scores = self._vertex_scores(stacked)
        diff = scores[:, 0][:, None] - scores[:, 1:]
        return np.all(diff >= -self.tol, axis=0) & np.any(diff > self.tol, axis=0)

    def dominance_matrix(self, values: np.ndarray) -> np.ndarray:
        """Full pairwise matrix ``M[i, j] = True`` iff record ``i`` r-dominates ``j``.

        Quadratic in the number of records.  With a vertex representation the
        whole matrix is a kernel call that accumulates per vertex over
        ``(n, n)`` slabs — the ``(v, n, n)`` difference tensor the pre-kernel
        code materialized is never built.
        """
        values = np.asarray(values, dtype=float)
        n = values.shape[0]
        if n == 0:
            return np.zeros((0, 0), dtype=bool)
        if self._vertices is None:
            matrix = np.zeros((n, n), dtype=bool)
            for i in range(n):
                for j in range(n):
                    if i != j and r_dominates(values[i], values[j], self.region, self.tol):
                        matrix[i, j] = True
            return matrix
        return _kernel_r_dominance_matrix(self._vertex_scores(values), self.tol)

    def dominance_counts(self, values: np.ndarray) -> np.ndarray:
        """Number of records (within ``values``) r-dominating each record."""
        return self.dominance_matrix(values).sum(axis=0)
