"""Core of the UTK reproduction: problem model, RSA and JAA algorithms.

The most convenient entry points are :func:`repro.core.api.utk1` and
:func:`repro.core.api.utk2`, re-exported at the package root.
"""

from repro.core.records import Dataset
from repro.core.preference import (
    expand_weights,
    preference_dimension,
    reduce_weights,
    score_gradients,
    scores,
)
from repro.core.region import Region, hyperrectangle, simplex_region
from repro.core.halfspace import HalfSpace, halfspace_between
from repro.core.dominance import dominates, r_dominates, RDominance
from repro.core.scoring import ScoringFunction, LinearScoring, MonotoneScoring
from repro.core.rskyband import RSkyband, compute_r_skyband
from repro.core.cell import Cell
from repro.core.arrangement import Arrangement
from repro.core.result import UTK1Result, UTK2Result, UTKPartition
from repro.core.rsa import RSA
from repro.core.jaa import JAA
from repro.core.api import utk1, utk2

__all__ = [
    "Dataset",
    "expand_weights",
    "preference_dimension",
    "reduce_weights",
    "score_gradients",
    "scores",
    "Region",
    "hyperrectangle",
    "simplex_region",
    "HalfSpace",
    "halfspace_between",
    "dominates",
    "r_dominates",
    "RDominance",
    "ScoringFunction",
    "LinearScoring",
    "MonotoneScoring",
    "RSkyband",
    "compute_r_skyband",
    "Cell",
    "Arrangement",
    "UTK1Result",
    "UTK2Result",
    "UTKPartition",
    "RSA",
    "JAA",
    "utk1",
    "utk2",
]
