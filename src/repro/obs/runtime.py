"""The observability master switch.

Everything in :mod:`repro.obs` is gated by one module-level flag.  When the
flag is off (the default), :func:`repro.obs.trace.span` returns a shared
no-op singleton and every registry instrument returns before touching its
lock — the instrumented code paths pay one boolean check and nothing else.
``benchmarks/bench_obs_overhead.py`` gates that the disabled-mode cost stays
within 3% of the uninstrumented timing.

The flag is process-wide on purpose: spans and metrics describe the whole
serving process, and a per-thread switch would tear single queries (batch
threads, shard workers) into half-traced pieces.  Worker processes of the
parallel executor do not inherit the flag under ``spawn``; the shard tasks
carry it explicitly (see :mod:`repro.parallel.worker`).
"""

from __future__ import annotations

from contextlib import contextmanager

_ENABLED = False


def enabled() -> bool:
    """Whether tracing and metrics collection are currently on."""
    return _ENABLED


def enable() -> None:
    """Turn tracing and metrics collection on."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn tracing and metrics collection off (the default state)."""
    global _ENABLED
    _ENABLED = False


@contextmanager
def activated(on: bool = True):
    """Temporarily force the flag ``on`` (or off); restores the prior state.

    The scoped alternative to :func:`enable`/:func:`disable` used by tests,
    the CLI export paths and the shard workers.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    try:
        yield
    finally:
        _ENABLED = previous
