"""Artifact provenance: which code produced this trace/metrics file?

Every export header (Chrome traces, ``.prom`` comments, metrics-JSONL
headers, ``BENCH_*.json`` payloads) embeds the package version plus the
``git describe`` of the working tree, so a benchmark artifact found on a CI
run months later still says exactly what it measured.  ``repro --version``
prints the same string.

``git describe`` is best-effort: outside a git checkout (an installed wheel,
a tarball) it degrades to ``None`` without noise.
"""

from __future__ import annotations

import os
import subprocess

_GIT_CACHE: dict[str, str | None] = {}


def version() -> str:
    """The repro package version."""
    from repro import __version__

    return __version__


def git_describe() -> str | None:
    """``git describe --always --dirty`` of the source tree, or ``None``."""
    if "describe" in _GIT_CACHE:
        return _GIT_CACHE["describe"]
    described: str | None = None
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
        if completed.returncode == 0:
            described = completed.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        described = None
    _GIT_CACHE["describe"] = described
    return described


def provenance() -> dict:
    """The header block embedded into every metrics/trace export."""
    block = {"tool": "repro.obs", "version": version()}
    described = git_describe()
    if described is not None:
        block["git"] = described
    return block


def version_string() -> str:
    """Human-readable version line for ``repro --version``."""
    described = git_describe()
    suffix = f" ({described})" if described else ""
    return f"repro {version()}{suffix}"
