"""Span-based tracing: where did this query's wall-clock time go?

A :class:`Span` is a named, timed scope with free-form attributes and
counters.  Spans nest: each thread keeps a stack of open spans, a span
closing under another becomes its child, and a span closing with an empty
stack is a finished *root* collected into a process-wide list that
:func:`take_finished` drains.  The context-manager protocol makes
instrumentation one line::

    with span("rsa.refine", candidates=42):
        ...

and is exception-safe — a raising body still finalizes the span (recording
the exception type as an attribute) and re-raises.

When :mod:`repro.obs.runtime` is disabled, :func:`span` returns a shared
no-op singleton whose ``__enter__``/``__exit__``/``set``/``inc`` do nothing,
so dormant instrumentation costs one flag check per call site.

Cross-process propagation: spans are plain trees of plain data, so
:meth:`Span.to_dict`/:func:`span_from_dict` round-trip them through pickle or
JSON.  The parallel executor's shard workers trace themselves inside an
isolated :func:`capture` scope, ship the serialized trees back on the
:class:`~repro.parallel.worker.ShardOutcome`, and the merge step
:func:`graft`\\ s them under the coordinator's open span — one tree covering
the whole fan-out, whichever backend ran it.

Timestamps record ``time.time()`` at entry (comparable across processes)
while durations come from ``time.perf_counter()`` deltas (monotonic).
:func:`write_chrome_trace` exports finished spans in the Chrome
``trace_event`` format; load the file at ``chrome://tracing`` or
https://ui.perfetto.dev for a flame view.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.obs import runtime


class Span:
    """One named, timed scope of work; a node of a trace tree."""

    __slots__ = ("name", "attrs", "counters", "children", "pid", "tid",
                 "start_wall", "duration", "_start_perf")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = str(name)
        self.attrs: dict = dict(attrs or {})
        self.counters: dict = {}
        self.children: list[Span] = []
        self.pid = 0
        self.tid = 0
        self.start_wall = 0.0
        self.duration = 0.0
        self._start_perf = 0.0

    # ------------------------------------------------------------- recording
    def set(self, **attrs) -> None:
        """Attach (or overwrite) free-form attributes on the open span."""
        self.attrs.update(attrs)

    def inc(self, counter: str, amount: int = 1) -> None:
        """Bump a per-span counter (rendered under ``args`` in the export)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    # ------------------------------------------------------ context protocol
    def __enter__(self) -> "Span":
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.start_wall = time.time()
        self._start_perf = time.perf_counter()
        _STATE.stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._start_perf
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        stack = _STATE.stack
        # Pop back to (and including) this span; tolerating a mismatched
        # stack keeps an instrumentation bug from corrupting later traces.
        while stack and stack.pop() is not self:
            pass
        if stack:
            stack[-1].children.append(self)
        else:
            sink = getattr(_STATE, "collector", None)
            if sink is not None:
                sink.append(self)
            else:
                with _FINISHED_LOCK:
                    _FINISHED.append(self)
        return False

    # --------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain-data tree (JSON/pickle-safe) for cross-process shipping."""
        return {
            "name": self.name,
            "start_wall": self.start_wall,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def span_count(self) -> int:
        """Number of spans in this subtree (itself included)."""
        return 1 + sum(child.span_count() for child in self.children)

    def names(self) -> set[str]:
        """Set of span names occurring in this subtree."""
        collected = {self.name}
        for child in self.children:
            collected |= child.names()
        return collected

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (pre-order), or ``None``."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
                f"children={len(self.children)})")


def span_from_dict(payload: dict) -> Span:
    """Rebuild a :class:`Span` tree serialized by :meth:`Span.to_dict`."""
    rebuilt = Span(payload["name"], payload.get("attrs"))
    rebuilt.start_wall = float(payload.get("start_wall", 0.0))
    rebuilt.duration = float(payload.get("duration", 0.0))
    rebuilt.pid = int(payload.get("pid", 0))
    rebuilt.tid = int(payload.get("tid", 0))
    rebuilt.counters = dict(payload.get("counters", {}))
    rebuilt.children = [span_from_dict(child) for child in payload.get("children", [])]
    return rebuilt


class _NoopSpan:
    """The shared do-nothing span returned while observability is off."""

    __slots__ = ()
    duration = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def inc(self, counter: str, amount: int = 1) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _State(threading.local):
    """Per-thread open-span stack plus an optional capture collector."""

    def __init__(self):
        self.stack: list[Span] = []
        self.collector: list[Span] | None = None


_STATE = _State()
_FINISHED: list[Span] = []
_FINISHED_LOCK = threading.Lock()


def span(name: str, **attrs):
    """Open a traced scope (``with span("rsa.refine"): ...``).

    The zero-overhead-when-off fast path: while :func:`repro.obs.runtime.enabled`
    is false this returns :data:`NOOP_SPAN` without allocating anything.
    """
    if not runtime._ENABLED:
        return NOOP_SPAN
    return Span(name, attrs)


def current_span():
    """The innermost open span on this thread (``None`` outside any span)."""
    stack = _STATE.stack
    return stack[-1] if stack else None


def take_finished() -> list[Span]:
    """Drain and return the finished root spans collected so far."""
    with _FINISHED_LOCK:
        drained, _FINISHED[:] = list(_FINISHED), []
    return drained


def reset() -> None:
    """Drop all finished roots and this thread's open stack (test/CLI setup)."""
    with _FINISHED_LOCK:
        _FINISHED.clear()
    _STATE.stack = []
    _STATE.collector = None


class capture:
    """Context manager isolating the spans produced inside it.

    Swaps in a fresh stack and collects the roots finished inside the scope
    into the list the ``with`` statement binds — without touching the
    process-wide finished list or any span currently open on this thread.
    Shard workers run under ``capture`` so the serial (in-process) and
    process-pool backends produce identically-shaped shard trees.
    """

    def __init__(self):
        self.spans: list[Span] = []

    def __enter__(self) -> list[Span]:
        self._stack = _STATE.stack
        self._collector = _STATE.collector
        _STATE.stack = []
        _STATE.collector = self.spans
        return self.spans

    def __exit__(self, exc_type, exc, tb) -> bool:
        _STATE.stack = self._stack
        _STATE.collector = self._collector
        return False


def graft(payloads) -> list[Span]:
    """Attach serialized span trees under the current span (or as roots).

    ``payloads`` is a list of :meth:`Span.to_dict` trees — the shape shard
    workers ship back.  Returns the rebuilt spans.  With no span open the
    trees become finished roots, so grafting is meaningful even outside a
    coordinator span.
    """
    rebuilt = [span_from_dict(payload) for payload in payloads]
    if not rebuilt:
        return rebuilt
    parent = current_span()
    if parent is not None:
        parent.children.extend(rebuilt)
    else:
        sink = _STATE.collector
        if sink is not None:
            sink.extend(rebuilt)
        else:
            with _FINISHED_LOCK:
                _FINISHED.extend(rebuilt)
    return rebuilt


# ------------------------------------------------------------- Chrome export
def chrome_trace_events(spans) -> list[dict]:
    """Flatten span trees into Chrome ``trace_event`` complete (``"X"``) events."""
    events: list[dict] = []

    def emit(node: Span) -> None:
        args = dict(node.attrs)
        if node.counters:
            args["counters"] = dict(node.counters)
        events.append({
            "name": node.name,
            "ph": "X",
            "ts": node.start_wall * 1e6,
            "dur": node.duration * 1e6,
            "pid": node.pid,
            "tid": node.tid,
            "args": args,
        })
        for child in node.children:
            emit(child)

    for root in spans:
        emit(root)
    return events


def write_chrome_trace(path, spans, *, metadata: dict | None = None) -> dict:
    """Write span trees as a Chrome ``trace_event`` JSON file; returns the payload.

    ``metadata`` (version, git describe, workload parameters, ...) lands under
    ``otherData``, where the trace viewers surface it.
    """
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload
