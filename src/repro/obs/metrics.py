"""A labeled metrics registry with Prometheus and JSONL export.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (queries served, cache
  events, geometry calls);
* :class:`Gauge` — set-to-current values (live cache sizes);
* :class:`Histogram` — fixed-bucket distributions (query latency, r-skyband
  sizes) recording per-bucket counts plus sum and count.

Instruments are created through a :class:`MetricsRegistry` (get-or-create by
name, so every call site shares one instrument) and may declare *label
names*; each distinct label-value combination tracks its own series, exactly
like ``repro_queries_total{version="utk1",source="cold"}``.

Recording methods (:meth:`Counter.inc`, :meth:`Gauge.set`,
:meth:`Histogram.observe`) are gated on :func:`repro.obs.runtime.enabled` —
while observability is off they return after one flag check, which is what
keeps dormant instrumentation free.  Reading methods and the exporters work
regardless of the flag, so a snapshot taken after a traced run can always be
written out.

Exports: :meth:`MetricsRegistry.prometheus_text` renders the text exposition
format (``# HELP``/``# TYPE`` plus samples, histograms as cumulative
``_bucket{le=...}``/``_sum``/``_count``), and
:meth:`MetricsRegistry.snapshot` the JSON shape behind the JSONL artifact
(one metric per line, after a provenance header line).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left

from repro.obs import runtime

#: Latency buckets (seconds): 1ms .. 30s in roughly 1-2.5-5 steps.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Cardinality buckets for set sizes (r-skyband members, shard counts, ...).
SIZE_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                1000.0, 2000.0, 5000.0)

_INF = float("inf")


class _Metric:
    """Shared bookkeeping of every instrument kind."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "", labelnames: tuple = ()):
        self.name = str(name)
        self.help = str(help_text)
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_of(self, key: tuple) -> dict:
        return dict(zip(self.labelnames, key))


class Counter(_Metric):
    """A monotonically increasing total, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "", labelnames: tuple = ()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if not runtime._ENABLED:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Current total of one series (0 when never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def samples(self) -> list[dict]:
        with self._lock:
            return [{"labels": self._labels_of(key), "value": value}
                    for key, value in sorted(self._values.items())]

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(_Metric):
    """A value that can go up and down, optionally split by labels."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "", labelnames: tuple = ()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        if not runtime._ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        """Adjust the series by ``amount`` (negative amounts decrease it)."""
        if not runtime._ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def samples(self) -> list[dict]:
        with self._lock:
            return [{"labels": self._labels_of(key), "value": value}
                    for key, value in sorted(self._values.items())]

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Histogram(_Metric):
    """A fixed-bucket distribution with sum and count, split by labels.

    ``buckets`` are the finite upper bounds, ascending; an implicit ``+Inf``
    bucket tops them off.  Internally per-bucket counts are stored
    non-cumulatively; the exposition renders the cumulative ``le`` form
    Prometheus expects.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "", labelnames: tuple = (),
                 buckets: tuple = LATENCY_BUCKETS):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {self.name!r} has duplicate bucket bounds")
        if bounds[-1] == _INF:
            bounds = bounds[:-1]
        self.buckets = bounds
        self._data: dict[tuple, list] = {}  # key -> [counts per bucket + inf, sum, count]

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the series selected by ``labels``."""
        if not runtime._ENABLED:
            return
        value = float(value)
        key = self._key(labels)
        position = bisect_left(self.buckets, value)
        with self._lock:
            data = self._data.get(key)
            if data is None:
                data = self._data[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
            data[0][position] += 1
            data[1] += value
            data[2] += 1

    def snapshot_of(self, **labels) -> dict:
        """Cumulative bucket counts, sum and count of one series."""
        key = self._key(labels)
        with self._lock:
            data = self._data.get(key)
            counts = list(data[0]) if data else [0] * (len(self.buckets) + 1)
            total, count = (data[1], data[2]) if data else (0.0, 0)
        cumulative: dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets + (_INF,), counts):
            running += bucket_count
            cumulative[_format_bound(bound)] = running
        return {"buckets": cumulative, "sum": total, "count": count}

    def samples(self) -> list[dict]:
        with self._lock:
            keys = sorted(self._data)
        return [{"labels": self._labels_of(key), **self.snapshot_of(**self._labels_of(key))}
                for key in keys]

    def reset(self) -> None:
        with self._lock:
            self._data.clear()


class MetricsRegistry:
    """Named instruments, created once and shared by every call site."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -------------------------------------------------------------- creation
    def _get_or_create(self, kind: str, name: str, help_text: str,
                       labelnames: tuple, **options) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a {existing.kind}, "
                        f"requested {kind}"
                    )
                if tuple(labelnames) != existing.labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, requested {tuple(labelnames)}"
                    )
                return existing
            metric = self._KINDS[kind](name, help_text, tuple(labelnames), **options)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "", labelnames: tuple = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create("counter", name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "", labelnames: tuple = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create("gauge", name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "", labelnames: tuple = (),
                  buckets: tuple = LATENCY_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create("histogram", name, help_text, labelnames, buckets=buckets)

    # --------------------------------------------------------------- reading
    def metrics(self) -> list[_Metric]:
        """All registered instruments, by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> _Metric | None:
        """The instrument registered under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        """Zero every instrument's series; registrations are preserved."""
        for metric in self.metrics():
            metric.reset()

    def snapshot(self) -> list[dict]:
        """One plain-data record per metric (the JSONL line shape)."""
        records = []
        for metric in self.metrics():
            records.append({
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "samples": metric.samples(),
            })
        return records

    # ------------------------------------------------------------- exporting
    def prometheus_text(self) -> str:
        """Render every instrument in the Prometheus text exposition format."""
        lines: list[str] = []
        for metric in self.metrics():
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if metric.kind == "histogram":
                for sample in metric.samples():
                    labels = sample["labels"]
                    for bound, cumulative in sample["buckets"].items():
                        lines.append(
                            f"{metric.name}_bucket{_render_labels({**labels, 'le': bound})}"
                            f" {_format_value(cumulative)}"
                        )
                    lines.append(
                        f"{metric.name}_sum{_render_labels(labels)}"
                        f" {_format_value(sample['sum'])}"
                    )
                    lines.append(
                        f"{metric.name}_count{_render_labels(labels)}"
                        f" {_format_value(sample['count'])}"
                    )
            else:
                # Canonical counter names already carry the _total suffix.
                suffix = ("_total" if metric.kind == "counter"
                          and not metric.name.endswith("_total") else "")
                for sample in metric.samples():
                    lines.append(
                        f"{metric.name}{suffix}{_render_labels(sample['labels'])}"
                        f" {_format_value(sample['value'])}"
                    )
        return "\n".join(lines) + "\n"

    def write_prometheus(self, path, *, header: dict | None = None) -> None:
        """Write the text exposition to ``path``, header as leading comments."""
        with open(path, "w", encoding="utf-8") as handle:
            for key, value in (header or {}).items():
                handle.write(f"# {key}: {value}\n")
            handle.write(self.prometheus_text())

    def write_jsonl(self, path, *, header: dict | None = None) -> None:
        """Write one JSON object per line: a header record, then one per metric."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"record": "header", **(header or {})}) + "\n")
            for record in self.snapshot():
                handle.write(json.dumps({"record": "metric", **record}) + "\n")


def _format_bound(bound: float) -> str:
    """Prometheus ``le`` label rendering (``+Inf`` for the overflow bucket)."""
    if bound == _INF:
        return "+Inf"
    return format(bound, "g")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return format(value, "g") if isinstance(value, float) else str(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape_label(str(value))}"'
                     for name, value in sorted(labels.items()))
    return "{" + inner + "}"


#: The process-wide default registry every subsystem registers into.
REGISTRY = MetricsRegistry()
