"""repro.obs — the unified tracing, metrics and profiling layer.

One substrate, three facets:

* **Spans** (:mod:`repro.obs.trace`) answer *where did this query's time
  go?* — nestable, thread-local scopes that propagate across the parallel
  executor's process boundary and export as Chrome ``trace_event`` JSON.
* **Metrics** (:mod:`repro.obs.metrics`, names in :mod:`repro.obs.names`)
  answer *what is this process doing over time?* — labeled counters, gauges
  and histograms with Prometheus text and JSONL exports.
* **Geometry counters** (:mod:`repro.obs.geometry`) are the always-on
  thread-local telemetry behind per-query ``--stats`` deltas, folded into
  the registry when observability is enabled.

Everything is gated by one module-level flag (:mod:`repro.obs.runtime`):
while :func:`enabled` is false, ``span()`` hands out a shared no-op object
and every instrument returns after a single boolean check — instrumented
code in the hot paths costs nothing measurable when nobody is watching
(gated at <= 3% by ``benchmarks/bench_obs_overhead.py``).

Quickstart::

    from repro.obs import enable, span, take_finished, write_chrome_trace

    enable()
    with span("my.workload", k=3):
        engine.utk1(region, k=3)
    write_chrome_trace("trace.json", take_finished())

or, from the command line: ``repro query ... --trace out.json`` and
``repro batch ... --metrics out.prom``.
"""

from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, REGISTRY,
)
# ``build_provenance`` keeps the package attribute ``repro.obs.provenance``
# pointing at the submodule instead of shadowing it with the function.
from repro.obs.provenance import git_describe, version_string
from repro.obs.provenance import provenance as build_provenance
from repro.obs.runtime import activated, disable, enable, enabled
from repro.obs.trace import (
    NOOP_SPAN, Span, capture, chrome_trace_events, current_span, graft, span,
    span_from_dict, take_finished, write_chrome_trace,
)
from repro.obs.geometry import COUNTERS, GeometryCounters

__all__ = [
    "enabled",
    "enable",
    "disable",
    "activated",
    "span",
    "Span",
    "NOOP_SPAN",
    "current_span",
    "take_finished",
    "capture",
    "graft",
    "span_from_dict",
    "chrome_trace_events",
    "write_chrome_trace",
    "REGISTRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "COUNTERS",
    "GeometryCounters",
    "build_provenance",
    "git_describe",
    "version_string",
]
