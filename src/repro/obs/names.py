"""Canonical metric names — the one schema every subsystem reports through.

Before this module existed each subsystem invented its own stat-dict keys
(``EngineStatistics.as_dict``, ``UpdateStatistics``, ``summarize_batch``,
the per-run RSA/JAA counters).  Those dict views remain for backwards
compatibility, but the *registry* series below are the normalized schema:
one instrument per concept, labels for the axes the old dicts flattened
into key names.  ``repro metrics --schema`` prints this table; the README
"Observability" section documents how the legacy keys map onto it.

Importing this module registers every instrument in the default
:data:`~repro.obs.metrics.REGISTRY` exactly once, so instrumented modules
just do ``from repro.obs import names`` and use the module attributes.
"""

from __future__ import annotations

from repro.obs.metrics import LATENCY_BUCKETS, REGISTRY, SIZE_BUCKETS

# ------------------------------------------------------------ engine serving
#: Queries served, split by problem version (utk1/utk2) and the reuse path
#: that answered them (hit/containment/skyband-hit/skyband-containment/cold).
#: Normalizes EngineStatistics.{utk1_queries,utk2_queries,result_hits,
#: containment_hits,skyband_hits,skyband_containment_hits,cold_queries} and
#: the per-item "sources" histogram of summarize_batch.
QUERIES = REGISTRY.counter(
    "repro_queries_total",
    "UTK queries served, by problem version and reuse path",
    ("version", "source"),
)

#: End-to-end serve latency per problem version.
QUERY_SECONDS = REGISTRY.histogram(
    "repro_query_seconds",
    "End-to-end engine serve latency in seconds",
    ("version",),
    buckets=LATENCY_BUCKETS,
)

#: Size of freshly computed (cold) r-skybands — the best single predictor of
#: refinement cost.
SKYBAND_SIZE = REGISTRY.histogram(
    "repro_skyband_size",
    "r-skyband cardinality of cold filterings",
    (),
    buckets=SIZE_BUCKETS,
)

#: Queries routed to the region-partitioned parallel executor
#: (EngineStatistics.parallel_queries).
PARALLEL_QUERIES = REGISTRY.counter(
    "repro_parallel_queries_total",
    "Queries answered via the region-partitioned parallel executor",
    (),
)

#: Shard tasks fanned out by the parallel executor.
PARALLEL_SHARDS = REGISTRY.counter(
    "repro_parallel_shards_total",
    "Shard tasks executed by the parallel executor",
    (),
)

#: Batches served / queries inside them (EngineStatistics.batches,
#: EngineStatistics.batch_queries and summarize_batch "queries").
BATCHES = REGISTRY.counter("repro_batches_total", "Query batches served", ())
BATCH_QUERIES = REGISTRY.counter(
    "repro_batch_queries_total", "Queries served inside batches", ()
)

# ------------------------------------------------------------------- caches
#: LRU cache traffic, by cache name (skyband/utk1/utk2/k_skyband) and event.
#: Normalizes the per-cache hits/misses/evictions dicts of
#: UTKEngine.cache_stats.
CACHE_EVENTS = REGISTRY.counter(
    "repro_cache_events_total",
    "LRU cache events (hit/miss/eviction), by cache",
    ("cache", "event"),
)

# ----------------------------------------------------------------- geometry
#: Geometry-kernel invocations, by kind (lp/vertex_clip/enumeration/
#: fallback).  Normalizes the GeometryCounters thread-local telemetry that
#: RSA/JAA stats and summarize_batch["geometry"] expose as flat keys.
GEOMETRY_CALLS = REGISTRY.counter(
    "repro_geometry_calls_total",
    "Geometry kernel calls, by kind (lp, vertex_clip, enumeration, fallback)",
    ("kind",),
)

#: Refinement phase timings (rsa.skyband, rsa.refine, jaa.skyband, jaa.refine).
PHASE_SECONDS = REGISTRY.histogram(
    "repro_phase_seconds",
    "RSA/JAA phase durations in seconds",
    ("phase",),
    buckets=LATENCY_BUCKETS,
)

# -------------------------------------------------------------------- index
#: R-tree node touches, by operation (search/insert/delete).
RTREE_NODE_ACCESSES = REGISTRY.counter(
    "repro_rtree_node_accesses_total",
    "R-tree nodes visited, by operation",
    ("op",),
)

# ----------------------------------------------------------------- colstore
#: Paged R-tree buffer-pool traffic: lookups that hit a resident frame,
#: misses that loaded a page from the mapping, and LRU evictions of unpinned
#: frames.  hit + miss = lookups; miss - eviction = resident-set delta.
BUFFERPOOL_EVENTS = REGISTRY.counter(
    "repro_bufferpool_events_total",
    "Buffer-pool page events (hit/miss/eviction)",
    ("event",),
)

#: Pages currently resident in the paged R-tree buffer pool.
BUFFERPOOL_RESIDENT = REGISTRY.gauge(
    "repro_bufferpool_resident_pages",
    "Pages resident in the buffer pool",
)

# ------------------------------------------------------------ scenario matrix
#: Scenario-matrix cells executed, by cell coordinates and oracle outcome
#: (``ok``/``mismatch``/``skipped`` — see :mod:`repro.scenarios.matrix`).
MATRIX_CELLS = REGISTRY.counter(
    "repro_matrix_cells_total",
    "Scenario-matrix cells executed, by scenario, backend and oracle outcome",
    ("scenario", "backend", "oracle"),
)

#: Wall-clock duration of one matrix cell (the backend's full event replay).
MATRIX_CELL_SECONDS = REGISTRY.histogram(
    "repro_matrix_cell_seconds",
    "Wall-clock duration of one scenario-matrix cell in seconds",
    ("scenario", "backend"),
    buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0),
)

# ------------------------------------------------------------------ serving
#: Requests handled by the ``repro serve`` socket front-end, by operation
#: (query/insert/delete/stats/ping) and outcome (ok/error).
SERVE_REQUESTS = REGISTRY.counter(
    "repro_serve_requests_total",
    "Requests handled by the serve front-end, by operation and outcome",
    ("op", "outcome"),
)

#: Requests currently in flight on the serve front-end, by operation.
SERVE_INFLIGHT = REGISTRY.gauge(
    "repro_serve_inflight",
    "Requests currently in flight on the serve front-end",
    ("op",),
)

#: Time spent waiting for a contended stripe lock of a striped engine cache.
#: Only contended acquisitions are recorded (the uncontended fast path costs
#: one ``acquire``), so a quiet serve run legitimately exports zero samples.
STRIPE_LOCK_WAIT_SECONDS = REGISTRY.histogram(
    "repro_stripe_lock_wait_seconds",
    "Contended stripe-lock wait of striped engine caches, by cache and stripe",
    ("cache", "stripe"),
    buckets=LATENCY_BUCKETS,
)

#: Current epoch of each cache stripe — the per-stripe successor of the
#: engine-wide generation counter.  Exported by the serve front-end on every
#: stats request and on drain, so snapshots show which region-hash classes
#: an update stream actually touched.
STRIPE_EPOCH = REGISTRY.gauge(
    "repro_stripe_epoch",
    "Current epoch of each striped-cache stripe",
    ("cache", "stripe"),
)

# ------------------------------------------------------------- resilience
#: Faults injected by the deterministic chaos harness (``repro soak
#: --chaos``), by kind (kill_worker/crash_server/drop_connection/
#: delay_connection/slow_update).
FAULTS_INJECTED = REGISTRY.counter(
    "repro_faults_injected_total",
    "Chaos-harness faults injected, by kind",
    ("kind",),
)

#: Client-side request retries, by operation and why the attempt was retried
#: (connection/timeout, or a retriable server code such as overloaded /
#: worker_crash / shutting_down).
RETRIES = REGISTRY.counter(
    "repro_retries_total",
    "Serve-client request retries, by operation and reason",
    ("op", "reason"),
)

#: Write-ahead-log records, by outcome: ``appended`` (durable before ack),
#: ``replayed`` (applied during recovery), ``discarded`` (torn/corrupt tail
#: cut when reopening a log).
WAL_RECORDS = REGISTRY.counter(
    "repro_wal_records_total",
    "Write-ahead-log records, by outcome (appended/replayed/discarded)",
    ("outcome",),
)

#: Latency of WAL fsync batches (the durable-ack critical path).
WAL_FSYNC_SECONDS = REGISTRY.histogram(
    "repro_wal_fsync_seconds",
    "Write-ahead-log fsync latency in seconds",
    (),
    buckets=LATENCY_BUCKETS,
)

#: Shared-worker pools respawned by the supervisor after a worker crash.
WORKER_RESTARTS = REGISTRY.counter(
    "repro_worker_restarts_total",
    "Shared query-worker pools respawned after a crash",
    (),
)

# ------------------------------------------------------------- maintenance
#: Updates applied by the dynamic engine (UpdateStatistics.inserts/deletes).
MAINTENANCE_UPDATES = REGISTRY.counter(
    "repro_maintenance_updates_total",
    "Dynamic-engine updates applied, by operation",
    ("op",),
)

#: Cache-entry outcomes of update maintenance (UpdateStatistics.
#: entries_repaired/entries_noop/entries_evicted/results_retained).
MAINTENANCE_OUTCOMES = REGISTRY.counter(
    "repro_maintenance_outcomes_total",
    "Cache-entry outcomes of update maintenance (repaired/noop/evicted/retained)",
    ("kind",),
)


def observe_phase(phase: str, closed_span) -> None:
    """Fold a closed phase span's duration into :data:`PHASE_SECONDS`.

    Call sites pass the span object their ``with`` block bound; while
    observability is off that is the no-op singleton and nothing is recorded,
    so phase timing needs no second clock read.
    """
    from repro.obs.trace import NOOP_SPAN

    if closed_span is NOOP_SPAN:
        return
    PHASE_SECONDS.observe(closed_span.duration, phase=phase)


def schema() -> list[dict]:
    """The metric reference table: name, kind, labels and help per instrument."""
    return [
        {
            "name": metric.name,
            "kind": metric.kind,
            "labels": ",".join(metric.labelnames) or "-",
            "help": metric.help,
        }
        for metric in REGISTRY.metrics()
    ]
