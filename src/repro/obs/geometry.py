"""Geometry telemetry counters (the always-on substrate under the registry).

The refinement algorithms answer every geometric question either from a
cell's cached V-representation (one dot product), from the exact
vertex-enumeration LP fast path, or — as a last resort — from a scipy
``linprog`` round-trip.  These counters record which of the three actually
ran, so a query's stats show whether it stayed on the fast path:

* ``lp_calls`` — linear programs solved by cell geometry (classification,
  Chebyshev data, drill vectors, linear ranges) because no vertex cache was
  available;
* ``vertex_clip_calls`` — incremental vertex clips performed by
  :mod:`repro.geometry.vertex_clip`;
* ``enumeration_calls`` — from-scratch ``C(m, d)`` vertex enumerations run
  by ``build_cache`` (cells whose cache could not be derived by a clip);
* ``fallback_calls`` — actual :func:`scipy.optimize.linprog` invocations
  (programs the vertex-enumeration fast path could not answer).

Counters are *thread-local*: the engine's batch executor serves independent
queries on separate threads, and each query's delta must not see its
neighbours' work.  Worker processes of the parallel executor count in their
own interpreter; their per-shard deltas travel back inside the result stats
and are summed by the merge step.

Unlike the rest of :mod:`repro.obs`, these counters are *not* gated on the
observability flag: a bare integer increment is cheaper than the check would
make meaningful, and the per-query deltas feed the always-available
``--stats`` output.  When observability *is* enabled, RSA/JAA publish each
run's delta into :data:`repro.obs.names.GEOMETRY_CALLS`, folding this
telemetry into the registry schema.

This module absorbed ``repro.geometry.telemetry``; that path remains as a
compatibility shim re-exporting :class:`GeometryCounters` and
:data:`COUNTERS`.
"""

from __future__ import annotations

import threading

#: Registry label values for the four counters, in snapshot order.
GEOMETRY_KINDS = ("lp", "vertex_clip", "enumeration", "fallback")


class GeometryCounters(threading.local):
    """Thread-local monotonic counters; read them via snapshot/delta pairs."""

    def __init__(self):
        self.lp_calls = 0
        self.vertex_clip_calls = 0
        self.enumeration_calls = 0
        self.fallback_calls = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        """Current counter values, for a later :meth:`since` delta."""
        return (self.lp_calls, self.vertex_clip_calls, self.enumeration_calls,
                self.fallback_calls)

    def since(self, snapshot: tuple[int, int, int, int]) -> dict[str, int]:
        """Counter increments since ``snapshot``, as plain stats keys."""
        return {
            "lp_calls": self.lp_calls - snapshot[0],
            "vertex_clip_calls": self.vertex_clip_calls - snapshot[1],
            "enumeration_calls": self.enumeration_calls - snapshot[2],
            "fallback_calls": self.fallback_calls - snapshot[3],
        }


#: Process-wide (per-thread) counter instance.
COUNTERS = GeometryCounters()


def publish_delta(delta: dict) -> None:
    """Fold one run's geometry delta into the registry (no-op when disabled)."""
    from repro.obs import runtime

    if not runtime._ENABLED:
        return
    from repro.obs import names

    for kind, key in zip(GEOMETRY_KINDS, ("lp_calls", "vertex_clip_calls",
                                          "enumeration_calls", "fallback_calls")):
        count = delta.get(key, 0)
        if count:
            names.GEOMETRY_CALLS.inc(count, kind=kind)
