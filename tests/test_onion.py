"""Unit tests for onion-layer computation."""

import numpy as np

from repro.core.preference import scores
from repro.geometry.onion import onion_layers, onion_member_indices


class TestOnionLayers:
    def test_layers_are_disjoint(self):
        rng = np.random.default_rng(3)
        points = rng.random((50, 2))
        layers = onion_layers(points, 3)
        flat = np.concatenate(layers)
        assert len(set(flat.tolist())) == flat.size

    def test_zero_layers(self):
        assert onion_layers(np.random.default_rng(0).random((10, 2)), 0) == []

    def test_exhausts_small_dataset(self):
        points = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.4]])
        layers = onion_layers(points, 10)
        assert sum(layer.size for layer in layers) == 3

    def test_first_layer_contains_every_top1(self):
        rng = np.random.default_rng(9)
        points = rng.random((60, 3))
        first = set(onion_layers(points, 1)[0].tolist())
        for _ in range(200):
            weights = rng.dirichlet(np.ones(3))
            top = int(np.argmax(scores(points, weights[:2])))
            assert top in first

    def test_k_layers_contain_every_topk(self):
        rng = np.random.default_rng(21)
        points = rng.random((70, 2))
        k = 3
        members = set(onion_member_indices(points, k).tolist())
        for _ in range(200):
            weights = rng.dirichlet(np.ones(2))
            ranked = np.argsort(-scores(points, weights[:1]))[:k]
            assert set(ranked.tolist()).issubset(members)

    def test_layer_order_matches_peeling(self):
        points = np.array([[4.0, 4.0], [3.0, 3.0], [2.0, 2.0], [1.0, 1.0]])
        layers = onion_layers(points, 3)
        assert layers[0].tolist() == [0]
        assert layers[1].tolist() == [1]
        assert layers[2].tolist() == [2]


class TestOnionMemberIndices:
    def test_empty_for_zero_layers(self):
        points = np.random.default_rng(0).random((5, 2))
        assert onion_member_indices(points, 0).size == 0

    def test_sorted_unique(self):
        rng = np.random.default_rng(4)
        points = rng.random((40, 3))
        members = onion_member_indices(points, 2)
        assert np.all(np.diff(members) > 0)
