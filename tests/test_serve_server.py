"""The JSONL serving front-end: protocol, drain, and concurrent correctness.

Every test runs a real :class:`~repro.serve.server.UTKServer` on a
background thread and talks to it over a real socket.  The mini-soak is the
in-suite version of the CI serve-soak lane: a mixed concurrent client load
whose every answer must be explainable by a serial update prefix within its
admission window (zero stale answers).
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.core.region import hyperrectangle
from repro.datasets.synthetic import synthetic_dataset, update_stream
from repro.dynamic.engine import DynamicUTKEngine
from repro.serve.client import ServeClient, ServeError
from repro.serve.engine import ServeEngine
from repro.serve.server import ServerThread
from repro.serve.soak import run_soak


@pytest.fixture
def data():
    return synthetic_dataset("IND", 80, 3, seed=3)


@pytest.fixture
def served(data):
    engine = ServeEngine(data, stripes=4)
    thread = ServerThread(engine, query_threads=2)
    host, port = thread.start()
    yield host, port, engine
    thread.stop()
    engine.close()


class TestProtocol:
    def test_ping_and_rid_echo(self, served):
        host, port, _engine = served
        with ServeClient(host, port) as client:
            assert client.ping()
            response = client.request({"op": "ping"})
            assert response["ok"] and response["op"] == "ping"

    def test_query_both_versions(self, served):
        host, port, engine = served
        with ServeClient(host, port) as client:
            response = client.query([0.1, 0.1], [0.3, 0.3], 2, "both")
        region = hyperrectangle([0.1, 0.1], [0.3, 0.3])
        assert response["seq"] == {"lo": 0, "hi": 0}
        assert response["utk1"]["records"] == sorted(
            int(i) for i in engine.utk1(region, 2).indices
        )
        reference = engine.utk2(region, 2)
        expected = sorted(
            sorted(int(i) for i in s) for s in reference.distinct_top_k_sets
        )
        assert response["utk2"]["distinct_top_k_sets"] == expected
        assert response["utk2"]["partitions"] == len(reference)
        assert set(response["sources"]) == {"utk1", "utk2"}

    def test_insert_delete_roundtrip(self, served):
        host, port, engine = served
        with ServeClient(host, port) as client:
            inserted = client.insert([5.0, 5.0, 5.0])
            assert inserted["applied"] == 1
            record = inserted["record"]
            assert engine.store.is_active(record)
            deleted = client.delete(record)
            assert deleted["applied"] == 2
            assert deleted["record"] == record
            assert not engine.store.is_active(record)

    def test_errors_keep_the_connection_alive(self, served):
        host, port, _engine = served
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client.request({"op": "frobnicate"})
            with pytest.raises(ServeError, match="version"):
                client.query([0.1, 0.1], [0.3, 0.3], 2, "utk3")
            with pytest.raises(ServeError):  # delete of a never-assigned id
                client.delete(10_000)
            assert client.ping()  # the connection survived all three

    def test_malformed_json_is_rejected_not_fatal(self, served):
        host, port, _engine = served
        with socket.create_connection((host, port), timeout=30) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is False
            assert "bad request" in response["error"]
            stream.write(json.dumps({"rid": 7, "op": "ping"}).encode() + b"\n")
            stream.flush()
            assert json.loads(stream.readline())["ok"] is True

    def test_stats_reports_server_and_stripe_state(self, served):
        host, port, _engine = served
        with ServeClient(host, port) as client:
            client.query([0.1, 0.1], [0.3, 0.3], 2)
            client.insert([4.0, 4.0, 4.0])
            stats = client.stats()
        assert stats["server"]["updates_finished"] == 1
        assert stats["server"]["requests_served"] >= 2
        assert stats["serve"]["update_seq"] == 2
        assert len(stats["serve"]["stripe_epochs"]["skyband"]) == 4


class TestDrain:
    def test_shutdown_op_drains_gracefully(self, data):
        engine = ServeEngine(data, stripes=4)
        thread = ServerThread(engine, query_threads=2)
        host, port = thread.start()
        try:
            with ServeClient(host, port) as client:
                assert client.query([0.1, 0.1], [0.3, 0.3], 2)["ok"]
                assert client.shutdown()["draining"] is True
            thread.stop(timeout=30)
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=2)
        finally:
            engine.close()


class TestMiniSoak:
    def test_concurrent_load_has_zero_stale_answers(self, data):
        engine = ServeEngine(data, stripes=4)
        thread = ServerThread(engine, query_threads=3)
        host, port = thread.start()
        try:
            events = update_stream(
                data, 50, insert_prob=0.2, delete_prob=0.15,
                k_choices=(2, 3), seed=21,
            )
            report = run_soak(host, port, data, events, clients=3, timeout=120)
        finally:
            thread.stop()
            engine.close()
        assert report["errors"] == []
        assert report["stale"] == 0
        assert report["queries"] == sum(
            1 for e in events if e["op"] == "query"
        )
        assert report["ok"]

    def test_soak_requires_a_pristine_server(self, served, data):
        host, port, _engine = served
        with ServeClient(host, port) as client:
            client.insert([3.0, 3.0, 3.0])
        with pytest.raises(ValueError, match="freshly started"):
            run_soak(host, port, data, [], clients=1)


class TestSharedWorkers:
    def test_shared_worker_answers_match_serial_replay(self, data):
        """The zero-copy pool path: updates repack, queries never go stale."""
        engine = ServeEngine(data, stripes=4)
        thread = ServerThread(engine, query_threads=2, shared_workers=1)
        host, port = thread.start()
        try:
            region_args = ([0.1, 0.1], [0.3, 0.3])
            with ServeClient(host, port, timeout=120) as client:
                first = client.query(*region_args, 2)
                assert first["sources"]["utk1"] == "shared-worker"
                client.insert([9.0, 9.0, 9.0])
                second = client.query(*region_args, 2)
                assert second["seq"]["lo"] == 1
        finally:
            thread.stop(timeout=60)
        reference = DynamicUTKEngine(data)
        try:
            region = hyperrectangle(*region_args)
            before = sorted(int(i) for i in reference.utk1(region, 2).indices)
            assert first["utk1"]["records"] == before
            reference.apply_updates([{"op": "insert", "values": [9.0, 9.0, 9.0]}])
            after = sorted(int(i) for i in reference.utk1(region, 2).indices)
            assert second["utk1"]["records"] == after
        finally:
            reference.close()
            engine.close()
