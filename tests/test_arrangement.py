"""Unit tests for incremental half-space arrangements."""

import numpy as np
import pytest

from repro.core.arrangement import Arrangement
from repro.core.cell import Cell
from repro.core.halfspace import HalfSpace
from repro.core.region import hyperrectangle


@pytest.fixture
def root():
    return Cell(hyperrectangle([0.1, 0.1], [0.4, 0.4]))


@pytest.fixture
def segment_root():
    return Cell(hyperrectangle([0.2], [0.8]))


class TestInsertion:
    def test_single_split(self, root):
        arrangement = Arrangement(root)
        arrangement.insert(HalfSpace(np.array([1.0, 0.0]), 0.25, label=1))
        assert len(arrangement) == 2
        counts = sorted(leaf.count for leaf in arrangement.partitions())
        assert counts == [0, 1]

    def test_covering_halfspace_does_not_split(self, root):
        arrangement = Arrangement(root)
        arrangement.insert(HalfSpace(np.array([1.0, 0.0]), 0.05, label=1))
        assert len(arrangement) == 1
        assert arrangement.partitions()[0].covering == {1}

    def test_missing_halfspace_does_not_split(self, root):
        arrangement = Arrangement(root)
        arrangement.insert(HalfSpace(np.array([1.0, 0.0]), 0.9, label=1))
        assert len(arrangement) == 1
        assert arrangement.partitions()[0].count == 0

    def test_two_crossing_halfspaces_make_four_cells(self, root):
        arrangement = Arrangement(root)
        arrangement.insert(HalfSpace(np.array([1.0, 0.0]), 0.25, label=1))
        arrangement.insert(HalfSpace(np.array([0.0, 1.0]), 0.25, label=2))
        assert len(arrangement) == 4
        counts = sorted(leaf.count for leaf in arrangement.partitions())
        assert counts == [0, 1, 1, 2]

    def test_1d_arrangement_intervals(self, segment_root):
        arrangement = Arrangement(segment_root)
        for position, boundary in enumerate((0.3, 0.5, 0.7)):
            arrangement.insert(HalfSpace(np.array([1.0]), boundary, label=position))
        assert len(arrangement) == 4
        counts = sorted(leaf.count for leaf in arrangement.partitions())
        assert counts == [0, 1, 2, 3]

    def test_insert_many(self, root):
        arrangement = Arrangement(root)
        arrangement.insert_many([
            HalfSpace(np.array([1.0, 0.0]), 0.25, label=1),
            HalfSpace(np.array([0.0, 1.0]), 0.3, label=2),
        ])
        assert arrangement.inserted_labels == {1, 2}


class TestCounting:
    def test_counts_match_point_membership(self, root):
        rng = np.random.default_rng(0)
        arrangement = Arrangement(root)
        halfspaces = []
        for label in range(5):
            normal = rng.normal(size=2)
            offset = float(normal @ np.array([0.25, 0.25]))  # passes through centre
            h = HalfSpace(normal, offset, label=label)
            halfspaces.append(h)
            arrangement.insert(h)
        for leaf in arrangement.partitions():
            point = leaf.cell.interior_point
            assert point is not None
            expected = {h.label for h in halfspaces if h.contains(point)}
            assert leaf.covering == expected

    def test_partitions_below(self, root):
        arrangement = Arrangement(root)
        arrangement.insert(HalfSpace(np.array([1.0, 0.0]), 0.25, label=1))
        arrangement.insert(HalfSpace(np.array([1.0, 0.0]), 0.3, label=2))
        assert len(arrangement.partitions_below(1)) == 1
        assert len(arrangement.partitions_below(2)) == 2
        assert arrangement.min_count() == 0

    def test_locate(self, root):
        arrangement = Arrangement(root)
        arrangement.insert(HalfSpace(np.array([1.0, 0.0]), 0.25, label=7))
        leaf = arrangement.locate([0.35, 0.2])
        assert leaf is not None and leaf.covering == {7}
        leaf = arrangement.locate([0.15, 0.2])
        assert leaf is not None and leaf.covering == set()
        assert arrangement.locate([0.9, 0.9]) is None


class TestFreezing:
    def test_frozen_leaves_not_split(self, segment_root):
        arrangement = Arrangement(segment_root)
        # Two half-spaces covering the right part push it to the freeze limit.
        arrangement.insert(HalfSpace(np.array([1.0]), 0.4, label=0), freeze_at=2)
        arrangement.insert(HalfSpace(np.array([1.0]), 0.45, label=1), freeze_at=2)
        frozen = [leaf for leaf in arrangement.partitions() if leaf.frozen]
        assert frozen, "a leaf reaching the threshold must freeze"
        before = len(arrangement)
        # This half-space would split the frozen region but must not.
        arrangement.insert(HalfSpace(np.array([1.0]), 0.6, label=2), freeze_at=2)
        after_leaves = arrangement.partitions()
        assert len(after_leaves) == before

    def test_split_counter(self, root):
        arrangement = Arrangement(root)
        arrangement.insert(HalfSpace(np.array([1.0, 0.0]), 0.25, label=1))
        assert arrangement.split_operations == 1
