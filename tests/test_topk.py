"""Tests for plain top-k query processing."""

import numpy as np
import pytest

from repro.core.preference import scores
from repro.exceptions import InvalidQueryError
from repro.index.rtree import RTree
from repro.queries.topk import (
    incremental_top_k_until,
    top_k,
    top_k_indices,
    top_k_rtree,
)


class TestScanTopK:
    def test_matches_manual_ranking(self):
        rng = np.random.default_rng(0)
        values = rng.random((100, 3))
        weights = np.array([0.3, 0.2])
        expected = np.argsort(-scores(values, weights))[:5]
        assert top_k_indices(values, weights, 5) == [int(i) for i in expected]

    def test_scores_are_descending(self):
        rng = np.random.default_rng(1)
        values = rng.random((50, 3))
        result = top_k(values, np.array([0.4, 0.3]), 10)
        scores_only = [score for _, score in result]
        assert scores_only == sorted(scores_only, reverse=True)

    def test_k_larger_than_dataset(self):
        values = np.random.default_rng(2).random((5, 2))
        assert len(top_k_indices(values, np.array([0.5]), 50)) == 5

    def test_rejects_nonpositive_k(self):
        with pytest.raises(InvalidQueryError):
            top_k_indices(np.zeros((3, 2)), np.array([0.5]), 0)

    def test_tie_break_by_index(self):
        values = np.array([[2.0, 2.0], [2.0, 2.0], [1.0, 1.0]])
        assert top_k_indices(values, np.array([0.5]), 1) == [0]


class TestRTreeTopK:
    @pytest.mark.parametrize("seed,k", [(0, 1), (1, 5), (2, 20)])
    def test_matches_scan(self, seed, k):
        rng = np.random.default_rng(seed)
        values = rng.random((400, 3))
        tree = RTree(values)
        weights = rng.dirichlet(np.ones(3))[:2]
        via_tree = [index for index, _ in top_k_rtree(tree, weights, k)]
        via_scan = top_k_indices(values, weights, k)
        assert set(via_tree) == set(via_scan)
        tree_scores = scores(values[via_tree], weights)
        scan_scores = scores(values[via_scan], weights)
        assert np.allclose(np.sort(tree_scores), np.sort(scan_scores))

    def test_empty_tree(self):
        tree = RTree(np.zeros((0, 2)))
        assert top_k_rtree(tree, np.array([0.5]), 3) == []

    def test_rejects_nonpositive_k(self):
        tree = RTree(np.random.default_rng(0).random((10, 2)))
        with pytest.raises(InvalidQueryError):
            top_k_rtree(tree, np.array([0.5]), 0)


class TestIncrementalTopK:
    def test_stops_when_target_covered(self):
        rng = np.random.default_rng(3)
        values = rng.random((200, 3))
        weights = np.array([0.3, 0.3])
        base = set(top_k_indices(values, weights, 5))
        needed, output = incremental_top_k_until(values, weights, 5, base)
        assert needed == 5
        assert base.issubset(set(output))

    def test_target_beyond_base_k(self):
        rng = np.random.default_rng(4)
        values = rng.random((200, 3))
        weights = np.array([0.3, 0.3])
        ranked = top_k_indices(values, weights, 50)
        target = {ranked[30]}
        needed, output = incremental_top_k_until(values, weights, 5, target)
        assert needed == 31
        assert len(output) == 31

    def test_never_below_original_k(self):
        rng = np.random.default_rng(5)
        values = rng.random((50, 2))
        weights = np.array([0.5])
        needed, output = incremental_top_k_until(values, weights, 10, set())
        assert needed == 10 and len(output) == 10

    def test_unreachable_target_caps_at_dataset(self):
        values = np.random.default_rng(6).random((20, 2))
        needed, output = incremental_top_k_until(values, np.array([0.5]), 3, {999})
        assert needed == 20 and len(output) == 20

    def test_max_k_cap(self):
        values = np.random.default_rng(7).random((100, 2))
        needed, output = incremental_top_k_until(values, np.array([0.5]), 3, {999}, max_k=10)
        assert needed == 10 and len(output) == 10
