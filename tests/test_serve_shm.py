"""Shared-memory segment lifecycle: pack/attach, the shared store, cleanup.

The regression matter here is the two tracker traps the serve tier owns
centrally (see :mod:`repro.serve.shm`): attachers must never be registered
with a resource tracker (a killed worker must not disturb the owner's
segments, and no "leaked shared_memory" warnings may print), and owned
segments must vanish from ``/dev/shm`` on interpreter exit even without an
explicit ``close()``.  Cross-process assertions run real subprocesses from
script files — the ``spawn`` start method cannot re-import an in-memory
``__main__``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.dynamic.store import RecordStore
from repro.serve.shm import (
    AttachedSegment,
    SharedRecordStore,
    attach_arrays,
    pack_arrays,
)

SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="POSIX shared memory filesystem required"
)


def shm_names() -> set[str]:
    return {entry.name for entry in SHM_DIR.iterdir()}


def run_script(tmp_path: Path, body: str, *, env_extra: dict | None = None,
               wait: bool = True):
    """Write ``body`` to a file and run it with the package importable."""
    script = tmp_path / f"script_{abs(hash(body)) % 10_000}.py"
    script.write_text(textwrap.dedent(body))
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    if wait:
        return subprocess.run(
            [sys.executable, str(script)], env=env, capture_output=True,
            text=True, timeout=120,
        )
    return subprocess.Popen(
        [sys.executable, str(script)], env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True,
    )


class TestPackAttach:
    def test_roundtrip_preserves_arrays_and_meta(self):
        arrays = {
            "lower": np.arange(12, dtype=np.float64).reshape(4, 3),
            "flags": np.array([True, False, True]),
            "ids": np.arange(7, dtype=np.int64),
        }
        segment, manifest = pack_arrays(arrays, meta={"generation": 3})
        try:
            assert manifest["meta"] == {"generation": 3}
            attached, views = attach_arrays(manifest)
            try:
                for key, array in arrays.items():
                    assert views[key].dtype == array.dtype
                    np.testing.assert_array_equal(views[key], array)
            finally:
                del views
                attached.close()
        finally:
            segment.close()

    def test_offsets_are_aligned(self):
        arrays = {"a": np.ones(3), "b": np.ones(5), "c": np.ones(1)}
        segment, manifest = pack_arrays(arrays)
        try:
            for spec in manifest["fields"].values():
                assert spec["offset"] % 64 == 0
        finally:
            segment.close()

    def test_attach_after_unlink_raises_file_not_found(self):
        segment, manifest = pack_arrays({"a": np.ones(4)})
        segment.close()
        with pytest.raises(FileNotFoundError):
            attach_arrays(manifest)

    def test_close_removes_the_dev_shm_entry(self):
        segment, manifest = pack_arrays({"a": np.zeros(16)})
        name = manifest["segment"]
        assert name in shm_names()
        segment.close()
        assert name not in shm_names()


class TestSharedRecordStore:
    def test_matches_plain_store_through_churn_and_growth(self, rng):
        initial = rng.uniform(0.0, 10.0, size=(8, 3))
        plain = RecordStore(initial, capacity=16)
        shared = SharedRecordStore(initial, capacity=16)
        try:
            # Insert far past the initial capacity to force several growths,
            # deleting interleaved so tombstones cross segment generations.
            for step in range(64):
                row = rng.uniform(0.0, 10.0, size=3)
                assert plain.insert(row) == shared.insert(row)
                if step % 3 == 0:
                    victim = int(plain.active_ids()[0])
                    np.testing.assert_array_equal(
                        plain.delete(victim), shared.delete(victim)
                    )
            assert len(shared) == len(plain)
            assert shared.high_water == plain.high_water
            np.testing.assert_array_equal(shared.active_ids(), plain.active_ids())
            np.testing.assert_array_equal(shared.matrix, plain.matrix)
            ids_plain, values_plain = plain.snapshot()
            ids_shared, values_shared = shared.snapshot()
            np.testing.assert_array_equal(ids_shared, ids_plain)
            np.testing.assert_array_equal(values_shared, values_plain)
        finally:
            shared.close()

    def test_growth_unlinks_replaced_segments(self, rng):
        shared = SharedRecordStore(rng.uniform(size=(4, 2)), capacity=8)
        try:
            first = shared.shared_location()["segment"]
            assert first in shm_names()
            for _ in range(16):  # forces at least one doubling
                shared.insert(rng.uniform(size=2))
            second = shared.shared_location()["segment"]
            assert second != first
            assert first not in shm_names()  # retired name is gone...
            assert second in shm_names()
            assert shared.matrix.shape[0] == shared.high_water  # ...views live on
        finally:
            shared.close()

    def test_close_is_idempotent_and_complete(self, rng):
        shared = SharedRecordStore(rng.uniform(size=(4, 2)), capacity=8)
        for _ in range(16):
            shared.insert(rng.uniform(size=2))
        names = {segment.name for pair in shared._segments for segment in pair}
        shared.close()
        shared.close()
        assert not names & shm_names()

    def test_shared_location_reports_current_buffer(self, rng):
        shared = SharedRecordStore(rng.uniform(size=(4, 2)), capacity=8)
        try:
            location = shared.shared_location()
            attached = AttachedSegment(location["segment"])
            try:
                view = np.ndarray(
                    tuple(location["shape"]), dtype=np.float64, buffer=attached.buf
                )
                np.testing.assert_array_equal(
                    view[: shared.high_water], shared.matrix
                )
            finally:
                del view
                attached.close()
        finally:
            shared.close()


class TestProcessLifecycle:
    def test_owner_exit_without_close_unlinks_segments(self, tmp_path):
        """weakref.finalize runs at interpreter shutdown -> no /dev/shm leak."""
        result = run_script(
            tmp_path,
            """
            import numpy as np
            from repro.serve.shm import SharedRecordStore, pack_arrays

            store = SharedRecordStore(np.ones((4, 2)))
            segment, manifest = pack_arrays({"a": np.arange(8.0)})
            print(store.shared_location()["segment"])
            print(manifest["segment"])
            # Deliberately no close(): exit relies on the finalizers.
            """,
        )
        assert result.returncode == 0, result.stderr
        names = result.stdout.split()
        assert len(names) == 2
        assert not set(names) & shm_names()
        assert "leaked shared_memory" not in result.stderr
        assert "resource_tracker" not in result.stderr

    def test_killed_attacher_leaves_owner_segments_intact(self, tmp_path):
        """SIGKILL mid-query must not unlink, warn, or corrupt anything."""
        store = SharedRecordStore(np.arange(24.0).reshape(8, 3))
        try:
            location = store.shared_location()
            child = run_script(
                tmp_path,
                f"""
                import sys
                import time
                import numpy as np
                from repro.serve.shm import AttachedSegment

                segment = AttachedSegment({location['segment']!r})
                view = np.ndarray(
                    tuple({location['shape']!r}), dtype=np.float64,
                    buffer=segment.buf,
                )
                assert view[0, 0] == 0.0
                print("attached", flush=True)
                time.sleep(60)  # parked "mid-query" until the SIGKILL
                """,
                wait=False,
            )
            assert child.stdout.readline().strip() == "attached"
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
            stderr = child.stderr.read()
            child.stdout.close()
            child.stderr.close()
            # The owner's segment survived and is still fully readable.
            assert location["segment"] in shm_names()
            assert store.is_active(0)
            assert float(store.row(7)[2]) == 23.0
            assert "leaked shared_memory" not in stderr
        finally:
            store.close()
        assert location["segment"] not in shm_names()

    def test_spawned_pool_worker_crash_never_warns(self, tmp_path):
        """A spawn-pool worker shares the parent's tracker: killing it
        mid-query must neither warn at parent exit nor touch the segment."""
        result = run_script(
            tmp_path,
            """
            import os
            import signal
            import time
            from concurrent.futures import ProcessPoolExecutor, BrokenExecutor
            import multiprocessing as mp

            import numpy as np
            from repro.serve.shm import SharedRecordStore, attach_arrays, pack_arrays

            def attach_and_park(manifest):
                segment, views = attach_arrays(manifest)
                assert float(views["a"][3]) == 3.0
                time.sleep(60)

            def main():
                segment, manifest = pack_arrays({"a": np.arange(8.0)})
                pool = ProcessPoolExecutor(1, mp_context=mp.get_context("spawn"))
                future = pool.submit(attach_and_park, manifest)
                time.sleep(2.0)  # let the worker attach before the kill
                for process in pool._processes.values():
                    os.kill(process.pid, signal.SIGKILL)
                try:
                    future.result(timeout=30)
                except BrokenExecutor:
                    pass
                pool.shutdown(wait=True)
                # Owner still sees its registration: unlink is clean and quiet.
                attached, views = attach_arrays(manifest)
                assert float(views["a"][7]) == 7.0
                del views
                attached.close()
                segment.close()
                print("ok")

            # spawn re-imports this file as __mp_main__, so the pool setup
            # must be guarded or every worker recursively builds a pool.
            if __name__ == "__main__":
                main()
            """,
        )
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout
        assert "leaked shared_memory" not in result.stderr
        assert "resource_tracker" not in result.stderr
