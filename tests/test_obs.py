"""Tests of the observability layer: spans, metrics, propagation, surfaces.

Covers the tracer (nesting, exception safety, serialization, cross-process
grafting), the metrics registry (labels, histogram bucket math, Prometheus
and JSONL exposition), the zero-overhead-when-off contract, the instrumented
subsystems (engine caches, R-tree, dynamic maintenance), and the CLI
``--trace`` / ``--metrics`` / ``--version`` surfaces.
"""

import json

import numpy as np
import pytest

from repro import __version__, obs
from repro.cli import main
from repro.core.region import hyperrectangle
from repro.core.scoring import LinearScoring
from repro.datasets.synthetic import synthetic_dataset
from repro.dynamic import DynamicUTKEngine
from repro.engine import UTKEngine
from repro.engine.cache import LRUCache
from repro.index.rtree import RTree
from repro.obs import names as metric_names
from repro.obs import runtime, trace
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.names import observe_phase
from repro.parallel import parallel_utk_query


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with observability off and empty state."""
    runtime.disable()
    trace.reset()
    REGISTRY.reset()
    yield
    runtime.disable()
    trace.reset()
    REGISTRY.reset()


def small_instance(seed=7, n=250, d=3):
    data = synthetic_dataset("IND", n, d, seed)
    region = hyperrectangle([0.2] * (d - 1), [0.45] * (d - 1))
    return data, region


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything") is trace.NOOP_SPAN
        with obs.span("outer") as scope:
            scope.set(key="value")
            scope.inc("events")
            assert obs.span("inner") is trace.NOOP_SPAN
        assert trace.take_finished() == []

    def test_nesting_structure_and_duration(self):
        obs.enable()
        with obs.capture() as spans:
            with obs.span("outer", k=3) as outer:
                with obs.span("inner") as inner:
                    inner.inc("steps", 2)
        assert [root.name for root in spans] == ["outer"]
        assert outer.children == [inner]
        assert inner.counters == {"steps": 2}
        assert outer.attrs == {"k": 3}
        assert outer.duration >= inner.duration >= 0.0
        assert outer.span_count() == 2

    def test_exception_safety(self):
        obs.enable()
        with obs.capture() as spans:
            with pytest.raises(ValueError):
                with obs.span("outer"):
                    with obs.span("failing"):
                        raise ValueError("boom")
            # The stack unwound: new spans are roots again, not orphans.
            with obs.span("after"):
                pass
        names = [root.name for root in spans]
        assert names == ["outer", "after"]
        failing = spans[0].find("failing")
        assert failing.attrs["error"] == "ValueError"
        assert failing.duration >= 0.0

    def test_capture_isolation(self):
        obs.enable()
        with obs.capture() as first:
            with obs.span("one"):
                pass
        with obs.capture() as second:
            with obs.span("two"):
                pass
        assert [s.name for s in first] == ["one"]
        assert [s.name for s in second] == ["two"]
        assert trace.take_finished() == []

    def test_serialization_round_trip(self):
        obs.enable()
        with obs.capture() as spans:
            with obs.span("root", k=2) as root:
                root.inc("lp_calls", 3)
                with obs.span("child", phase="refine"):
                    pass
        payload = spans[0].to_dict()
        rebuilt = trace.span_from_dict(payload)
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"k": 2}
        assert rebuilt.counters == {"lp_calls": 3}
        assert [c.name for c in rebuilt.children] == ["child"]
        assert rebuilt.children[0].attrs == {"phase": "refine"}
        assert rebuilt.duration == pytest.approx(root.duration)

    def test_graft_attaches_under_current_span(self):
        obs.enable()
        with obs.capture() as spans:
            with obs.span("shipped"):
                pass
        payloads = [s.to_dict() for s in spans]
        with obs.capture() as outer:
            with obs.span("coordinator"):
                trace.graft(payloads)
        coordinator = outer[0]
        assert [c.name for c in coordinator.children] == ["shipped"]

    def test_chrome_trace_export(self, tmp_path):
        obs.enable()
        with obs.capture() as spans:
            with obs.span("root", k=1):
                with obs.span("child"):
                    pass
        path = tmp_path / "trace.json"
        payload = trace.write_chrome_trace(path, spans, metadata={"version": "x"})
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        events = on_disk["traceEvents"]
        assert {event["ph"] for event in events} == {"X"}
        assert {event["name"] for event in events} == {"root", "child"}
        for event in events:
            assert event["dur"] >= 0 and "pid" in event and "tid" in event
        assert on_disk["otherData"] == {"version": "x"}


class TestMetrics:
    def test_counter_labels_and_disabled_gate(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "test counter", ("kind",))
        counter.inc(kind="a")  # disabled: must not move
        assert counter.value(kind="a") == 0
        runtime.enable()
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 2
        with pytest.raises(ValueError):
            counter.inc(-1, kind="a")
        with pytest.raises(ValueError):
            counter.inc(kind="a", extra="nope")

    def test_get_or_create_rejects_mismatches(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", "help", ("a",))
        assert registry.counter("thing_total", "help", ("a",)) is registry.get("thing_total")
        with pytest.raises(ValueError):
            registry.gauge("thing_total", "help", ("a",))
        with pytest.raises(ValueError):
            registry.counter("thing_total", "help", ("b",))

    def test_histogram_bucket_math(self):
        runtime.enable()
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "latency", (), (0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 5.0, 100.0):
            histogram.observe(value)
        snapshot = histogram.snapshot_of()
        # le buckets are cumulative and inclusive (0.1 counts into le=0.1).
        assert snapshot["buckets"] == {"0.1": 2, "1": 3, "10": 4, "+Inf": 5}
        assert snapshot["count"] == 5
        assert snapshot["sum"] == pytest.approx(105.65)

    def test_prometheus_exposition_format(self):
        runtime.enable()
        registry = MetricsRegistry()
        counter = registry.counter("queries_total", "Queries served", ("version",))
        counter.inc(3, version="utk1")
        histogram = registry.histogram("lat_seconds", "latency", (), (0.5,))
        histogram.observe(0.25)
        text = registry.prometheus_text()
        assert "# HELP queries_total Queries served" in text
        assert "# TYPE queries_total counter" in text
        # The canonical name already ends in _total: no double suffix.
        assert 'queries_total{version="utk1"} 3' in text
        assert "queries_total_total" not in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.25" in text
        assert "lat_seconds_count 1" in text

    def test_jsonl_export_shape(self, tmp_path):
        runtime.enable()
        registry = MetricsRegistry()
        registry.counter("things_total", "things", ()).inc(4)
        path = tmp_path / "metrics.jsonl"
        registry.write_jsonl(path, header={"version": "1.2.3"})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"record": "header", "version": "1.2.3"}
        metric = lines[1]
        assert metric["record"] == "metric"
        assert metric["name"] == "things_total"
        assert metric["samples"] == [{"labels": {}, "value": 4}]

    def test_schema_lists_canonical_names(self):
        names = {entry["name"] for entry in metric_names.schema()}
        assert "repro_queries_total" in names
        assert "repro_cache_events_total" in names
        assert "repro_phase_seconds" in names

    def test_observe_phase(self):
        runtime.enable()
        with obs.capture():
            with obs.span("rsa.refine") as phase:
                pass
        observe_phase("rsa.refine", phase)
        sample = metric_names.PHASE_SECONDS.snapshot_of(phase="rsa.refine")
        assert sample["count"] == 1
        # Disabled: observe_phase with the noop span is itself a no-op.
        runtime.disable()
        observe_phase("rsa.refine", obs.span("rsa.refine"))
        assert metric_names.PHASE_SECONDS.snapshot_of(phase="rsa.refine")["count"] == 1


class TestInstrumentedSubsystems:
    def test_named_cache_publishes_events(self):
        runtime.enable()
        cache = LRUCache(2, name="probe")
        cache.get("missing")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts b
        events = metric_names.CACHE_EVENTS
        assert events.value(cache="probe", event="miss") == 1
        assert events.value(cache="probe", event="hit") == 1
        assert events.value(cache="probe", event="eviction") == 1
        assert cache.stats()["hits"] == 1

    def test_anonymous_cache_stays_local(self):
        runtime.enable()
        cache = LRUCache(2)
        cache.get("missing")
        assert cache.misses == 1
        assert not metric_names.CACHE_EVENTS.samples()

    def test_rtree_access_counters(self):
        rng = np.random.default_rng(3)
        points = rng.random((64, 3))
        tree = RTree(points, max_entries=4)
        tree.range_search([0.0, 0.0, 0.0], [0.5, 0.5, 0.5])
        assert tree.access_counts["search"] > 0
        tree.insert(100, [0.5, 0.5, 0.5])
        assert tree.access_counts["insert"] > 0
        tree.delete(100, [0.5, 0.5, 0.5])
        assert tree.access_counts["delete"] > 0
        # Mirrored into the registry only while enabled.
        assert not metric_names.RTREE_NODE_ACCESSES.samples()
        runtime.enable()
        tree.range_search([0.0, 0.0, 0.0], [0.2, 0.2, 0.2])
        assert metric_names.RTREE_NODE_ACCESSES.value(op="search") > 0

    def test_engine_serve_publishes_query_metrics(self):
        data, region = small_instance()
        engine = UTKEngine(data)
        try:
            runtime.enable()
            engine.serve_utk1(region, 2)
            engine.serve_utk1(region, 2)
        finally:
            engine.close()
        assert metric_names.QUERIES.value(version="utk1", source="cold") == 1
        assert metric_names.QUERIES.value(version="utk1", source="hit") == 1
        latency = metric_names.QUERY_SECONDS.snapshot_of(version="utk1")
        assert latency["count"] == 2
        assert metric_names.SKYBAND_SIZE.snapshot_of()["count"] == 1

    def test_engine_serve_disabled_records_nothing(self):
        data, region = small_instance()
        engine = UTKEngine(data)
        try:
            engine.serve_utk1(region, 2)
        finally:
            engine.close()
        assert not metric_names.QUERIES.samples()
        assert engine.stats.utk1_queries == 1

    def test_dynamic_maintenance_counters(self):
        rng = np.random.default_rng(11)
        engine = DynamicUTKEngine(rng.random((120, 3)), cache_size=8)
        try:
            region = hyperrectangle([0.25, 0.25], [0.4, 0.4])
            engine.utk1(region, 2)  # warm a cache entry for maintenance to visit
            runtime.enable()
            new_id = engine.insert([0.99, 0.99, 0.99])
            engine.delete(new_id)
        finally:
            engine.close()
        updates = metric_names.MAINTENANCE_UPDATES
        assert updates.value(op="insert") == 1
        assert updates.value(op="delete") == 1
        outcomes = metric_names.MAINTENANCE_OUTCOMES
        total_outcomes = sum(sample["value"] for sample in outcomes.samples())
        assert total_outcomes > 0


class TestCrossProcessTracing:
    def _phase_names(self, spans, prefixes=("rsa.", "jaa.")):
        return {
            name
            for root in spans
            for name in root.names()
            if name.startswith(prefixes)
        }

    def test_serial_and_sharded_traces_cover_same_phases(self):
        data, region = small_instance(n=300)
        values = LinearScoring().transform(data.values)
        obs.enable()
        with obs.capture() as serial_spans:
            parallel_utk_query(values, region, 3, workers=1, backend="serial")
        with obs.capture() as sharded_spans:
            parallel_utk_query(values, region, 3, workers=4, shards=4, backend="serial")
        serial_phases = self._phase_names(serial_spans)
        sharded_phases = self._phase_names(sharded_spans)
        assert serial_phases and serial_phases == sharded_phases

    def test_shard_spans_graft_under_coordinator(self):
        data, region = small_instance(n=300)
        values = LinearScoring().transform(data.values)
        obs.enable()
        with obs.capture() as spans:
            parallel_utk_query(values, region, 3, workers=4, shards=4, backend="serial")
        coordinator = next(
            root for root in spans
            if root.name == "parallel.query" or root.find("parallel.query")
        )
        query_span = (coordinator if coordinator.name == "parallel.query"
                      else coordinator.find("parallel.query"))
        shard_names = [c.name for c in query_span.children if c.name.startswith("shard[")]
        assert shard_names == ["shard[0]", "shard[1]", "shard[2]", "shard[3]"]

    def test_process_pool_spans_carry_worker_pids(self):
        import os

        data, region = small_instance(n=300)
        values = LinearScoring().transform(data.values)
        obs.enable()
        with obs.capture() as spans:
            parallel_utk_query(values, region, 3, workers=2, shards=2, backend="process")
        query_span = next(
            (root if root.name == "parallel.query" else root.find("parallel.query"))
            for root in spans
            if root.name == "parallel.query" or root.find("parallel.query")
        )
        shards = [c for c in query_span.children if c.name.startswith("shard[")]
        assert len(shards) == 2
        assert all(s.pid != os.getpid() for s in shards)
        assert all(s.span_count() >= 1 for s in shards)


class TestCLISurfaces:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_query_trace_and_metrics_round_trip(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        code = main(["query", "--dataset", "IND", "--cardinality", "400",
                     "--dimensionality", "3", "--k", "3",
                     "--lower", "0.2", "0.2", "--upper", "0.5", "0.5",
                     "--trace", str(trace_path), "--metrics", str(metrics_path),
                     "--json"])
        assert code == 0
        assert not runtime.enabled()  # the CLI turns observability back off
        payload = json.loads(capsys.readouterr().out)
        assert payload["utk1"]["records"]
        on_disk = json.loads(trace_path.read_text())
        names = {event["name"] for event in on_disk["traceEvents"]}
        assert any(name.startswith("query.") for name in names)
        assert any(name.startswith(("rsa.", "jaa.")) for name in names)
        assert any(name.startswith("cell.") for name in names)
        assert on_disk["otherData"]["version"] == __version__
        prom_text = metrics_path.read_text()
        assert f"# version: {__version__}" in prom_text
        assert "repro_phase_seconds_bucket" in prom_text

    def test_query_metrics_jsonl(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.jsonl"
        code = main(["query", "--dataset", "IND", "--cardinality", "150",
                     "--dimensionality", "3", "--k", "2",
                     "--lower", "0.2", "0.2", "--upper", "0.35", "0.35",
                     "--version", "utk1", "--metrics", str(metrics_path)])
        assert code == 0
        capsys.readouterr()
        lines = [json.loads(line) for line in metrics_path.read_text().splitlines()]
        assert lines[0]["record"] == "header"
        assert lines[0]["version"] == __version__
        assert any(record["name"] == "repro_geometry_calls_total" for record in lines[1:])

    def test_metrics_subcommand_schema(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "repro_queries_total" in out
        assert "histogram" in out

    def test_metrics_subcommand_summarizes_snapshot(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.jsonl"
        main(["query", "--dataset", "IND", "--cardinality", "150",
              "--dimensionality", "3", "--k", "2",
              "--lower", "0.2", "0.2", "--upper", "0.35", "0.35",
              "--version", "utk1", "--metrics", str(metrics_path)])
        capsys.readouterr()
        assert main(["metrics", "--input", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert f"# version: {__version__}" in out
        assert "repro_phase_seconds" in out

    def test_batch_metrics_export(self, tmp_path, capsys):
        queries = tmp_path / "queries.jsonl"
        queries.write_text(json.dumps(
            {"lower": [0.2, 0.2], "upper": [0.35, 0.35], "k": 2, "version": "utk1"}
        ) + "\n")
        metrics_path = tmp_path / "batch.prom"
        report_path = tmp_path / "report.json"
        code = main(["batch", "--input", str(queries), "--dataset", "IND",
                     "--cardinality", "150", "--dimensionality", "3",
                     "--output", str(report_path), "--metrics", str(metrics_path)])
        assert code == 0
        capsys.readouterr()
        prom_text = metrics_path.read_text()
        assert "repro_batches_total 1" in prom_text
        assert "repro_batch_queries_total 1" in prom_text
        assert 'repro_cache_events_total{cache="utk1",event="miss"} 1' in prom_text


class TestProvenance:
    def test_version_string_and_provenance(self):
        from repro.obs import provenance as provenance_module

        assert __version__ in provenance_module.version_string()
        payload = provenance_module.provenance()
        assert payload["version"] == __version__
        assert set(payload) >= {"tool", "version", "git"}
