"""Unit tests for the UTK result containers."""

import numpy as np
import pytest

from repro.core.cell import Cell
from repro.core.halfspace import HalfSpace
from repro.core.records import Dataset
from repro.core.region import hyperrectangle
from repro.core.result import UTK1Result, UTK2Result, UTKPartition


@pytest.fixture
def region():
    return hyperrectangle([0.1], [0.5])


class TestUTK1Result:
    def test_membership_and_iteration(self, region):
        result = UTK1Result(indices=[1, 4, 7], witnesses={1: np.array([0.2])}, region=region, k=2)
        assert 4 in result
        assert 3 not in result
        assert list(result) == [1, 4, 7]
        assert len(result) == 3

    def test_witness_lookup(self, region):
        witness = np.array([0.3])
        result = UTK1Result(indices=[2], witnesses={2: witness}, region=region, k=1)
        assert np.allclose(result.witness_of(2), witness)
        assert result.witness_of(5) is None

    def test_labels(self, region):
        data = Dataset([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], labels=["a", "b", "c"])
        result = UTK1Result(indices=[0, 2], witnesses={}, region=region, k=1)
        assert result.labels(data) == ["a", "c"]


class TestUTK2Result:
    def _partitioned(self, region):
        cell = Cell(region)
        left = cell.restricted(HalfSpace(np.array([-1.0]), -0.3), True)   # u <= 0.3
        right = cell.restricted(HalfSpace(np.array([1.0]), 0.3), True)    # u >= 0.3
        return UTK2Result(
            partitions=[UTKPartition(cell=left, top_k=frozenset({0, 1})),
                        UTKPartition(cell=right, top_k=frozenset({0, 2}))],
            region=region, k=2)

    def test_distinct_sets_and_union(self, region):
        result = self._partitioned(region)
        assert result.distinct_top_k_sets == {frozenset({0, 1}), frozenset({0, 2})}
        assert result.result_records == [0, 1, 2]
        assert len(result) == 2

    def test_top_k_at(self, region):
        result = self._partitioned(region)
        assert result.top_k_at([0.2]) == frozenset({0, 1})
        assert result.top_k_at([0.45]) == frozenset({0, 2})
        assert result.top_k_at([0.9]) is None

    def test_partition_contains(self, region):
        result = self._partitioned(region)
        assert result.partitions[0].contains([0.2])
        assert not result.partitions[0].contains([0.4])
        assert result.partitions[0].interior_point is not None

    def test_to_utk1(self, region):
        result = self._partitioned(region)
        collapsed = result.to_utk1()
        assert collapsed.indices == [0, 1, 2]
        assert collapsed.k == 2
        witness = collapsed.witness_of(1)
        assert witness is not None
        assert result.top_k_at(witness) == frozenset({0, 1})

    def test_iteration(self, region):
        result = self._partitioned(region)
        assert len(list(result)) == 2
