"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.core.records import Dataset, normalize_higher_is_better
from repro.exceptions import InvalidDatasetError


class TestDatasetConstruction:
    def test_basic_properties(self):
        data = Dataset([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        assert data.size == 3
        assert data.dimensionality == 2
        assert len(data) == 3

    def test_values_are_read_only(self):
        data = Dataset([[1.0, 2.0]])
        with pytest.raises(ValueError):
            data.values[0, 0] = 99.0

    def test_rejects_1d_input(self):
        with pytest.raises(InvalidDatasetError):
            Dataset([1.0, 2.0, 3.0])

    def test_rejects_empty(self):
        with pytest.raises(InvalidDatasetError):
            Dataset(np.zeros((0, 3)))

    def test_rejects_single_attribute(self):
        with pytest.raises(InvalidDatasetError):
            Dataset([[1.0], [2.0]])

    def test_rejects_nan(self):
        with pytest.raises(InvalidDatasetError):
            Dataset([[1.0, np.nan]])

    def test_rejects_infinite(self):
        with pytest.raises(InvalidDatasetError):
            Dataset([[1.0, np.inf]])

    def test_label_count_must_match(self):
        with pytest.raises(InvalidDatasetError):
            Dataset([[1.0, 2.0]], labels=["a", "b"])


class TestDatasetAccess:
    def test_getitem(self):
        data = Dataset([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(data[1], [3.0, 4.0])

    def test_labels_roundtrip(self):
        data = Dataset([[1.0, 2.0], [3.0, 4.0]], labels=["a", "b"])
        assert data.labels == ["a", "b"]
        assert data.label_of(1) == "b"

    def test_default_labels(self):
        data = Dataset([[1.0, 2.0]])
        assert data.labels is None
        assert data.label_of(0) == "p0"

    def test_subset_preserves_labels(self):
        data = Dataset([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], labels=["a", "b", "c"])
        sub = data.subset([2, 0])
        assert sub.labels == ["c", "a"]
        assert np.allclose(sub.values, [[5.0, 6.0], [1.0, 2.0]])

    def test_from_columns(self):
        data = Dataset.from_columns({"x": [1.0, 2.0], "y": [3.0, 4.0]})
        assert data.size == 2
        assert np.allclose(data.values[:, 0], [1.0, 2.0])

    def test_from_columns_empty_raises(self):
        with pytest.raises(InvalidDatasetError):
            Dataset.from_columns({})


class TestNormalization:
    def test_scales_to_unit_range(self):
        scaled = normalize_higher_is_better([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_inverted_column(self):
        scaled = normalize_higher_is_better([[0.0, 100.0], [10.0, 50.0]], invert_columns=[1])
        # Higher raw price (column 1) becomes a lower normalized value.
        assert scaled[0, 1] == pytest.approx(0.0)
        assert scaled[1, 1] == pytest.approx(1.0)

    def test_constant_column_maps_to_half(self):
        scaled = normalize_higher_is_better([[1.0, 5.0], [2.0, 5.0]])
        assert np.allclose(scaled[:, 1], 0.5)

    def test_rejects_bad_shape(self):
        with pytest.raises(InvalidDatasetError):
            normalize_higher_is_better([1.0, 2.0])
