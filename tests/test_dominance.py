"""Unit tests for traditional dominance and r-dominance."""

import numpy as np
import pytest

from repro.core.dominance import (
    RDominance,
    dominance_counts,
    dominates,
    r_dominates,
)
from repro.core.preference import scores
from repro.core.region import Region, hyperrectangle


class TestTraditionalDominance:
    def test_strict_dominance(self):
        assert dominates([2.0, 3.0], [1.0, 2.0])
        assert not dominates([1.0, 2.0], [2.0, 3.0])

    def test_equal_records_do_not_dominate(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_partial_improvement_is_not_dominance(self):
        assert not dominates([2.0, 1.0], [1.0, 2.0])

    def test_dominance_with_one_equal_attribute(self):
        assert dominates([2.0, 2.0], [2.0, 1.0])

    def test_dominance_counts(self):
        values = np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0], [3.0, 0.5]])
        counts = dominance_counts(values)
        # The last record equals the first on attribute 1 and is worse on
        # attribute 2, so it is dominated by it (and only by it).
        assert counts.tolist() == [0, 1, 2, 1]


class TestRDominance:
    def test_traditional_dominance_implies_r_dominance(self):
        region = hyperrectangle([0.1, 0.1], [0.4, 0.3])
        assert r_dominates([5.0, 5.0, 5.0], [4.0, 4.0, 4.0], region)

    def test_incomparable_records_can_be_r_comparable(self):
        # p has a slightly lower first attribute but is much better elsewhere;
        # restricted to low weight on attribute 1 it always wins.
        region = hyperrectangle([0.01, 0.01], [0.05, 0.05])
        p = [4.0, 9.0, 9.0]
        q = [9.0, 4.0, 4.0]
        assert not dominates(p, q)
        assert r_dominates(p, q, region)
        assert not r_dominates(q, p, region)

    def test_r_incomparable_pair(self):
        region = hyperrectangle([0.2, 0.2], [0.6, 0.3])
        p = [9.0, 1.0, 5.0]
        q = [1.0, 9.0, 5.0]
        assert not r_dominates(p, q, region)
        assert not r_dominates(q, p, region)

    def test_matches_score_comparison_on_samples(self):
        rng = np.random.default_rng(3)
        region = hyperrectangle([0.1, 0.2], [0.3, 0.4])
        samples = region.sample(500, rng)
        for _ in range(30):
            p, q = rng.random(3) * 10, rng.random(3) * 10
            expected = bool(np.all(scores(np.vstack([p, q]), samples)[:, 0]
                                   >= scores(np.vstack([p, q]), samples)[:, 1]))
            got = r_dominates(p, q, region)
            # r-dominance is decided on the vertices: it must imply dominance
            # on every sampled interior point.
            if got:
                assert expected

    def test_region_without_vertices_uses_lp(self):
        a = np.vstack([np.eye(2), -np.eye(2)])
        b = np.array([0.4, 0.3, -0.1, -0.1])
        region = Region(a, b)
        assert r_dominates([5.0, 5.0, 5.0], [1.0, 1.0, 1.0], region)
        assert not r_dominates([1.0, 1.0, 1.0], [5.0, 5.0, 5.0], region)


class TestRDominanceBatch:
    @pytest.fixture
    def region(self):
        return hyperrectangle([0.05, 0.05], [0.45, 0.25])

    def test_matrix_matches_pairwise(self, region):
        rng = np.random.default_rng(4)
        values = rng.random((20, 3)) * 10
        helper = RDominance(region)
        matrix = helper.dominance_matrix(values)
        for i in range(20):
            for j in range(20):
                if i == j:
                    assert not matrix[i, j]
                else:
                    assert matrix[i, j] == r_dominates(values[i], values[j], region)

    def test_matrix_diagonal_false(self, region):
        values = np.random.default_rng(5).random((10, 3))
        matrix = RDominance(region).dominance_matrix(values)
        assert not matrix.diagonal().any()

    def test_matrix_antisymmetric(self, region):
        values = np.random.default_rng(6).random((15, 3))
        matrix = RDominance(region).dominance_matrix(values)
        assert not np.any(matrix & matrix.T)

    def test_transitivity(self, region):
        rng = np.random.default_rng(7)
        values = rng.random((25, 3)) * 5
        matrix = RDominance(region).dominance_matrix(values)
        n = values.shape[0]
        for i in range(n):
            for j in range(n):
                if not matrix[i, j]:
                    continue
                for m in range(n):
                    if matrix[j, m]:
                        assert matrix[i, m], "r-dominance must be transitive"

    def test_dominators_of_matches_matrix(self, region):
        rng = np.random.default_rng(8)
        values = rng.random((12, 3)) * 10
        helper = RDominance(region)
        matrix = helper.dominance_matrix(values)
        for j in range(values.shape[0]):
            mask = helper.dominators_of(values[j], values)
            expected = matrix[:, j].copy()
            # dominators_of compares the probe against the pool, so the probe
            # matched against itself must not count.
            assert mask[j] == False  # noqa: E712
            assert np.array_equal(mask, expected)

    def test_dominance_counts(self, region):
        values = np.array([[9.0, 9.0, 9.0], [8.0, 8.0, 8.0], [1.0, 1.0, 1.0],])
        counts = RDominance(region).dominance_counts(values)
        assert counts.tolist() == [0, 1, 2]

    def test_empty_pool(self, region):
        helper = RDominance(region)
        assert helper.dominators_of(np.array([1.0, 1.0, 1.0]), np.zeros((0, 3))).size == 0
        assert helper.dominance_matrix(np.zeros((0, 3))).shape == (0, 0)
