"""ServeEngine: striped/seqlock plumbing must not change a single answer.

Equivalence suite for the serving-tier engine against its parent
:class:`~repro.dynamic.engine.DynamicUTKEngine`: identical answers on a
churn stream, identical packed-tree traversals, identical worker answers
through the shared-memory descriptor, and the seqlock write-guard semantics
(odd sequence and overlapping updates both veto a cache publish).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.records import Dataset
from repro.core.region import hyperrectangle
from repro.core.rskyband import compute_r_skyband
from repro.datasets.synthetic import synthetic_dataset, update_stream
from repro.dynamic.engine import DynamicUTKEngine, serve_events
from repro.index.rtree import RTree
from repro.serve.engine import CACHE_NAMES, ServeEngine
from repro.serve.packed import PackedRTree
from repro.serve.stripes import StripedCache
from repro.serve.workers import reset_worker_state, worker_query


@pytest.fixture
def data():
    return synthetic_dataset("IND", 90, 3, seed=5)


@pytest.fixture
def stream(data):
    return update_stream(
        data, 40, insert_prob=0.2, delete_prob=0.15, k_choices=(2, 3), seed=9
    )


def canonical(report: dict) -> dict:
    return {
        "event": report["event"],
        "utk1": report.get("utk1"),
        "utk2": report.get("utk2"),
    }


class TestChurnEquivalence:
    def test_serve_events_matches_dynamic_engine(self, data, stream):
        dynamic = DynamicUTKEngine(data)
        serving = ServeEngine(data, stripes=4)
        try:
            expected = serve_events(dynamic, stream)
            actual = serve_events(serving, stream)
            assert len(actual) == len(expected)
            for mine, theirs in zip(actual, expected):
                if theirs["event"] != "query":
                    assert mine["event"] == theirs["event"]
                    assert mine.get("id") == theirs.get("id")
                    continue
                assert mine["utk1"] == theirs["utk1"]
                assert mine["utk2"] == theirs["utk2"]
        finally:
            serving.close()
            dynamic.close()

    def test_caches_are_striped(self, data):
        engine = ServeEngine(data, stripes=4)
        try:
            assert isinstance(engine._utk1_cache, StripedCache)
            assert isinstance(engine._skybands, StripedCache)
            epochs = engine.stripe_epochs()
            assert set(epochs) == set(CACHE_NAMES)
            assert all(len(values) == 4 for values in epochs.values())
        finally:
            engine.close()

    def test_statistics_carry_serve_section(self, data):
        engine = ServeEngine(data, stripes=4)
        try:
            stats = engine.statistics()
            assert stats["serve"]["stripes"] == 4
            assert stats["serve"]["update_seq"] == 0
            engine.apply_updates([{"op": "insert", "values": [5.0, 5.0, 5.0]}])
            assert engine.statistics()["serve"]["update_seq"] == 2
        finally:
            engine.close()


class TestPackedTree:
    def test_flatten_roundtrip_matches_live_tree(self, rng):
        values = rng.uniform(0.0, 10.0, size=(150, 3))
        tree = RTree(values)
        packed = PackedRTree(tree.flatten(), values)
        assert len(packed) == len(tree)
        assert packed.dimension == tree.dimension
        region = hyperrectangle([0.1, 0.1], [0.3, 0.3])
        for k in (1, 2, 4):
            live = compute_r_skyband(values, region, k, tree=tree)
            flat = compute_r_skyband(values, region, k, tree=packed)
            np.testing.assert_array_equal(
                np.sort(flat.indices), np.sort(live.indices)
            )


class TestSharedDescriptor:
    def test_worker_query_matches_engine(self, data):
        engine = ServeEngine(data)
        try:
            descriptor = engine.shared_descriptor()
            region = hyperrectangle([0.1, 0.1], [0.3, 0.3])
            for k in (2, 3):
                answer = worker_query(
                    descriptor, [0.1, 0.1], [0.3, 0.3], k, "both"
                )
                assert not answer["stale"]
                assert answer["utk1"] == sorted(
                    int(i) for i in engine.utk1(region, k).indices
                )
                assert answer["utk2"] == sorted(
                    sorted(int(i) for i in s)
                    for s in engine.utk2(region, k).distinct_top_k_sets
                )
        finally:
            reset_worker_state()
            engine.close()

    def test_descriptor_tracks_updates(self, data):
        engine = ServeEngine(data)
        try:
            before = engine.shared_descriptor()
            engine.apply_updates([
                {"op": "insert", "values": [9.5, 9.5, 9.5]},
                {"op": "delete", "id": 0},
            ])
            after = engine.shared_descriptor()
            assert after["generation"] > before["generation"]
            assert after["tree"]["segment"] != before["tree"]["segment"]
            answer = worker_query(after, [0.1, 0.1], [0.3, 0.3], 2, "utk1")
            assert not answer["stale"]
            region = hyperrectangle([0.1, 0.1], [0.3, 0.3])
            assert answer["utk1"] == sorted(
                int(i) for i in engine.utk1(region, 2).indices
            )
        finally:
            reset_worker_state()
            engine.close()

    def test_stale_descriptor_reports_stale(self, data):
        engine = ServeEngine(data)
        try:
            old = engine.shared_descriptor()
            engine.apply_updates([{"op": "insert", "values": [1.0, 2.0, 3.0]}])
            engine.shared_descriptor()  # repack retires the old tree segment
            reset_worker_state()  # force a genuine re-attach by name
            assert worker_query(old, [0.1, 0.1], [0.3, 0.3], 2)["stale"]
        finally:
            reset_worker_state()
            engine.close()

    def test_repack_is_lazy(self, data):
        engine = ServeEngine(data)
        try:
            first = engine.shared_descriptor()
            second = engine.shared_descriptor()
            assert first["tree"]["segment"] == second["tree"]["segment"]
        finally:
            engine.close()


class TestSeqlockGuard:
    def test_update_seq_is_even_outside_updates(self, data):
        engine = ServeEngine(data)
        try:
            assert engine.update_seq == 0
            engine.apply_updates([{"op": "insert", "values": [1.0, 1.0, 1.0]}])
            assert engine.update_seq == 2
            engine.apply_updates([("delete", 0)])
            assert engine.update_seq == 4
        finally:
            engine.close()

    def test_guarded_put_rejects_odd_and_moved_sequences(self, data):
        engine = ServeEngine(data)
        try:
            cache = engine._utk1_cache
            # Captured mid-update (odd): never published.
            assert not engine._guarded_put(cache, "key", "value", 1)
            assert "key" not in cache
            # Captured before an update that then completed: rejected too.
            seq = engine._capture_seq()
            engine.apply_updates([{"op": "insert", "values": [2.0, 2.0, 2.0]}])
            assert not engine._guarded_put(cache, "key", "value", seq)
            assert "key" not in cache
            # Quiescent capture publishes.
            seq = engine._capture_seq()
            assert engine._guarded_put(cache, "key", "value", seq)
            assert cache.get("key") == "value"
        finally:
            engine.close()

    def test_update_never_poisons_warm_answers(self):
        """Interleaved queries and updates still match a serial engine."""
        data = Dataset(np.random.default_rng(11).uniform(0, 10, size=(70, 3)))
        serving = ServeEngine(data, stripes=4)
        reference = DynamicUTKEngine(data)
        region = hyperrectangle([0.15, 0.15], [0.35, 0.35])
        try:
            for step in range(6):
                assert sorted(serving.utk1(region, 2).indices) == sorted(
                    reference.utk1(region, 2).indices
                )
                update = {"op": "insert", "values": [8.0 + step / 10] * 3}
                serving.apply_updates([update])
                reference.apply_updates([update])
            assert sorted(serving.utk1(region, 2).indices) == sorted(
                reference.utk1(region, 2).indices
            )
        finally:
            serving.close()
            reference.close()
