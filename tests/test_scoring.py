"""Unit tests for scoring functions (Section 6 generalization)."""

import numpy as np
import pytest

from repro.core.scoring import LinearScoring, MonotoneScoring, PowerScoring
from repro.exceptions import InvalidQueryError


class TestLinearScoring:
    def test_identity_transform(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(LinearScoring().transform(values), values)

    def test_describe(self):
        assert "linear" in LinearScoring().describe()


class TestPowerScoring:
    def test_square_transform(self):
        values = np.array([[2.0, 3.0]])
        assert np.allclose(PowerScoring(2.0).transform(values), [[4.0, 9.0]])

    def test_preserves_per_attribute_order(self):
        rng = np.random.default_rng(0)
        values = rng.random((50, 3))
        transformed = PowerScoring(3.0).transform(values)
        for column in range(3):
            order_before = np.argsort(values[:, column])
            order_after = np.argsort(transformed[:, column])
            assert np.array_equal(order_before, order_after)

    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(InvalidQueryError):
            PowerScoring(0.0)

    def test_rejects_negative_attributes(self):
        with pytest.raises(InvalidQueryError):
            PowerScoring(2.0).transform(np.array([[-1.0, 2.0]]))

    def test_describe_mentions_exponent(self):
        assert "2.5" in PowerScoring(2.5).describe()


class TestMonotoneScoring:
    def test_custom_transforms(self):
        scoring = MonotoneScoring([np.sqrt, lambda x: x * 2.0])
        values = np.array([[4.0, 1.0], [9.0, 2.0]])
        transformed = scoring.transform(values)
        assert np.allclose(transformed, [[2.0, 2.0], [3.0, 4.0]])

    def test_rejects_decreasing_transform(self):
        with pytest.raises(InvalidQueryError):
            MonotoneScoring([lambda x: -x, lambda x: x])

    def test_rejects_empty_transforms(self):
        with pytest.raises(InvalidQueryError):
            MonotoneScoring([])

    def test_rejects_wrong_attribute_count(self):
        scoring = MonotoneScoring([lambda x: x])
        with pytest.raises(InvalidQueryError):
            scoring.transform(np.array([[1.0, 2.0]]))

    def test_describe(self):
        scoring = MonotoneScoring([lambda x: x, lambda x: x])
        assert "2 attributes" in scoring.describe()
