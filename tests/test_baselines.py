"""Tests for the SK / ON baseline UTK algorithms."""

import pytest

from repro.core.jaa import JAA
from repro.core.region import hyperrectangle
from repro.core.rsa import RSA
from repro.exceptions import InvalidQueryError
from repro.queries.baselines import baseline_utk1, baseline_utk2

from helpers import brute_force_top_k


@pytest.fixture
def region():
    return hyperrectangle([0.1, 0.1], [0.4, 0.3])


@pytest.fixture
def values(rng):
    return rng.random((70, 3)) * 10


class TestUTK1Baselines:
    @pytest.mark.parametrize("variant", ["skyband", "onion"])
    def test_matches_rsa(self, values, region, variant):
        k = 2
        rsa = RSA(values, region, k).run()
        baseline = baseline_utk1(values, region, k, variant=variant)
        assert baseline.result_indices == rsa.indices

    def test_candidate_sets_nested(self, values, region):
        sk = baseline_utk1(values, region, 2, variant="skyband")
        on = baseline_utk1(values, region, 2, variant="onion")
        assert set(on.candidates).issubset(set(sk.candidates))
        assert sk.result_indices == on.result_indices

    def test_to_utk1_result(self, values, region):
        baseline = baseline_utk1(values, region, 2)
        result = baseline.to_utk1()
        assert result.indices == baseline.result_indices
        assert result.stats["variant"] == "skyband"
        for index in result.indices:
            witness = result.witness_of(index)
            if witness is not None:
                assert index in brute_force_top_k(values, witness, 2)

    def test_timing_fields_populated(self, values, region):
        baseline = baseline_utk1(values, region, 2)
        assert baseline.elapsed_filter >= 0.0
        assert baseline.elapsed_refine > 0.0

    def test_rejects_unknown_variant(self, values, region):
        with pytest.raises(InvalidQueryError):
            baseline_utk1(values, region, 2, variant="magic")


class TestUTK2Baselines:
    def test_union_matches_jaa(self, values, region):
        k = 2
        jaa = JAA(values, region, k).run()
        baseline = baseline_utk2(values, region, k)
        assert set(baseline.result_indices) == set(jaa.result_records)

    def test_qualifying_cells_collectively_cover_memberships(self, values, region):
        """Every record's qualifying cells must agree with brute force probes."""
        k = 2
        baseline = baseline_utk2(values, region, k)
        for candidate, outcome in baseline.per_candidate.items():
            for leaf in outcome.cells[:3]:
                probe = leaf.cell.interior_point
                assert candidate in brute_force_top_k(values, probe, k)

    def test_utk2_slower_or_equal_work_than_utk1(self, values, region):
        """UTK2 baselines never insert fewer half-spaces than the UTK1 run."""
        one = baseline_utk1(values, region, 2)
        two = baseline_utk2(values, region, 2)
        inserted_one = sum(o.halfspaces_inserted for o in one.per_candidate.values())
        inserted_two = sum(o.halfspaces_inserted for o in two.per_candidate.values())
        assert inserted_two >= inserted_one
