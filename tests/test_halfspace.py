"""Unit tests for preference-space half-spaces."""

import numpy as np
import pytest

from repro.core.halfspace import HalfSpace, halfspace_between, halfspaces_against
from repro.core.preference import scores


class TestHalfSpace:
    def test_contains_and_value(self):
        h = HalfSpace(normal=np.array([1.0, -1.0]), offset=0.1)
        assert h.contains([0.3, 0.1])
        assert not h.contains([0.1, 0.3])
        assert h.value([0.3, 0.1]) == pytest.approx(0.1)

    def test_constraint_forms_are_complementary(self):
        h = HalfSpace(normal=np.array([2.0, 1.0]), offset=0.5, label=3)
        inside_row, inside_rhs = h.as_upper_constraint()
        outside_row, outside_rhs = h.as_lower_constraint()
        point_inside = np.array([0.4, 0.1])
        point_outside = np.array([0.1, 0.1])
        assert inside_row @ point_inside <= inside_rhs + 1e-12
        assert outside_row @ point_outside <= outside_rhs + 1e-12
        assert not (inside_row @ point_outside <= inside_rhs - 1e-12)

    def test_hash_and_equality(self):
        a = HalfSpace(np.array([1.0, 2.0]), 0.3, label=5)
        b = HalfSpace(np.array([1.0, 2.0]), 0.3, label=5)
        c = HalfSpace(np.array([1.0, 2.0]), 0.3, label=6)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_dimension(self):
        assert HalfSpace(np.array([1.0, 0.0, 0.0]), 0.0).dimension == 3


class TestHalfspaceBetween:
    def test_separates_scores(self):
        rng = np.random.default_rng(0)
        winner = rng.random(3) * 10
        loser = rng.random(3) * 10
        h = halfspace_between(winner, loser, label=1)
        pair = np.vstack([winner, loser])
        for _ in range(200):
            weights = rng.dirichlet(np.ones(3))[:2]
            s = scores(pair, weights)
            if s[0] >= s[1]:
                assert h.contains(weights, tol=1e-9)
            else:
                assert not h.contains(weights, tol=-1e-9)

    def test_boundary_is_the_tie_hyperplane(self):
        winner = np.array([5.0, 1.0, 3.0])
        loser = np.array([1.0, 5.0, 3.0])
        h = halfspace_between(winner, loser)
        # Equal weights on the first two attributes tie the two records.
        weights = np.array([0.25, 0.25])
        assert abs(h.value(weights)) < 1e-12

    def test_label_is_recorded(self):
        h = halfspace_between(np.array([1.0, 2.0]), np.array([2.0, 1.0]), label=42)
        assert h.label == 42

    def test_antisymmetry(self):
        a = np.array([3.0, 1.0, 2.0])
        b = np.array([1.0, 2.0, 4.0])
        forward = halfspace_between(a, b)
        backward = halfspace_between(b, a)
        assert np.allclose(forward.normal, -backward.normal)
        assert forward.offset == pytest.approx(-backward.offset)


class TestHalfspacesAgainst:
    def test_batch_matches_single(self):
        rng = np.random.default_rng(2)
        candidate = rng.random(4)
        competitors = rng.random((5, 4))
        labels = [10, 11, 12, 13, 14]
        batch = halfspaces_against(candidate, competitors, labels)
        for row, single_label, h in zip(competitors, labels, batch):
            expected = halfspace_between(row, candidate, label=single_label)
            assert np.allclose(h.normal, expected.normal)
            assert h.offset == pytest.approx(expected.offset)
            assert h.label == single_label
