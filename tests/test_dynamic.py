"""Tests of the dynamic subsystem: store, skyband repair, DynamicUTKEngine.

The headline property — checked with hypothesis across random datasets,
regions, ``k`` and interleaved update/query streams — is exactness: every
repaired skyband equals a from-scratch recomputation over the updated
dataset, and every ``DynamicUTKEngine`` answer equals a fresh engine rebuilt
from the post-update records (with stable ids mapped through ``snapshot``).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.region import hyperrectangle
from repro.core.rskyband import compute_r_skyband
from repro.datasets.synthetic import synthetic_dataset, update_stream
from repro.dynamic import (
    KIND_NOOP,
    KIND_PATCHED,
    KIND_REFILTERED,
    DynamicUTKEngine,
    RecordStore,
    repair_delete,
    repair_insert,
    serve_events,
)
from repro.engine import UTKEngine
from repro.exceptions import InvalidDatasetError, InvalidQueryError

common_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def random_instance(seed: int, n: int, d: int, sigma: float = 0.15):
    """A reproducible dataset + region pair in ``d`` dimensions."""
    rng = np.random.default_rng(seed)
    values = rng.random((n, d))
    lower = rng.uniform(0.02, 0.9 / (d - 1) - sigma, size=d - 1)
    region = hyperrectangle(lower, lower + sigma)
    return values, region, rng


def assert_same_skyband(got, oracle, id_map=None):
    """Member sets, rows and r-dominance graphs must match exactly.

    ``id_map`` translates the oracle's (position-based) ids into the stable
    id space when the oracle was computed over a compacted matrix.
    """
    translate = (lambda i: int(i)) if id_map is None else (lambda i: int(id_map[i]))
    assert got.members() == [translate(i) for i in oracle.indices]
    assert np.allclose(got.values, oracle.values)
    oracle_ancestors = {
        translate(i): frozenset(translate(j) for j in oracle.ancestors[int(i)])
        for i in oracle.indices
    }
    oracle_descendants = {
        translate(i): frozenset(translate(j) for j in oracle.descendants[int(i)])
        for i in oracle.indices
    }
    assert got.ancestors == oracle_ancestors
    assert got.descendants == oracle_descendants
    assert np.array_equal(got.adjacency, oracle.adjacency)


# ---------------------------------------------------------------- record store
class TestRecordStore:
    def test_lifecycle_and_snapshot(self):
        store = RecordStore(np.arange(12.0).reshape(4, 3))
        assert len(store) == 4 and store.high_water == 4
        new_id = store.insert([20.0, 21.0, 22.0])
        assert new_id == 4
        removed = store.delete(1)
        assert np.allclose(removed, [3.0, 4.0, 5.0])
        assert len(store) == 4 and store.high_water == 5
        ids, values = store.snapshot()
        assert ids.tolist() == [0, 2, 3, 4]
        assert np.allclose(values[-1], [20.0, 21.0, 22.0])
        assert store.is_active(0) and not store.is_active(1)

    def test_ids_never_reused(self):
        store = RecordStore(np.zeros((2, 2)))
        store.delete(1)
        assert store.insert([1.0, 1.0]) == 2
        store.delete(2)
        assert store.insert([2.0, 2.0]) == 3

    def test_growth_preserves_content(self):
        store = RecordStore(np.zeros((1, 2)), capacity=2)
        rows = [np.array([float(i), float(i + 1)]) for i in range(40)]
        for row in rows:
            store.insert(row)
        assert len(store) == 41
        assert np.allclose(store.row(17), rows[16])

    def test_rejects_bad_input(self):
        store = RecordStore(np.zeros((2, 3)))
        with pytest.raises(InvalidDatasetError):
            store.insert([1.0, 2.0])  # wrong dimensionality
        with pytest.raises(InvalidDatasetError):
            store.insert([np.nan, 1.0, 2.0])
        with pytest.raises(KeyError):
            store.delete(99)
        store.delete(0)
        with pytest.raises(KeyError):
            store.delete(0)
        with pytest.raises(KeyError):
            store.row(0)
        with pytest.raises(InvalidDatasetError):
            RecordStore(np.zeros(3))


# ------------------------------------------------------------- skyband repair
class TestSkybandRepair:
    @common_settings
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(5, 60),
        d=st.integers(2, 4),
        k=st.integers(1, 5),
    )
    def test_repair_insert_matches_recomputation(self, seed, n, d, k):
        values, region, rng = random_instance(seed, n, d)
        skyband = compute_r_skyband(values, region, k)
        row = rng.random(d)
        outcome = repair_insert(skyband, n, row, k)
        oracle = compute_r_skyband(np.vstack([values, row[None]]), region, k)
        assert_same_skyband(outcome.skyband, oracle)
        if outcome.kind == KIND_NOOP:
            assert outcome.skyband is skyband and not outcome.changed
        else:
            assert outcome.kind == KIND_PATCHED and outcome.changed
            assert outcome.skyband.has_member(n)

    @common_settings
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(5, 60),
        d=st.integers(2, 4),
        k=st.integers(1, 5),
    )
    def test_repair_delete_matches_recomputation(self, seed, n, d, k):
        values, region, rng = random_instance(seed, n, d)
        skyband = compute_r_skyband(values, region, k)
        victim = int(rng.integers(n))
        survivors = np.array([i for i in range(n) if i != victim])
        outcome = repair_delete(
            skyband, victim, k, pool_ids=survivors, pool_rows=values[survivors]
        )
        oracle = compute_r_skyband(values[survivors], region, k)
        assert_same_skyband(outcome.skyband, oracle, id_map=survivors)
        expected_kind = KIND_REFILTERED if skyband.has_member(victim) else KIND_NOOP
        assert outcome.kind == expected_kind
        assert outcome.changed == (expected_kind == KIND_REFILTERED)

    def test_dominated_insert_is_a_provable_noop(self):
        values = np.array([[0.9, 0.9], [0.8, 0.8], [0.7, 0.7], [0.2, 0.2]])
        region = hyperrectangle([0.2], [0.6])
        skyband = compute_r_skyband(values, region, k=2)
        outcome = repair_insert(skyband, 4, np.array([0.1, 0.1]), 2)
        assert outcome.kind == KIND_NOOP and outcome.skyband is skyband

    def test_delete_last_member_yields_singleton_pool_skyband(self):
        values = np.array([[0.9, 0.9], [0.1, 0.1]])
        region = hyperrectangle([0.2], [0.6])
        skyband = compute_r_skyband(values, region, k=1)
        assert skyband.members() == [0]
        outcome = repair_delete(
            skyband, 0, 1, pool_ids=np.array([1]), pool_rows=values[1:]
        )
        assert outcome.kind == KIND_REFILTERED
        assert outcome.skyband.members() == [1]

    def test_delete_member_with_empty_pool(self):
        values = np.array([[0.9, 0.9]])
        region = hyperrectangle([0.2], [0.6])
        skyband = compute_r_skyband(values, region, k=1)
        outcome = repair_delete(
            skyband, 0, 1, pool_ids=np.zeros(0, dtype=int), pool_rows=np.zeros((0, 2))
        )
        assert outcome.skyband.size == 0


# ------------------------------------------------------------- dynamic engine
def fingerprints(engine, region, k):
    """Mapped-to-stable-ids (UTK1 set, UTK2 top-k sets) of a fresh rebuild."""
    ids, values = engine.snapshot()
    reference = UTKEngine(values)
    utk1 = reference.utk1(region, k)
    utk2 = reference.utk2(region, k)
    return (
        sorted(int(ids[i]) for i in utk1.indices),
        sorted(sorted(int(ids[i]) for i in s) for s in utk2.distinct_top_k_sets),
    )


class TestDynamicEngine:
    @common_settings
    @given(seed=st.integers(0, 10_000), d=st.integers(2, 3))
    def test_stream_answers_equal_rebuild(self, seed, d):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 40))
        engine = DynamicUTKEngine(rng.random((n, d)), cache_size=16)
        for _ in range(10):
            roll = rng.random()
            if roll < 0.3:
                engine.insert(rng.random(d))
            elif roll < 0.5 and len(engine.store) > 3:
                ids = engine.active_ids()
                engine.delete(int(ids[rng.integers(len(ids))]))
            else:
                sigma = 0.15
                lower = rng.uniform(0.02, 0.9 / max(d - 1, 1) - sigma, size=d - 1)
                region = hyperrectangle(lower, lower + sigma)
                k = int(rng.integers(1, 4))
                got1 = engine.utk1(region, k)
                got2 = engine.utk2(region, k)
                want1, want2 = fingerprints(engine, region, k)
                assert got1.indices == want1
                got_sets = sorted(
                    sorted(int(i) for i in s) for s in got2.distinct_top_k_sets
                )
                assert got_sets == want2

    def test_unaffected_update_keeps_result_cache_warm(self):
        data = synthetic_dataset("IND", 400, 3, seed=2)
        engine = DynamicUTKEngine(data)
        region = hyperrectangle([0.2, 0.2], [0.4, 0.4])
        first = engine.utk1(region, 2)
        # A record dominated by everything cannot enter any r-skyband.
        report = engine.apply_updates([("insert", np.zeros(3))])
        assert report["entries_evicted"] == 0
        assert report["entries_noop"] >= 1
        assert report["results_retained"] >= 1
        again, source = engine.serve_utk1(region, 2)
        assert source == "hit"
        assert again.indices == first.indices

    def test_skyband_changing_insert_evicts_result(self):
        data = synthetic_dataset("IND", 300, 3, seed=3)
        engine = DynamicUTKEngine(data)
        region = hyperrectangle([0.2, 0.2], [0.4, 0.4])
        engine.utk1(region, 2)
        # A record dominating everything must enter every r-skyband.
        report = engine.apply_updates([("insert", np.full(3, 2.0))])
        assert report["entries_repaired"] >= 1
        assert report["entries_evicted"] >= 1
        new_id = report["inserted_ids"][0]
        result, source = engine.serve_utk1(region, 2)
        assert source != "hit"
        assert new_id in result.indices

    def test_delete_member_refilters_and_stays_exact(self):
        data = synthetic_dataset("IND", 300, 3, seed=4)
        engine = DynamicUTKEngine(data)
        region = hyperrectangle([0.2, 0.2], [0.4, 0.4])
        result = engine.utk1(region, 3)
        victim = result.indices[0]
        engine.delete(victim)
        repaired = engine.utk1(region, 3)
        assert victim not in repaired.indices
        want1, _ = fingerprints(engine, region, 3)
        assert repaired.indices == want1

    def test_update_statistics_accumulate(self):
        engine = DynamicUTKEngine(np.random.default_rng(5).random((50, 3)))
        engine.insert(np.full(3, 0.5))
        engine.delete(0)
        stats = engine.statistics()["dynamic"]
        assert stats["updates_applied"] == 2
        assert stats["inserts"] == 1 and stats["deletes"] == 1

    def test_traditional_skyband_cache_is_maintained(self):
        engine = DynamicUTKEngine(np.random.default_rng(6).random((200, 3)))
        baseline = engine.k_skyband(2)
        engine.apply_updates([("insert", np.zeros(3))])  # dominated: no-op
        assert np.array_equal(engine.k_skyband(2), baseline)
        assert engine.cache_stats()["k_skyband"]["hits"] >= 1
        engine.apply_updates([("insert", np.full(3, 2.0))])  # dominates: evicts
        refreshed = engine.k_skyband(2)
        assert engine.store.high_water - 1 in refreshed

    def test_stale_cache_write_after_update_is_dropped(self):
        # A query that started before an update must not populate the caches
        # afterwards: _put_current drops writes whose generation moved.
        engine = DynamicUTKEngine(np.random.default_rng(20).random((40, 3)))
        generation = engine._generation
        engine.insert(np.full(3, 0.5))
        engine._put_current(engine._utk1_cache, ("stale", 1), object(), generation)
        assert ("stale", 1) not in engine._utk1_cache
        engine._put_current(engine._utk1_cache, ("fresh", 1), object(), engine._generation)
        assert ("fresh", 1) in engine._utk1_cache

    def test_maintenance_does_not_inflate_cache_hit_statistics(self):
        data = synthetic_dataset("IND", 200, 3, seed=21)
        engine = DynamicUTKEngine(data)
        region = hyperrectangle([0.2, 0.2], [0.4, 0.4])
        engine.utk1(region, 2)
        hits_before = engine.cache_stats()["skyband"]["hits"]
        report = engine.apply_updates([("insert", np.full(3, 2.0))])  # real repair
        assert report["entries_repaired"] >= 1
        assert engine.cache_stats()["skyband"]["hits"] == hits_before

    def test_rejects_malformed_updates(self):
        engine = DynamicUTKEngine(np.random.default_rng(7).random((10, 2)))
        with pytest.raises(InvalidQueryError):
            engine.apply_updates([("upsert", [0.1, 0.2])])
        with pytest.raises(InvalidQueryError):
            engine.apply_updates([{"op": "insert"}])
        with pytest.raises(KeyError):
            engine.delete(999)

    def test_malformed_batch_is_rejected_atomically(self):
        engine = DynamicUTKEngine(np.random.default_rng(22).random((10, 2)))
        before = engine.statistics()["dynamic"]
        with pytest.raises(KeyError):  # valid insert followed by a dead delete
            engine.apply_updates([("insert", [0.5, 0.5]), ("delete", 999)])
        with pytest.raises(InvalidQueryError):  # wrong dimensionality, second position
            engine.apply_updates([("delete", 0), ("insert", [0.5])])
        with pytest.raises(KeyError):  # same record deleted twice in one batch
            engine.apply_updates([("delete", 1), ("delete", 1)])
        assert len(engine.store) == 10 and engine.store.high_water == 10
        assert engine.statistics()["dynamic"] == before
        # A batch may delete a record it inserted earlier in the same batch.
        report = engine.apply_updates([("insert", [0.4, 0.4]), ("delete", 10)])
        assert report["inserted_ids"] == [10]
        assert len(engine.store) == 10

    def test_delete_everything_then_query_and_refill(self):
        engine = DynamicUTKEngine(np.random.default_rng(8).random((5, 3)))
        for record_id in list(engine.active_ids()):
            engine.delete(int(record_id))
        region = hyperrectangle([0.2, 0.2], [0.4, 0.4])
        assert engine.utk1(region, 1).indices == []
        new_id = engine.insert([0.5, 0.5, 0.5])
        assert engine.utk1(region, 1).indices == [new_id]


# ---------------------------------------------------------------- event stream
class TestServeEvents:
    def test_mixed_event_stream_round_trip(self):
        data = synthetic_dataset("IND", 200, 3, seed=9)
        events = update_stream(data, 20, seed=9)
        engine = DynamicUTKEngine(data)
        reports = serve_events(engine, events)
        assert len(reports) == len(events)
        for event, report in zip(events, reports):
            assert report["op"] == event["op"]
            if event["op"] == "query":
                assert ("utk1" in report) == (event["version"] in ("utk1", "both"))
                assert ("utk2" in report) == (event["version"] in ("utk2", "both"))
            else:
                assert "id" in report

    def test_region_objects_accepted(self):
        engine = DynamicUTKEngine(np.random.default_rng(10).random((30, 3)))
        region = hyperrectangle([0.1, 0.1], [0.3, 0.3])
        reports = serve_events(engine, [{"op": "query", "region": region, "k": 1}])
        assert reports[0]["utk1"]["records"]

    def test_rejects_unknown_ops_and_versions(self):
        engine = DynamicUTKEngine(np.random.default_rng(11).random((10, 2)))
        with pytest.raises(InvalidQueryError):
            serve_events(engine, [{"op": "noop"}])
        with pytest.raises(InvalidQueryError):
            serve_events(
                engine, [{"op": "query", "lower": [0.2], "upper": [0.4], "k": 1,
                          "version": "utk3"}]
            )


# ----------------------------------------------------------- workload generator
class TestUpdateStream:
    def test_reproducible_and_well_formed(self):
        data = synthetic_dataset("IND", 100, 3, seed=12)
        first = update_stream(data, 50, seed=12)
        second = update_stream(data, 50, seed=12)
        assert first == second
        live = set(range(100))
        next_id = 100
        for event in first:
            if event["op"] == "insert":
                assert len(event["values"]) == 3
                live.add(next_id)
                next_id += 1
            elif event["op"] == "delete":
                assert event["id"] in live  # deletes only target live records
                live.remove(event["id"])
            else:
                assert event["version"] in ("utk1", "utk2", "both")
                assert len(event["lower"]) == len(event["upper"]) == 2
                assert event["k"] >= 1

    def test_update_mix_is_respected(self):
        data = synthetic_dataset("IND", 100, 3, seed=13)
        events = update_stream(
            data, 300, insert_prob=0.3, delete_prob=0.3, seed=13
        )
        ops = [event["op"] for event in events]
        assert 0.2 < ops.count("insert") / len(ops) < 0.4
        assert 0.2 < ops.count("delete") / len(ops) < 0.4

    def test_stream_replays_on_engine(self):
        data = synthetic_dataset("IND", 150, 3, seed=14)
        events = update_stream(data, 30, insert_prob=0.25, delete_prob=0.25, seed=14)
        engine = DynamicUTKEngine(data)
        serve_events(engine, events)  # deletes reference valid live ids throughout

    def test_rejects_bad_parameters(self):
        data = synthetic_dataset("IND", 20, 3, seed=15)
        with pytest.raises(InvalidDatasetError):
            update_stream(data, -1)
        with pytest.raises(InvalidDatasetError):
            update_stream(data, 5, insert_prob=0.8, delete_prob=0.4)
